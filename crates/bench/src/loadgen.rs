//! Open-loop load generation against a live classification server.
//!
//! The criterion micro-benches in this crate measure closed-loop,
//! single-process throughput; production claims need tail latency under
//! *open-loop* concurrent load, where requests arrive on a fixed schedule
//! whether or not earlier ones have completed (`db_bench` / Guan et al.'s
//! served-workload methodology). Each worker thread fires requests at its
//! slice of the target arrival rate and measures latency **from the
//! scheduled send time**, not the actual send — so when the server falls
//! behind, queueing delay lands in the histogram instead of being
//! silently absorbed (no coordinated omission).
//!
//! Two latencies are recorded per request into
//! [`LatencyHistogram`](crate::hist::LatencyHistogram)s:
//!
//! * **client**: scheduled-send → response decoded (wire + queueing +
//!   service), the number an SLO would bound;
//! * **service**: the server-reported `latency_ns` (receipt →
//!   aggregation), isolating inference from transport.
//!
//! Results serialize as versioned `BENCH_<workload>.json` snapshots (see
//! [`BenchSnapshot`]) so the perf trajectory across PRs is diffable.

use crate::hist::LatencyHistogram;
use bolt_server::proto::{
    read_frame, V2Response, ERR_MALFORMED_REQUEST, MAX_FRAME_BYTES, V2_MAGIC,
};
use bolt_server::{ClassificationClient, ProtoError, PROTOCOL_VERSION};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Schema version stamped into every [`BenchSnapshot`]; bump when the
/// JSON layout changes incompatibly.
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 1;

/// Model name the error-traffic mix asks for; never registered, so the
/// server must answer a structured unknown-model rejection.
pub const MISSING_MODEL: &str = "bolt-bench-missing";

/// How long a hostile exchange waits for the server's reaction before the
/// server is declared stalled (the one outcome the hostile mix exists to
/// rule out).
const HOSTILE_READ_TIMEOUT: Duration = Duration::from_secs(2);

/// Where the load generator connects.
#[derive(Clone, Debug)]
pub enum Target {
    /// A Unix-domain-socket server at this path.
    Uds(PathBuf),
    /// A TCP server at this address.
    Tcp(SocketAddr),
}

impl Target {
    /// Opens one client connection to the target.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the server refuses.
    pub fn connect(&self) -> std::io::Result<ClassificationClient> {
        match self {
            Self::Uds(path) => ClassificationClient::connect(path),
            Self::Tcp(addr) => ClassificationClient::connect_tcp(*addr),
        }
    }

    /// The transport tag recorded in snapshots (`"uds"` / `"tcp"`).
    #[must_use]
    pub fn transport(&self) -> &'static str {
        match self {
            Self::Uds(_) => "uds",
            Self::Tcp(_) => "tcp",
        }
    }

    /// Opens a raw byte stream to the target for hostile-frame injection,
    /// bypassing the typed client so the bench can put arbitrary bytes on
    /// a live data socket. Read-timeout-bounded so a stalled server shows
    /// up as a failure instead of hanging the run.
    fn connect_raw(&self) -> std::io::Result<Box<dyn RawStream>> {
        match self {
            Self::Uds(path) => {
                let stream = std::os::unix::net::UnixStream::connect(path)?;
                stream.set_read_timeout(Some(HOSTILE_READ_TIMEOUT))?;
                Ok(Box::new(stream))
            }
            Self::Tcp(addr) => {
                let stream = std::net::TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                stream.set_read_timeout(Some(HOSTILE_READ_TIMEOUT))?;
                Ok(Box::new(stream))
            }
        }
    }
}

/// Object-safe byte stream for hostile-frame injection.
trait RawStream: Read + Write + Send {}
impl<T: Read + Write + Send> RawStream for T {}

/// One open-loop workload: how many threads, how fast, what mix.
#[derive(Clone, Debug)]
pub struct OpenLoopConfig {
    /// Workload name; becomes the `BENCH_<name>.json` snapshot stem.
    pub name: String,
    /// Client threads, each holding one connection.
    pub threads: usize,
    /// Target arrival rate in requests (frames) per second, across all
    /// threads.
    pub rate: f64,
    /// Total frames to send across all threads (bounded run).
    pub requests: u64,
    /// Samples per frame: 1 sends single-classify frames, >1 sends
    /// `ClassifyBatch` frames of this size.
    pub batch_size: usize,
    /// Named models cycled per request via v2 `ClassifyWith` routing;
    /// empty routes every frame to the server's default model via legacy
    /// framing.
    pub models: Vec<String>,
    /// Every Nth frame asks for [`MISSING_MODEL`] instead and must be
    /// answered with a structured unknown-model rejection (0 disables).
    pub error_every: u64,
    /// Stop scheduling new frames once this much wall-clock has elapsed.
    /// Whichever of this and `requests` trips first ends the run; with a
    /// duration set, `requests == 0` means "duration-bounded only".
    pub duration: Option<Duration>,
    /// Reconnect storm: every worker tears down and re-opens its
    /// connection after each N frames it sends (0 keeps connections for
    /// the whole run).
    pub reconnect_every: u64,
    /// Hostile-frame mix: every Nth scheduled arrival *also* injects one
    /// fuzz-shaped frame on a separate live data connection (0 disables).
    /// The server must answer a structured error or drop that connection
    /// — never stall, never corrupt the well-formed traffic running
    /// alongside.
    pub hostile_every: u64,
}

impl OpenLoopConfig {
    /// A single-sample default-model workload at the given rate.
    #[must_use]
    pub fn new(name: impl Into<String>, threads: usize, rate: f64, requests: u64) -> Self {
        Self {
            name: name.into(),
            threads: threads.max(1),
            rate,
            requests,
            batch_size: 1,
            models: Vec::new(),
            error_every: 0,
            duration: None,
            reconnect_every: 0,
            hostile_every: 0,
        }
    }
}

/// Percentile summary of one latency histogram, in nanoseconds.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HistSummary {
    /// Recorded values.
    pub count: u64,
    /// Minimum.
    pub min_ns: u64,
    /// Exact arithmetic mean.
    pub mean_ns: f64,
    /// Median (bucket upper edge, ≤ 3.125 % above the order statistic).
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Maximum (exact).
    pub max_ns: u64,
}

impl HistSummary {
    /// Summarizes a histogram.
    #[must_use]
    pub fn from_histogram(h: &LatencyHistogram) -> Self {
        Self {
            count: h.count(),
            min_ns: h.min(),
            mean_ns: h.mean(),
            p50_ns: h.value_at_quantile(0.50),
            p90_ns: h.value_at_quantile(0.90),
            p99_ns: h.value_at_quantile(0.99),
            p999_ns: h.value_at_quantile(0.999),
            max_ns: h.max(),
        }
    }
}

/// Everything measured in one open-loop run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// The workload that ran.
    pub config: OpenLoopConfig,
    /// Transport tag (`"uds"` / `"tcp"`).
    pub transport: String,
    /// Frames actually sent.
    pub frames_sent: u64,
    /// Frames answered with a well-formed classification.
    pub responses_ok: u64,
    /// Structured rejections the error-traffic mix *expected*.
    pub expected_rejections: u64,
    /// Responses whose class disagreed with the known-good prediction
    /// (only counted when expectations were provided).
    pub wrong_class: u64,
    /// Everything else: transport failures, malformed frames, unexpected
    /// rejections. Zero on a healthy run.
    pub protocol_errors: u64,
    /// Connections deliberately re-opened by the reconnect-storm mix.
    pub reconnects: u64,
    /// Fuzz-shaped frames injected by the hostile mix.
    pub hostile_sent: u64,
    /// Hostile frames the server handled correctly: a structured error on
    /// a surviving connection for well-delimited garbage, a dropped
    /// connection for framing-level corruption. Anything else (a stall, a
    /// classification of garbage, a frame after a must-drop) counts under
    /// [`protocol_errors`](Self::protocol_errors) instead.
    pub hostile_handled: u64,
    /// Wall-clock for the whole run, seconds.
    pub elapsed_s: f64,
    /// Client-observed latency (scheduled send → response decoded).
    pub client: LatencyHistogram,
    /// Server-reported service latency.
    pub service: LatencyHistogram,
}

impl LoadReport {
    /// Achieved frames per second.
    #[must_use]
    pub fn throughput_fps(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.responses_ok as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    /// Achieved classified samples per second (`frames × batch`).
    #[must_use]
    pub fn throughput_sps(&self) -> f64 {
        self.throughput_fps() * self.config.batch_size as f64
    }
}

/// Per-worker accumulator, merged into the [`LoadReport`] at the end.
#[derive(Default)]
struct WorkerTally {
    sent: u64,
    ok: u64,
    rejections: u64,
    wrong_class: u64,
    errors: u64,
    reconnects: u64,
    hostile_sent: u64,
    hostile_handled: u64,
}

/// What one scheduled request came back as.
enum Outcome {
    /// Classes returned, service-side latency.
    Ok(Vec<u32>, u64),
    /// Structured unknown-model rejection on an error-mix frame.
    ExpectedRejection,
    /// Anything else.
    Error,
}

/// Issues one frame of the configured mix and classifies the outcome.
fn issue(
    client: &mut ClassificationClient,
    cfg: &OpenLoopConfig,
    seq: u64,
    batch: &[&[f32]],
) -> Outcome {
    let expect_rejection = cfg.error_every > 0 && seq % cfg.error_every == cfg.error_every - 1;
    let model = if expect_rejection {
        Some(MISSING_MODEL)
    } else if cfg.models.is_empty() {
        None
    } else {
        Some(cfg.models[(seq % cfg.models.len() as u64) as usize].as_str())
    };
    let result: Result<(Vec<u32>, u64), ProtoError> = match (model, cfg.batch_size) {
        (None, 1) => client
            .classify(batch[0])
            .map(|r| (vec![r.class], r.latency_ns)),
        (None, _) => client
            .classify_batch(batch)
            .map(|r| (r.classes, r.latency_ns)),
        (Some(m), 1) => client
            .classify_with(m, batch[0])
            .map(|r| (vec![r.class], r.latency_ns)),
        (Some(m), _) => client
            .classify_batch_with(m, batch)
            .map(|r| (r.classes, r.latency_ns)),
    };
    match result {
        Ok((classes, latency_ns)) => {
            if expect_rejection {
                // The bogus model answered?! That is a routing bug.
                Outcome::Error
            } else {
                Outcome::Ok(classes, latency_ns)
            }
        }
        Err(ProtoError::Rejected { .. }) if expect_rejection => Outcome::ExpectedRejection,
        Err(_) => Outcome::Error,
    }
}

/// What a correct server must do with one hostile frame.
enum HostileExpect {
    /// The frame is well-delimited but decodes as garbage: the server must
    /// answer a structured malformed-request error and keep the
    /// connection.
    StructuredError,
    /// The framing itself is corrupt (oversized length declaration): no
    /// trustworthy frame boundary remains, the server must drop the
    /// connection.
    Disconnect,
}

/// How one hostile exchange went.
enum HostileOutcome {
    /// Handled correctly, connection still usable.
    Survived,
    /// Handled correctly by dropping the connection (as required).
    Dropped,
    /// The server stalled, classified garbage, or answered when it had to
    /// disconnect.
    Misbehaved,
}

/// Builds the `k`-th fuzz-shaped frame (fully framed, length prefix
/// included) and the reaction a correct server owes it. Variants rotate so
/// every worker exercises all of them.
fn hostile_frame(k: u64) -> (Vec<u8>, HostileExpect) {
    match k % 3 {
        0 => {
            // Well-framed v2 header carrying an opcode no client ever
            // sends, padded with junk.
            let mut payload = Vec::new();
            payload.extend_from_slice(&V2_MAGIC.to_le_bytes());
            payload.push(PROTOCOL_VERSION);
            payload.push(0xEE);
            payload.extend_from_slice(&[0xA5; 8]);
            (frame_bytes(&payload), HostileExpect::StructuredError)
        }
        1 => {
            // Legacy-shaped junk: byte length cannot reconcile with any
            // feature count.
            (frame_bytes(&[0xAB; 7]), HostileExpect::StructuredError)
        }
        _ => {
            // Length prefix declaring a frame over the protocol cap; the
            // bytes after it are never a parseable boundary again.
            let mut framed = Vec::new();
            framed.extend_from_slice(&((MAX_FRAME_BYTES as u32) + 1).to_le_bytes());
            framed.extend_from_slice(&[0xCD; 16]);
            (framed, HostileExpect::Disconnect)
        }
    }
}

/// Prefixes a payload with its u32 LE length, like `write_frame` does.
fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut framed = Vec::with_capacity(4 + payload.len());
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(payload);
    framed
}

/// Sends one fuzz-shaped frame on a raw connection and checks the server
/// reacted the only two acceptable ways: structured error (connection
/// survives) or connection drop — never a stall, never a classification.
fn hostile_exchange(stream: &mut dyn RawStream, k: u64) -> HostileOutcome {
    let (framed, expect) = hostile_frame(k);
    if stream
        .write_all(&framed)
        .and_then(|()| stream.flush())
        .is_err()
    {
        // The write itself failing is only acceptable when the server was
        // required to drop us (it may race ahead of our write).
        return match expect {
            HostileExpect::Disconnect => HostileOutcome::Dropped,
            HostileExpect::StructuredError => HostileOutcome::Misbehaved,
        };
    }
    let response = read_frame(&mut { stream });
    match expect {
        HostileExpect::StructuredError => match response {
            // The one correct answer: a structured malformed-request
            // error, stream still in sync.
            Ok(Some(payload)) => match V2Response::decode(&payload) {
                Ok(V2Response::Error(frame)) if frame.code == ERR_MALFORMED_REQUEST => {
                    HostileOutcome::Survived
                }
                _ => HostileOutcome::Misbehaved,
            },
            // EOF or transport error: dropping a recoverable frame is a
            // (tolerated) overreaction in thread mode, but a *timeout*
            // means the server swallowed the frame silently — the stall
            // this mix exists to catch.
            Ok(None) => HostileOutcome::Dropped,
            Err(ProtoError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                HostileOutcome::Misbehaved
            }
            Err(_) => HostileOutcome::Dropped,
        },
        HostileExpect::Disconnect => match response {
            // Any frame back means the server kept parsing past corrupt
            // framing; any timeout means it is wedged holding the
            // connection open.
            Ok(Some(_)) => HostileOutcome::Misbehaved,
            Ok(None) => HostileOutcome::Dropped,
            Err(ProtoError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                HostileOutcome::Misbehaved
            }
            Err(_) => HostileOutcome::Dropped,
        },
    }
}

/// Runs one open-loop workload against a live server and collects the
/// latency distributions.
///
/// `samples` supplies request payloads (cycled); `expected` — when given —
/// holds the known-good class per sample, and every response is verified
/// against it (hot-swap churn and differential serving lean on this).
///
/// # Errors
///
/// Returns the connection error if no client thread could connect at
/// startup. Mid-run failures do not abort the run; they are counted in
/// [`LoadReport::protocol_errors`] (each worker reconnects once per
/// failure before giving up on its remaining schedule).
///
/// # Panics
///
/// Panics if `samples` is empty, if the run is unbounded (`requests == 0`
/// with no `duration`), or a worker thread panics.
pub fn run_open_loop(
    target: &Target,
    samples: &[Vec<f32>],
    expected: Option<&[u32]>,
    cfg: &OpenLoopConfig,
) -> std::io::Result<LoadReport> {
    assert!(!samples.is_empty(), "need at least one request sample");
    assert!(
        cfg.requests > 0 || cfg.duration.is_some(),
        "run must be bounded by a request count or a duration"
    );
    let threads = cfg.threads.max(1);
    // Fail fast if the server is absent; workers then own their clients.
    let mut clients = Vec::with_capacity(threads);
    for _ in 0..threads {
        clients.push(target.connect()?);
    }
    let started = Instant::now();
    let results: Vec<(LatencyHistogram, LatencyHistogram, WorkerTally)> =
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for (thread_idx, client) in clients.into_iter().enumerate() {
                handles.push(scope.spawn(move || {
                    worker(target, client, samples, expected, cfg, thread_idx, started)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("load worker panicked"))
                .collect()
        });
    let elapsed_s = started.elapsed().as_secs_f64();
    let mut client_hist = LatencyHistogram::new();
    let mut service_hist = LatencyHistogram::new();
    let mut tally = WorkerTally::default();
    for (c, s, t) in &results {
        client_hist.merge(c);
        service_hist.merge(s);
        tally.sent += t.sent;
        tally.ok += t.ok;
        tally.rejections += t.rejections;
        tally.wrong_class += t.wrong_class;
        tally.errors += t.errors;
        tally.reconnects += t.reconnects;
        tally.hostile_sent += t.hostile_sent;
        tally.hostile_handled += t.hostile_handled;
    }
    Ok(LoadReport {
        config: cfg.clone(),
        transport: target.transport().to_owned(),
        frames_sent: tally.sent,
        responses_ok: tally.ok,
        expected_rejections: tally.rejections,
        wrong_class: tally.wrong_class,
        protocol_errors: tally.errors,
        reconnects: tally.reconnects,
        hostile_sent: tally.hostile_sent,
        hostile_handled: tally.hostile_handled,
        elapsed_s,
        client: client_hist,
        service: service_hist,
    })
}

/// One worker thread: fires its interleaved slice of the arrival schedule
/// and records both latency views.
fn worker(
    target: &Target,
    mut client: ClassificationClient,
    samples: &[Vec<f32>],
    expected: Option<&[u32]>,
    cfg: &OpenLoopConfig,
    thread_idx: usize,
    started: Instant,
) -> (LatencyHistogram, LatencyHistogram, WorkerTally) {
    let threads = cfg.threads.max(1) as u64;
    let mut client_hist = LatencyHistogram::new();
    let mut service_hist = LatencyHistogram::new();
    let mut tally = WorkerTally::default();
    let mut batch: Vec<&[f32]> = Vec::with_capacity(cfg.batch_size.max(1));
    // Thread t owns global sequence numbers t, t+threads, t+2·threads, …
    // at one global arrival every 1/rate seconds.
    let deadline = cfg.duration.map(|d| started + d);
    // Hostile mix: a separate raw connection per worker carries the
    // fuzz-shaped frames, so garbage and well-formed traffic hit the same
    // server concurrently without the typed client losing its stream.
    let mut hostile: Option<Box<dyn RawStream>> = None;
    let mut hostile_seq = thread_idx as u64;
    let mut seq = thread_idx as u64;
    while cfg.requests == 0 || seq < cfg.requests {
        let sched = started + Duration::from_secs_f64(seq as f64 / cfg.rate);
        // Fixed-duration mode: a frame *scheduled* past the deadline is
        // not sent, so every thread stops on the same arrival boundary.
        if deadline.is_some_and(|deadline| sched >= deadline) {
            break;
        }
        let now = Instant::now();
        if sched > now {
            std::thread::sleep(sched - now);
        }
        // Batch members cycle through the sample set from a
        // per-request offset.
        batch.clear();
        let base = (seq as usize).wrapping_mul(cfg.batch_size.max(1));
        for i in 0..cfg.batch_size.max(1) {
            batch.push(samples[(base + i) % samples.len()].as_slice());
        }
        // Inject one hostile frame alongside (not instead of) the
        // scheduled request, so each injection also proves the
        // well-formed traffic right next to it still answers correctly.
        if cfg.hostile_every > 0 && seq % cfg.hostile_every == cfg.hostile_every - 1 {
            if hostile.is_none() {
                hostile = target.connect_raw().ok();
            }
            match hostile.take() {
                Some(mut conn) => {
                    tally.hostile_sent += 1;
                    match hostile_exchange(conn.as_mut(), hostile_seq) {
                        HostileOutcome::Survived => {
                            tally.hostile_handled += 1;
                            hostile = Some(conn); // keep riding the same socket
                        }
                        HostileOutcome::Dropped => tally.hostile_handled += 1,
                        HostileOutcome::Misbehaved => tally.errors += 1,
                    }
                    hostile_seq += 1;
                }
                None => tally.errors += 1,
            }
        }
        tally.sent += 1;
        match issue(&mut client, cfg, seq, &batch) {
            Outcome::Ok(classes, latency_ns) => {
                let done = Instant::now();
                client_hist.record(done.duration_since(sched).as_nanos() as u64);
                service_hist.record(latency_ns);
                tally.ok += 1;
                if let Some(expected) = expected {
                    for (i, &class) in classes.iter().enumerate() {
                        if class != expected[(base + i) % expected.len()] {
                            tally.wrong_class += 1;
                        }
                    }
                }
            }
            Outcome::ExpectedRejection => {
                let done = Instant::now();
                client_hist.record(done.duration_since(sched).as_nanos() as u64);
                tally.rejections += 1;
            }
            Outcome::Error => {
                tally.errors += 1;
                // One reconnect attempt; a dead server ends this worker's
                // schedule rather than spinning.
                match target.connect() {
                    Ok(fresh) => client = fresh,
                    Err(_) => break,
                }
            }
        }
        // Reconnect storm: churn the connection every N sent frames so
        // accept/close paths stay under load for the whole run.
        if cfg.reconnect_every > 0 && tally.sent % cfg.reconnect_every == 0 {
            match target.connect() {
                Ok(fresh) => {
                    client = fresh;
                    tally.reconnects += 1;
                }
                Err(_) => {
                    tally.errors += 1;
                    break;
                }
            }
        }
        seq += threads;
    }
    (client_hist, service_hist, tally)
}

/// A versioned, machine-readable record of one load-generator run — the
/// unit of the repo's perf trajectory. Serialized as
/// `BENCH_<workload>.json` under `results/`; diff these across PRs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchSnapshot {
    /// [`SNAPSHOT_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// Always `"bolt-bench"`.
    pub bench: String,
    /// Workload name (snapshot stem).
    pub workload: String,
    /// `git rev-parse --short HEAD` at run time (`"unknown"` outside a
    /// checkout).
    pub git_rev: String,
    /// Scan kernel the *server* process resolved
    /// (`bolt_core::Kernel::selected()`).
    pub kernel: String,
    /// Transport tag (`"uds"` / `"tcp"`).
    pub transport: String,
    /// Client threads.
    pub threads: u64,
    /// Target arrival rate, frames/s.
    pub target_rate_fps: f64,
    /// Samples per frame.
    pub batch_size: u64,
    /// Named models cycled via v2 routing (empty = legacy default
    /// routing).
    pub models: Vec<String>,
    /// Error-traffic period (0 = none).
    pub error_every: u64,
    /// Wall-clock bound on the run in seconds (0 = request-bounded).
    #[serde(default)]
    pub duration_s: f64,
    /// Reconnect-storm period in frames (0 = persistent connections).
    #[serde(default)]
    pub reconnect_every: u64,
    /// Connections re-opened by the reconnect-storm mix.
    #[serde(default)]
    pub reconnects: u64,
    /// Hostile-frame injection period in arrivals (0 = none).
    #[serde(default)]
    pub hostile_every: u64,
    /// Fuzz-shaped frames injected on live data connections.
    #[serde(default)]
    pub hostile_sent: u64,
    /// Hostile frames the server answered with a structured error or a
    /// clean connection drop (the only acceptable reactions).
    #[serde(default)]
    pub hostile_handled: u64,
    /// Hot-swap churn interval in milliseconds (0 = no churn thread).
    pub swap_interval_ms: u64,
    /// Feature dimensionality of the request samples.
    pub n_features: u64,
    /// Frames sent / answered / rejected-as-expected / wrong / failed.
    pub frames_sent: u64,
    /// Frames answered with a well-formed classification.
    pub responses_ok: u64,
    /// Structured rejections the error mix expected.
    pub expected_rejections: u64,
    /// Responses disagreeing with the known-good class.
    pub wrong_class: u64,
    /// Transport/protocol failures.
    pub protocol_errors: u64,
    /// Wall clock, seconds.
    pub elapsed_s: f64,
    /// Achieved frames/s.
    pub throughput_fps: f64,
    /// Achieved samples/s.
    pub throughput_sps: f64,
    /// Client-observed latency percentiles (open-loop, from scheduled
    /// send).
    pub client_latency: HistSummary,
    /// Server-reported service latency percentiles.
    pub service_latency: HistSummary,
}

impl BenchSnapshot {
    /// Builds the snapshot for a finished run.
    #[must_use]
    pub fn from_report(
        report: &LoadReport,
        git_rev: &str,
        kernel: &str,
        n_features: usize,
        swap_interval_ms: u64,
    ) -> Self {
        Self {
            schema_version: SNAPSHOT_SCHEMA_VERSION,
            bench: "bolt-bench".to_owned(),
            workload: report.config.name.clone(),
            git_rev: git_rev.to_owned(),
            kernel: kernel.to_owned(),
            transport: report.transport.clone(),
            threads: report.config.threads as u64,
            target_rate_fps: report.config.rate,
            batch_size: report.config.batch_size as u64,
            models: report.config.models.clone(),
            error_every: report.config.error_every,
            duration_s: report.config.duration.map_or(0.0, |d| d.as_secs_f64()),
            reconnect_every: report.config.reconnect_every,
            reconnects: report.reconnects,
            hostile_every: report.config.hostile_every,
            hostile_sent: report.hostile_sent,
            hostile_handled: report.hostile_handled,
            swap_interval_ms,
            n_features: n_features as u64,
            frames_sent: report.frames_sent,
            responses_ok: report.responses_ok,
            expected_rejections: report.expected_rejections,
            wrong_class: report.wrong_class,
            protocol_errors: report.protocol_errors,
            elapsed_s: report.elapsed_s,
            throughput_fps: report.throughput_fps(),
            throughput_sps: report.throughput_sps(),
            client_latency: HistSummary::from_histogram(&report.client),
            service_latency: HistSummary::from_histogram(&report.service),
        }
    }

    /// Writes `BENCH_<workload>.json` (pretty-printed) into `dir`,
    /// creating the directory if needed.
    ///
    /// # Errors
    ///
    /// Returns the I/O error on filesystem failure.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.workload));
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(&path, json + "\n")?;
        Ok(path)
    }

    /// Parses and validates a snapshot file: JSON must decode against this
    /// schema, carry the current [`SNAPSHOT_SCHEMA_VERSION`], and be
    /// internally consistent. The CI smoke (`scripts/run_loadgen.sh`) runs
    /// this over every emitted file via `bolt-bench --check`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate_file(path: &Path) -> Result<Self, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let snapshot: Self = serde_json::from_str(&text).map_err(|e| {
            format!(
                "{} does not parse as a BenchSnapshot: {e:?}",
                path.display()
            )
        })?;
        if snapshot.schema_version != SNAPSHOT_SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} (this build reads {SNAPSHOT_SCHEMA_VERSION})",
                snapshot.schema_version
            ));
        }
        if snapshot.bench != "bolt-bench" {
            return Err(format!("bench field is {:?}", snapshot.bench));
        }
        for (field, value) in [
            ("workload", &snapshot.workload),
            ("git_rev", &snapshot.git_rev),
            ("kernel", &snapshot.kernel),
            ("transport", &snapshot.transport),
        ] {
            if value.is_empty() {
                return Err(format!("{field} is empty"));
            }
        }
        if snapshot.frames_sent
            < snapshot.responses_ok + snapshot.expected_rejections + snapshot.protocol_errors
        {
            return Err("outcome counts exceed frames_sent".to_owned());
        }
        if snapshot.hostile_handled > snapshot.hostile_sent {
            return Err("hostile_handled exceeds hostile_sent".to_owned());
        }
        let p = &snapshot.client_latency;
        if !(p.p50_ns <= p.p90_ns
            && p.p90_ns <= p.p99_ns
            && p.p99_ns <= p.p999_ns
            && p.p999_ns <= p.max_ns)
        {
            return Err("client latency percentiles are not monotone".to_owned());
        }
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> LoadReport {
        let mut client = LatencyHistogram::new();
        let mut service = LatencyHistogram::new();
        for i in 1..=1000u64 {
            client.record(i * 1000);
            service.record(i * 700);
        }
        LoadReport {
            config: OpenLoopConfig {
                name: "unit".into(),
                threads: 2,
                rate: 5000.0,
                requests: 1000,
                batch_size: 4,
                models: vec!["bolt".into()],
                error_every: 8,
                duration: None,
                reconnect_every: 0,
                hostile_every: 16,
            },
            transport: "uds".into(),
            frames_sent: 1000,
            responses_ok: 875,
            expected_rejections: 125,
            wrong_class: 0,
            protocol_errors: 0,
            reconnects: 0,
            hostile_sent: 62,
            hostile_handled: 62,
            elapsed_s: 0.25,
            client,
            service,
        }
    }

    #[test]
    fn snapshot_roundtrips_and_validates() {
        let report = sample_report();
        let snapshot = BenchSnapshot::from_report(&report, "abc1234", "avx2", 6, 0);
        let dir = std::env::temp_dir().join(format!("bolt-bench-test-{}", std::process::id()));
        let path = snapshot.write_to(&dir).expect("writes");
        assert_eq!(path.file_name().unwrap().to_str(), Some("BENCH_unit.json"));
        let parsed = BenchSnapshot::validate_file(&path).expect("validates");
        assert_eq!(parsed.workload, "unit");
        assert_eq!(parsed.kernel, "avx2");
        assert_eq!(parsed.frames_sent, 1000);
        assert_eq!(parsed.batch_size, 4);
        assert_eq!(parsed.client_latency.count, 1000);
        assert!(parsed.throughput_fps > 0.0);
        // samples/s is frames/s × batch.
        assert!((parsed.throughput_sps - parsed.throughput_fps * 4.0).abs() < 1e-6);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn validation_rejects_schema_drift() {
        let report = sample_report();
        let snapshot = BenchSnapshot::from_report(&report, "abc1234", "scalar", 6, 0);
        let dir = std::env::temp_dir().join(format!("bolt-bench-drift-{}", std::process::id()));
        let path = snapshot.write_to(&dir).expect("writes");
        let text = std::fs::read_to_string(&path).expect("read");
        // Future schema version: refuse rather than misread.
        std::fs::write(
            &path,
            text.replace("\"schema_version\": 1", "\"schema_version\": 99"),
        )
        .expect("write");
        let err = BenchSnapshot::validate_file(&path).expect_err("rejects");
        assert!(err.contains("schema_version"), "{err}");
        // Truncated file: refuse.
        std::fs::write(&path, "{\"bench\": \"bolt-bench\"").expect("write");
        assert!(BenchSnapshot::validate_file(&path).is_err());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn snapshot_carries_hostile_counters() {
        let report = sample_report();
        let snapshot = BenchSnapshot::from_report(&report, "abc1234", "avx2", 6, 0);
        assert_eq!(snapshot.hostile_every, 16);
        assert_eq!(snapshot.hostile_sent, 62);
        assert_eq!(snapshot.hostile_handled, 62);
        // Pre-hostile snapshots (no such fields) must keep parsing.
        fn strip_u64_field(json: &str, key: &str) -> String {
            let needle = format!("\"{key}\":");
            let start = json
                .find(&needle)
                .unwrap_or_else(|| panic!("{key} present"));
            let bytes = json.as_bytes();
            let mut end = start + needle.len();
            while end < bytes.len() && bytes[end].is_ascii_digit() {
                end += 1;
            }
            let (s, e) = if bytes.get(end) == Some(&b',') {
                (start, end + 1) // interior field: drop its trailing comma
            } else {
                (start - 1, end) // last field: drop the comma before it
            };
            format!("{}{}", &json[..s], &json[e..])
        }
        let mut text = serde_json::to_string(&snapshot).expect("encode");
        for key in ["hostile_every", "hostile_sent", "hostile_handled"] {
            text = strip_u64_field(&text, key);
        }
        let old: BenchSnapshot = serde_json::from_str(&text).expect("old-schema snapshot parses");
        assert_eq!(old.hostile_every, 0);
        assert_eq!(old.hostile_sent, 0);
        assert_eq!(old.hostile_handled, 0);
    }

    #[test]
    fn hostile_frames_cover_every_reaction() {
        // The rotation must include both required server reactions.
        let mut structured = 0;
        let mut disconnect = 0;
        for k in 0..6 {
            let (framed, expect) = hostile_frame(k);
            assert!(framed.len() >= 4, "frame {k} has a length prefix");
            match expect {
                HostileExpect::StructuredError => {
                    // Well-delimited: the declared length matches reality
                    // and stays under the protocol cap.
                    let declared =
                        u32::from_le_bytes(framed[..4].try_into().expect("prefix")) as usize;
                    assert_eq!(declared, framed.len() - 4);
                    assert!(declared <= MAX_FRAME_BYTES);
                    structured += 1;
                }
                HostileExpect::Disconnect => {
                    let declared =
                        u32::from_le_bytes(framed[..4].try_into().expect("prefix")) as usize;
                    assert!(declared > MAX_FRAME_BYTES);
                    disconnect += 1;
                }
            }
        }
        assert!(structured > 0 && disconnect > 0);
    }

    #[test]
    fn throughput_math() {
        let report = sample_report();
        assert!((report.throughput_fps() - 3500.0).abs() < 1e-9);
        assert!((report.throughput_sps() - 14_000.0).abs() < 1e-9);
    }
}
