//! HDR-style log-bucketed latency histogram.
//!
//! `bolt-bench` needs percentiles (p50/p90/p99/p999) over millions of
//! nanosecond-scale latency samples without storing them. An
//! HdrHistogram-style scheme gives bounded relative error in O(1) memory:
//! values are bucketed by octave (power of two) with [`SUB_BUCKETS`]
//! linear sub-buckets per octave, so any recorded value lands in a bucket
//! whose width is at most `1/SUB_BUCKETS` of its magnitude (≤ 3.125 %
//! relative error). Values below [`SUB_BUCKETS`] are exact. No external
//! dependency, per the workspace's vendoring policy.
//!
//! Percentile queries report the *upper edge* of the bucket containing the
//! target rank (clamped to the true maximum), i.e. "P % of requests
//! completed within X ns" — the conservative reading for latency SLOs.

/// Linear sub-buckets per power-of-two octave. 32 bounds the relative
/// bucketing error at 1/32 ≈ 3.1 %.
pub const SUB_BUCKETS: u64 = 32;

/// Number of value bits resolved exactly (2^5 = [`SUB_BUCKETS`]).
const SUB_BITS: u32 = 5;

/// Total bucket count covering the full `u64` range: one exact region of
/// [`SUB_BUCKETS`] values plus 59 octaves × [`SUB_BUCKETS`] sub-buckets.
const N_BUCKETS: usize = ((64 - SUB_BITS as usize) * SUB_BUCKETS as usize) + SUB_BUCKETS as usize;

/// A fixed-size log-bucketed histogram over `u64` values (nanoseconds, by
/// convention here, though the scheme is unit-agnostic).
///
/// # Examples
///
/// ```
/// use bolt_bench::hist::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.value_at_quantile(0.50);
/// // Within one bucket width (3.125 %) of the true median.
/// assert!((470..=530).contains(&p50), "p50 = {p50}");
/// assert_eq!(h.max(), 1000);
/// ```
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram (~15 KiB of buckets).
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: vec![0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a value: exact below [`SUB_BUCKETS`], then
    /// `SUB_BUCKETS` linear sub-buckets per octave.
    fn index_of(value: u64) -> usize {
        if value < SUB_BUCKETS {
            return value as usize;
        }
        // value >= 32 ⇒ top bit position in 5..=63.
        let top = 63 - value.leading_zeros();
        let octave = (top - SUB_BITS + 1) as usize;
        let sub = ((value >> (top - SUB_BITS)) - SUB_BUCKETS) as usize;
        octave * SUB_BUCKETS as usize + sub
    }

    /// Largest value mapping to the bucket at `index` (its upper edge).
    fn bucket_upper(index: usize) -> u64 {
        let sub_buckets = SUB_BUCKETS as usize;
        if index < sub_buckets {
            return index as u64;
        }
        let octave = index / sub_buckets;
        let sub = (index % sub_buckets) as u64;
        let shift = (octave - 1) as u32;
        // Bucket covers [ (32+sub) << shift, (32+sub+1) << shift ). The
        // topmost bucket's exclusive edge is exactly 2^64, which shifts to
        // 0; wrapping the decrement turns that into u64::MAX, the correct
        // inclusive upper edge.
        ((SUB_BUCKETS + sub + 1) << shift).wrapping_sub(1)
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index_of(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one (for combining per-thread
    /// recordings).
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean of recorded values (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: an upper bound `v` such that
    /// at least `q * count` recorded values are ≤ `v`, within one bucket
    /// width (≤ 3.125 %) of the true order statistic and clamped to the
    /// recorded maximum. Returns 0 when empty.
    #[must_use]
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * count), at least 1: the rank of the target value.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &bucket_count) in self.counts.iter().enumerate() {
            seen += bucket_count;
            if seen >= target {
                return Self::bucket_upper(index).min(self.max);
            }
        }
        self.max
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("p50", &self.value_at_quantile(0.50))
            .field("p99", &self.value_at_quantile(0.99))
            .field("max", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKETS - 1);
        // Every value below SUB_BUCKETS has its own bucket, so quantile
        // lookups are exact order statistics.
        assert_eq!(h.value_at_quantile(1.0 / SUB_BUCKETS as f64), 0);
        assert_eq!(h.value_at_quantile(0.5), SUB_BUCKETS / 2 - 1);
        assert_eq!(h.value_at_quantile(1.0), SUB_BUCKETS - 1);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.value_at_quantile(0.99), 0);
        assert!((h.mean() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn index_and_upper_edge_are_consistent() {
        // Every probe value must land in a bucket whose upper edge is
        // >= the value and within the relative error bound.
        let mut probes = vec![0u64, 1, 31, 32, 33, 63, 64, 100, 1000];
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            probes.push(v);
            probes.push(v + 1);
            probes.push(v.saturating_mul(3) / 2);
            v = v.saturating_mul(2);
        }
        probes.push(u64::MAX);
        for &p in &probes {
            let idx = LatencyHistogram::index_of(p);
            let upper = LatencyHistogram::bucket_upper(idx);
            assert!(upper >= p, "upper({idx}) = {upper} < value {p}");
            if p >= SUB_BUCKETS {
                let err = (upper - p) as f64 / p as f64;
                assert!(
                    err <= 1.0 / SUB_BUCKETS as f64,
                    "value {p}: upper {upper}, rel err {err}"
                );
            } else {
                assert_eq!(upper, p);
            }
            // Indices are monotone in value within the probe set.
            if p > 0 {
                assert!(LatencyHistogram::index_of(p - 1) <= idx);
            }
        }
    }

    #[test]
    fn quantiles_bound_true_order_statistics() {
        use proptest::prelude::*;
        proptest!(|(values in proptest::collection::vec(0u64..10_000_000_000, 1..400))| {
            let mut h = LatencyHistogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut values = values.clone();
            values.sort_unstable();
            for q in [0.5, 0.9, 0.99, 1.0] {
                let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
                let truth = values[rank - 1];
                let got = h.value_at_quantile(q);
                // Upper-edge semantics: the reported value is an upper
                // bound on the true order statistic, within one bucket
                // width (≤ 1/SUB_BUCKETS relative) of it, and never above
                // the recorded maximum.
                prop_assert!(got <= h.max());
                prop_assert!(
                    got >= truth && got <= truth + truth / SUB_BUCKETS + 1,
                    "q={q}: got {got}, truth {truth}"
                );
            }
            prop_assert_eq!(h.count(), values.len() as u64);
            prop_assert_eq!(h.min(), values[0]);
            prop_assert_eq!(h.max(), *values.last().expect("non-empty"));
        });
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..5000u64 {
            let v = i * 37 % 100_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(a.value_at_quantile(q), whole.value_at_quantile(q));
        }
    }

    #[test]
    fn mean_is_exact_not_bucketed() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_003);
        h.record(999_997);
        assert!((h.mean() - 1_000_000.0).abs() < 1e-9);
    }
}
