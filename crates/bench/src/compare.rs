//! Snapshot-to-snapshot regression comparison.
//!
//! `bolt-bench --compare OLD NEW` reads two sets of `BENCH_*.json`
//! snapshots (single files or whole directories), matches them by
//! workload name, and reports per-workload deltas for client p50, client
//! p99, and achieved throughput. A workload *regresses* when its p99
//! grows — or its throughput shrinks — by more than the threshold
//! percentage; any regression makes the invocation exit nonzero, so the
//! perf trajectory under `results/` is enforceable in CI, not just
//! recorded.

use crate::loadgen::BenchSnapshot;
use std::path::Path;

/// Default regression threshold, percent. Open-loop tails on shared CI
/// hosts are noisy; 25 % catches real regressions (the kind that double a
/// tail) without tripping on scheduler jitter.
pub const DEFAULT_THRESHOLD_PCT: f64 = 25.0;

/// One workload's old-vs-new deltas. Latency deltas are positive when the
/// new run is *slower*; the throughput delta is positive when the new run
/// is *faster*.
#[derive(Clone, Debug)]
pub struct WorkloadDelta {
    /// Workload name shared by the matched snapshots.
    pub workload: String,
    /// Old client p50, nanoseconds.
    pub old_p50_ns: u64,
    /// New client p50, nanoseconds.
    pub new_p50_ns: u64,
    /// Client p50 change, percent (positive = slower).
    pub p50_pct: f64,
    /// Old client p99, nanoseconds.
    pub old_p99_ns: u64,
    /// New client p99, nanoseconds.
    pub new_p99_ns: u64,
    /// Client p99 change, percent (positive = slower).
    pub p99_pct: f64,
    /// Old achieved frames/s.
    pub old_fps: f64,
    /// New achieved frames/s.
    pub new_fps: f64,
    /// Throughput change, percent (positive = faster).
    pub fps_pct: f64,
    /// Whether this workload tripped the regression threshold.
    pub regressed: bool,
}

/// The matched comparison across two snapshot sets.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Per-workload deltas, in the old set's order.
    pub deltas: Vec<WorkloadDelta>,
    /// Threshold the regression verdicts used, percent.
    pub threshold_pct: f64,
    /// Workloads present only in the old set (dropped coverage).
    pub only_in_old: Vec<String>,
    /// Workloads present only in the new set (new coverage; not a
    /// failure).
    pub only_in_new: Vec<String>,
}

impl Comparison {
    /// Workloads that tripped the threshold.
    #[must_use]
    pub fn regressions(&self) -> Vec<&WorkloadDelta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }
}

/// Percent change from `old` to `new`; 0 when `old` is zero (nothing
/// meaningful to scale against).
fn pct(old: f64, new: f64) -> f64 {
    if old > 0.0 {
        (new - old) / old * 100.0
    } else {
        0.0
    }
}

/// Matches two snapshot sets by workload name and computes deltas.
///
/// # Errors
///
/// Returns an error if the sets share no workload — comparing disjoint
/// runs silently would always "pass".
pub fn compare(
    old: &[BenchSnapshot],
    new: &[BenchSnapshot],
    threshold_pct: f64,
) -> Result<Comparison, String> {
    let mut deltas = Vec::new();
    let mut only_in_old = Vec::new();
    for o in old {
        let Some(n) = new.iter().find(|n| n.workload == o.workload) else {
            only_in_old.push(o.workload.clone());
            continue;
        };
        let p50_pct = pct(
            o.client_latency.p50_ns as f64,
            n.client_latency.p50_ns as f64,
        );
        let p99_pct = pct(
            o.client_latency.p99_ns as f64,
            n.client_latency.p99_ns as f64,
        );
        let fps_pct = pct(o.throughput_fps, n.throughput_fps);
        deltas.push(WorkloadDelta {
            workload: o.workload.clone(),
            old_p50_ns: o.client_latency.p50_ns,
            new_p50_ns: n.client_latency.p50_ns,
            p50_pct,
            old_p99_ns: o.client_latency.p99_ns,
            new_p99_ns: n.client_latency.p99_ns,
            p99_pct,
            old_fps: o.throughput_fps,
            new_fps: n.throughput_fps,
            fps_pct,
            regressed: p99_pct > threshold_pct || fps_pct < -threshold_pct,
        });
    }
    let only_in_new = new
        .iter()
        .filter(|n| !old.iter().any(|o| o.workload == n.workload))
        .map(|n| n.workload.clone())
        .collect();
    if deltas.is_empty() {
        return Err(format!(
            "no common workloads to compare (old: {:?}, new: {:?})",
            old.iter().map(|s| &s.workload).collect::<Vec<_>>(),
            new.iter().map(|s| &s.workload).collect::<Vec<_>>()
        ));
    }
    Ok(Comparison {
        deltas,
        threshold_pct,
        only_in_old,
        only_in_new,
    })
}

/// Loads snapshots from `path`: one validated file, or every
/// `BENCH_*.json` in a directory (sorted by filename for stable output).
///
/// # Errors
///
/// Returns an error when the path is unreadable, any file fails schema
/// validation, or a directory holds no snapshots.
pub fn load_snapshots(path: &Path) -> Result<Vec<BenchSnapshot>, String> {
    if path.is_dir() {
        let mut files: Vec<_> = std::fs::read_dir(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("no BENCH_*.json under {}", path.display()));
        }
        files
            .iter()
            .map(|f| BenchSnapshot::validate_file(f))
            .collect()
    } else {
        Ok(vec![BenchSnapshot::validate_file(path)?])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;
    use crate::loadgen::{HistSummary, SNAPSHOT_SCHEMA_VERSION};

    fn snapshot(workload: &str, p50_ns: u64, p99_ns: u64, fps: f64) -> BenchSnapshot {
        let mut hist = LatencyHistogram::new();
        hist.record(p50_ns);
        let mut summary = HistSummary::from_histogram(&hist);
        summary.p50_ns = p50_ns;
        summary.p90_ns = p99_ns;
        summary.p99_ns = p99_ns;
        summary.p999_ns = p99_ns;
        summary.max_ns = p99_ns;
        BenchSnapshot {
            schema_version: SNAPSHOT_SCHEMA_VERSION,
            bench: "bolt-bench".into(),
            workload: workload.into(),
            git_rev: "abc1234".into(),
            kernel: "avx2".into(),
            transport: "uds".into(),
            threads: 4,
            target_rate_fps: 4000.0,
            batch_size: 1,
            models: Vec::new(),
            error_every: 0,
            duration_s: 0.0,
            reconnect_every: 0,
            reconnects: 0,
            swap_interval_ms: 0,
            n_features: 11,
            hostile_every: 0,
            hostile_sent: 0,
            hostile_handled: 0,
            frames_sent: 1000,
            responses_ok: 1000,
            expected_rejections: 0,
            wrong_class: 0,
            protocol_errors: 0,
            elapsed_s: 1000.0 / fps,
            throughput_fps: fps,
            throughput_sps: fps,
            client_latency: summary.clone(),
            service_latency: summary,
        }
    }

    #[test]
    fn delta_math_and_direction() {
        let old = [snapshot("w", 1000, 2000, 4000.0)];
        let new = [snapshot("w", 1100, 1500, 5000.0)];
        let cmp = compare(&old, &new, 25.0).expect("compares");
        let d = &cmp.deltas[0];
        assert!((d.p50_pct - 10.0).abs() < 1e-9, "{}", d.p50_pct);
        assert!((d.p99_pct - -25.0).abs() < 1e-9, "{}", d.p99_pct);
        assert!((d.fps_pct - 25.0).abs() < 1e-9, "{}", d.fps_pct);
        assert!(!d.regressed, "faster run is not a regression");
    }

    #[test]
    fn threshold_trips_on_p99_growth_and_throughput_loss() {
        let old = [
            snapshot("a", 1000, 1000, 1000.0),
            snapshot("b", 1000, 1000, 1000.0),
        ];
        // a: p99 +50 % (regression); b: throughput −50 % (regression).
        let new = [
            snapshot("a", 1000, 1500, 1000.0),
            snapshot("b", 1000, 1000, 500.0),
        ];
        let cmp = compare(&old, &new, 25.0).expect("compares");
        assert_eq!(cmp.regressions().len(), 2);
        // A generous threshold lets both pass.
        let cmp = compare(&old, &new, 60.0).expect("compares");
        assert!(cmp.regressions().is_empty());
    }

    #[test]
    fn disjoint_sets_are_an_error_and_partial_overlap_is_reported() {
        let old = [
            snapshot("gone", 1000, 1000, 1000.0),
            snapshot("kept", 1000, 1000, 1000.0),
        ];
        let new = [
            snapshot("kept", 1000, 1000, 1000.0),
            snapshot("added", 1000, 1000, 1000.0),
        ];
        let cmp = compare(&old, &new, 25.0).expect("compares");
        assert_eq!(cmp.deltas.len(), 1);
        assert_eq!(cmp.only_in_old, vec!["gone".to_owned()]);
        assert_eq!(cmp.only_in_new, vec!["added".to_owned()]);
        assert!(compare(&old[..1], &new[1..], 25.0).is_err());
    }

    #[test]
    fn load_snapshots_reads_files_and_directories() {
        let dir = std::env::temp_dir().join(format!("bolt-compare-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let a = snapshot("a", 1000, 2000, 4000.0);
        let b = snapshot("b", 1000, 2000, 4000.0);
        a.write_to(&dir).expect("writes");
        let path_b = b.write_to(&dir).expect("writes");
        std::fs::write(dir.join("notes.txt"), "ignored").expect("writes");
        let from_dir = load_snapshots(&dir).expect("loads dir");
        assert_eq!(from_dir.len(), 2);
        let from_file = load_snapshots(&path_b).expect("loads file");
        assert_eq!(from_file[0].workload, "b");
        assert!(load_snapshots(&dir.join("missing")).is_err());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
