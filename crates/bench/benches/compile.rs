//! Compilation-cost benchmarks — preprocessing the paper does not report.
//!
//! Bolt's speedup is bought with an offline compile step (path enumeration,
//! clustering, table recombination, bloom construction). These benches
//! quantify that cost across forest sizes and thresholds, so a deployer can
//! weigh it against the paper's latency wins.

use bolt_bench::train_workload;
use bolt_core::{BoltConfig, BoltForest};
use bolt_data::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_compile_by_trees(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_by_tree_count");
    group.sample_size(10);
    for n_trees in [10usize, 20, 30] {
        let trained = train_workload(Workload::MnistLike, n_trees, 4, 1500, 10);
        group.bench_with_input(BenchmarkId::from_parameter(n_trees), &n_trees, |b, _| {
            b.iter(|| {
                black_box(
                    BoltForest::compile(
                        black_box(&trained.forest),
                        &BoltConfig::default().with_cluster_threshold(2),
                    )
                    .expect("compiles"),
                )
            });
        });
    }
    group.finish();
}

fn bench_compile_by_threshold(c: &mut Criterion) {
    let trained = train_workload(Workload::MnistLike, 10, 6, 1500, 10);
    let mut group = c.benchmark_group("compile_by_threshold");
    group.sample_size(10);
    for threshold in [0usize, 2, 8, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threshold),
            &threshold,
            |b, &t| {
                b.iter(|| {
                    black_box(
                        BoltForest::compile(
                            black_box(&trained.forest),
                            &BoltConfig::default().with_cluster_threshold(t),
                        )
                        .expect("compiles"),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default();
    targets = bench_compile_by_trees, bench_compile_by_threshold
);
criterion_main!(benches);
