//! Criterion micro-benchmarks of the dictionary scan kernels: the scalar
//! flat-layout reference vs each blocked SIMD kernel the host supports,
//! on deep scan-bound LSTW forests (cluster threshold 0 — one dictionary
//! entry per root-to-leaf path, so the scan dominates inference).
//!
//! Two dictionary sizes are measured: a cache-resident one (the serving
//! sweet spot Bolt targets) and a larger one that spills to L3, where the
//! scan is memory-bandwidth-bound and SIMD width matters less.
//!
//! Throughput is reported in dictionary entries tested per second; the
//! tentpole target is ≥1.5× scalar for the best native kernel on the
//! cache-resident forest.

use bolt_bench::{train_workload, TrainedWorkload};
use bolt_core::{BoltConfig, BoltForest, Kernel};
use bolt_data::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_scan_group(c: &mut Criterion, name: &str, trained: &TrainedWorkload, bolt: &BoltForest) {
    let view = bolt.view();
    let dict = view.dict();
    let inputs: Vec<_> = (0..trained.test.len())
        .map(|i| bolt.encode(trained.test.sample(i)))
        .collect();
    println!(
        "{name}: {} entries x {} words/entry ({} KiB mask+key), {} inputs",
        dict.len(),
        dict.stride(),
        dict.len() * dict.stride() * 16 / 1024,
        inputs.len(),
    );
    let mut group = c.benchmark_group(name);
    // One iteration scans the whole dictionary once per input sample.
    group.throughput(Throughput::Elements((dict.len() * inputs.len()) as u64));
    for kernel in Kernel::all_supported() {
        group.bench_with_input(BenchmarkId::from_parameter(kernel), &kernel, |b, &k| {
            b.iter(|| {
                let mut acc = 0u32;
                for bits in &inputs {
                    dict.scan_with_kernel(black_box(bits), k, |id| acc = acc.wrapping_add(id));
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

/// The fused batched kernels: full `batch_votes` pipeline (lane
/// transposition + blocked lane scan + gathered addresses + keyed
/// probes + vote arena) per forced ISA, at a kernel-sized batch.
/// Same throughput unit as the single-sample groups: entries tested
/// per second (entries × batch per iteration).
fn bench_batch_group(c: &mut Criterion, name: &str, trained: &TrainedWorkload, bolt: &BoltForest) {
    const BATCH: usize = 64;
    let dict_len = bolt.view().dict().len();
    let samples: Vec<&[f32]> = (0..trained.test.len().min(BATCH))
        .map(|i| trained.test.sample(i))
        .collect();
    let mut group = c.benchmark_group(name);
    group.throughput(Throughput::Elements((dict_len * samples.len()) as u64));
    for kernel in Kernel::all_supported() {
        group.bench_with_input(BenchmarkId::from_parameter(kernel), &kernel, |b, &k| {
            let mut scratch = bolt.batch_scratch();
            b.iter(|| {
                bolt.batch_votes_with_kernel(black_box(&samples), k, &mut scratch);
                black_box(scratch.votes(samples.len() - 1)[0])
            });
        });
    }
    group.finish();
}

fn compile_deep(trained: &TrainedWorkload) -> BoltForest {
    BoltForest::compile(
        &trained.forest,
        &BoltConfig::default().with_cluster_threshold(0),
    )
    .expect("threshold-0 forest compiles")
}

fn bench_scan_kernels(c: &mut Criterion) {
    println!("host kernel: {}", Kernel::selected());

    let small = train_workload(Workload::LstwLike, 20, 8, 400, 64);
    let small_bolt = compile_deep(&small);
    bench_scan_group(
        c,
        "scan_kernels_lstw_20trees_h8_th0_small",
        &small,
        &small_bolt,
    );

    let deep = train_workload(Workload::LstwLike, 20, 8, 2000, 64);
    let bolt = compile_deep(&deep);
    bench_scan_group(c, "scan_kernels_lstw_20trees_h8_th0_large", &deep, &bolt);

    bench_batch_group(
        c,
        "batch_kernels_lstw_20trees_h8_th0_small",
        &small,
        &small_bolt,
    );
    bench_batch_group(c, "batch_kernels_lstw_20trees_h8_th0_large", &deep, &bolt);

    // End-to-end single-sample classification under the dispatched kernel,
    // for the satellite question "what does the scan win buy the whole
    // pipeline" — same deep forest, votes + argmax included.
    let mut group = c.benchmark_group("classify_lstw_20trees_h8_th0");
    let samples: Vec<&[f32]> = (0..deep.test.len()).map(|i| deep.test.sample(i)).collect();
    group.throughput(Throughput::Elements(samples.len() as u64));
    group.bench_function(BenchmarkId::from_parameter(Kernel::selected()), |b| {
        let mut scratch = bolt.scratch();
        b.iter(|| {
            let mut last = 0u32;
            for s in &samples {
                last = bolt.classify_with(black_box(s), &mut scratch);
            }
            black_box(last)
        });
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_scan_kernels
);
criterion_main!(benches);
