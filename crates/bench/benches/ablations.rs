//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! bloom filtering on/off, clustering threshold, packed vs unpacked
//! engine, and explanation tracking overhead.

use bolt_bench::train_workload;
use bolt_core::layout::PackedBolt;
use bolt_core::{BoltConfig, BoltForest};
use bolt_data::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_bloom_ablation(c: &mut Criterion) {
    let trained = train_workload(Workload::MnistLike, 10, 4, 1500, 100);
    let sample = trained.test.sample(0).to_vec();
    let mut group = c.benchmark_group("ablation_bloom");
    for (label, bits) in [("off", 0usize), ("10bpk", 10), ("16bpk", 16)] {
        let bolt = BoltForest::compile(
            &trained.forest,
            &BoltConfig::default()
                .with_cluster_threshold(2)
                .with_bloom_bits_per_key(bits),
        )
        .expect("compiles");
        group.bench_with_input(BenchmarkId::from_parameter(label), &bits, |b, _| {
            b.iter(|| black_box(bolt.classify(black_box(&sample))));
        });
    }
    group.finish();
}

fn bench_threshold_ablation(c: &mut Criterion) {
    let trained = train_workload(Workload::MnistLike, 10, 4, 1500, 100);
    let sample = trained.test.sample(0).to_vec();
    let mut group = c.benchmark_group("ablation_cluster_threshold");
    for threshold in [0usize, 2, 4, 8, 16] {
        let bolt = BoltForest::compile(
            &trained.forest,
            &BoltConfig::default().with_cluster_threshold(threshold),
        )
        .expect("compiles");
        group.bench_with_input(
            BenchmarkId::from_parameter(threshold),
            &threshold,
            |b, _| {
                b.iter(|| black_box(bolt.classify(black_box(&sample))));
            },
        );
    }
    group.finish();
}

fn bench_packed_vs_unpacked(c: &mut Criterion) {
    let trained = train_workload(Workload::MnistLike, 10, 4, 1500, 100);
    let bolt = BoltForest::compile(
        &trained.forest,
        &BoltConfig::default().with_cluster_threshold(2),
    )
    .expect("compiles");
    let packed = PackedBolt::from_bolt(&bolt);
    let bits = bolt.encode(trained.test.sample(0));
    let mut group = c.benchmark_group("ablation_layout");
    group.bench_function("unpacked", |b| {
        b.iter(|| black_box(bolt.classify_bits(black_box(&bits))));
    });
    group.bench_function("packed", |b| {
        b.iter(|| black_box(packed.classify_bits(black_box(&bits))));
    });
    group.finish();
}

fn bench_explanations(c: &mut Criterion) {
    let trained = train_workload(Workload::MnistLike, 10, 4, 1500, 100);
    let sample = trained.test.sample(0).to_vec();
    let explained = BoltForest::compile(
        &trained.forest,
        &BoltConfig::default()
            .with_cluster_threshold(2)
            .with_explanations(true),
    )
    .expect("compiles");
    let mut group = c.benchmark_group("ablation_explanations");
    group.bench_function("classify", |b| {
        b.iter(|| black_box(explained.classify(black_box(&sample))));
    });
    group.bench_function("classify_explained", |b| {
        b.iter(|| black_box(explained.classify_explained(black_box(&sample)).class));
    });
    group.finish();
}

/// §2.1: "when batching queries Ranger can benefit from its optimizations
/// and achieve very low response times" — compare Ranger's amortized
/// per-sample cost in a 256-batch against its single-sample service cost
/// and against Bolt's single-sample cost.
fn bench_ranger_batching(c: &mut Criterion) {
    use bolt_baselines::{InferenceEngine, RangerLikeForest};
    let trained = train_workload(Workload::MnistLike, 10, 4, 1500, 256);
    let ranger = RangerLikeForest::from_forest(&trained.forest);
    let batch: Vec<&[f32]> = (0..trained.test.len())
        .map(|i| trained.test.sample(i))
        .collect();
    let mut group = c.benchmark_group("ablation_ranger_batching");
    group.bench_function("single_sample", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let class = ranger.classify(black_box(batch[i % batch.len()]));
            i += 1;
            black_box(class)
        });
    });
    group.bench_function("batch_256_amortized", |b| {
        b.iter(|| black_box(ranger.classify_batch(black_box(&batch))));
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_bloom_ablation, bench_threshold_ablation, bench_packed_vs_unpacked,
              bench_explanations, bench_ranger_batching
);
criterion_main!(benches);
