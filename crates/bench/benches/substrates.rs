//! Micro-benchmarks of the substrate crates: bitpack primitives, bloom
//! probes, table lookups, predicate encoding, and the cache simulator.

use bolt_bench::train_workload;
use bolt_bitpack::{Mask, PackedIntVec};
use bolt_core::filter::table_key;
use bolt_core::{BloomFilter, BoltConfig, BoltForest};
use bolt_data::Workload;
use bolt_simcpu::{hw, CacheSim, SimCpu};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_mask_ops(c: &mut Criterion) {
    let mut input = Mask::zeros(512);
    let mut mask = Mask::zeros(512);
    let mut key = Mask::zeros(512);
    for i in (0..512).step_by(7) {
        input.set(i, true);
        mask.set(i, i % 3 == 0);
        key.set(i, i % 3 == 0);
    }
    c.bench_function("mask_masked_eq_512b", |b| {
        b.iter(|| black_box(input.masked_eq(black_box(&mask), black_box(&key))));
    });
}

fn bench_packed_int(c: &mut Criterion) {
    let values: Vec<u64> = (0..4096).map(|i| i % 509).collect();
    let packed = PackedIntVec::from_values(9, values.iter().copied());
    c.bench_function("packed_int_get_4k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let v = packed.get(i % packed.len());
            i += 1;
            black_box(v)
        });
    });
}

fn bench_bloom(c: &mut Criterion) {
    let keys: Vec<u64> = (0..10_000u64).map(|i| table_key(0, i)).collect();
    let filter = BloomFilter::from_keys(keys.iter().copied(), 10);
    c.bench_function("bloom_contains", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let hit = filter.contains(black_box(table_key(1, i)));
            i += 1;
            black_box(hit)
        });
    });
}

fn bench_table_lookup(c: &mut Criterion) {
    let trained = train_workload(Workload::MnistLike, 10, 4, 1500, 50);
    let bolt = BoltForest::compile(
        &trained.forest,
        &BoltConfig::default().with_cluster_threshold(2),
    )
    .expect("compiles");
    let cells: Vec<(u32, u64)> = bolt
        .table()
        .cells()
        .map(|cell| (cell.entry_id, cell.address))
        .collect();
    c.bench_function("recombined_table_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (e, a) = cells[i % cells.len()];
            i += 1;
            black_box(bolt.table().lookup(e, a))
        });
    });
}

fn bench_encode(c: &mut Criterion) {
    let trained = train_workload(Workload::MnistLike, 10, 4, 1500, 50);
    let bolt = BoltForest::compile(&trained.forest, &BoltConfig::default()).expect("compiles");
    let sample = trained.test.sample(0).to_vec();
    c.bench_function("predicate_encode_mnist", |b| {
        b.iter(|| black_box(bolt.encode(black_box(&sample))));
    });
}

fn bench_cache_sim(c: &mut Criterion) {
    c.bench_function("cache_sim_1k_accesses", |b| {
        b.iter(|| {
            let mut cache = CacheSim::new(1 << 16, 64, 8);
            for i in 0..1000u64 {
                cache.access(black_box(i * 48));
            }
            black_box(cache.misses())
        });
    });
    c.bench_function("simcpu_instrumented_load", |b| {
        let mut cpu = SimCpu::new(&hw::xeon_e5_2650_v4());
        let mut i = 0u64;
        b.iter(|| {
            cpu.load(black_box(i * 64), 8);
            i += 1;
        });
    });
}

fn bench_forest_substrate(c: &mut Criterion) {
    let trained = train_workload(Workload::MnistLike, 10, 4, 1500, 50);
    let sample = trained.test.sample(0).to_vec();
    c.bench_function("random_forest_predict", |b| {
        b.iter(|| black_box(trained.forest.predict(black_box(&sample))));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mask_ops, bench_packed_int, bench_bloom, bench_table_lookup,
              bench_encode, bench_cache_sim, bench_forest_substrate
);
criterion_main!(benches);
