//! Criterion micro-benchmarks of the batched entry-major kernel: per-sample
//! scan vs entry-major batch vs thread-sharded batch across batch sizes.
//!
//! Times are per *batch*, so divide by the batch size for per-sample cost;
//! `extra_batching` prints that amortized table directly.

use bolt_bench::{train_workload, Platforms};
use bolt_core::{BoltConfig, BoltForest, Kernel};
use bolt_data::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const BATCH_SIZES: [usize; 4] = [1, 8, 64, 512];

fn bench_forest(c: &mut Criterion, group_name: &str, bolt: &BoltForest, samples: &[&[f32]]) {
    let mut group = c.benchmark_group(group_name);
    for &batch in &BATCH_SIZES {
        let slice = &samples[..batch];

        group.bench_with_input(BenchmarkId::new("per_sample", batch), &batch, |b, _| {
            let mut scratch = bolt.scratch();
            let mut out = Vec::with_capacity(batch);
            b.iter(|| {
                out.clear();
                for s in slice {
                    out.push(bolt.classify_with(black_box(s), &mut scratch));
                }
                black_box(out.last().copied())
            });
        });

        group.bench_with_input(BenchmarkId::new("entry_major", batch), &batch, |b, _| {
            let mut scratch = bolt.batch_scratch();
            let mut out = Vec::with_capacity(batch);
            b.iter(|| {
                bolt.classify_batch_with(black_box(slice), &mut scratch, &mut out);
                black_box(out.last().copied())
            });
        });

        // The fused batch kernels, pinned per ISA — the dispatched run
        // above already uses the best of these; the forced legs expose
        // where each ISA's width stops paying.
        for kernel in Kernel::all_supported() {
            group.bench_with_input(
                BenchmarkId::new(format!("entry_major_{kernel}"), batch),
                &batch,
                |b, _| {
                    let mut scratch = bolt.batch_scratch();
                    b.iter(|| {
                        bolt.batch_votes_with_kernel(black_box(slice), kernel, &mut scratch);
                        black_box(scratch.votes(batch - 1)[0])
                    });
                },
            );
        }

        group.bench_with_input(BenchmarkId::new("sharded_4", batch), &batch, |b, _| {
            b.iter(|| black_box(bolt.classify_batch_sharded(black_box(slice), 4)));
        });
    }
    group.finish();
}

fn bench_batch_kernels(c: &mut Criterion) {
    // A service-tuned forest (shallow trees, clustered dictionary) and a
    // deep scan-bound forest (threshold 0: one entry per path), where the
    // entry-major inversion has the most mask/key traffic to amortize.
    let trained = train_workload(Workload::MnistLike, 20, 4, 1500, 512);
    let platforms = Platforms::build(&trained, 2);
    let samples: Vec<&[f32]> = (0..trained.test.len())
        .map(|i| trained.test.sample(i))
        .collect();
    bench_forest(c, "batching_mnist_20trees_h4", &platforms.bolt, &samples);

    let deep = train_workload(Workload::LstwLike, 20, 8, 2000, 512);
    let deep_bolt = BoltForest::compile(
        &deep.forest,
        &BoltConfig::default().with_cluster_threshold(0),
    )
    .expect("threshold-0 forest compiles");
    let deep_samples: Vec<&[f32]> = (0..deep.test.len()).map(|i| deep.test.sample(i)).collect();
    bench_forest(c, "batching_lstw_20trees_h8_th0", &deep_bolt, &deep_samples);
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_batch_kernels
);
criterion_main!(benches);
