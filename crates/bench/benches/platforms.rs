//! Criterion micro-benchmarks of single-sample classification on all four
//! platforms (the statistical backbone behind Figs. 10/11/14).

use bolt_bench::{train_workload, Platforms};
use bolt_data::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_small_forest(c: &mut Criterion) {
    let trained = train_workload(Workload::MnistLike, 10, 4, 1500, 200);
    let platforms = Platforms::build(&trained, 2);
    let samples: Vec<&[f32]> = (0..trained.test.len())
        .map(|i| trained.test.sample(i))
        .collect();

    let mut group = c.benchmark_group("mnist_10trees_h4");
    for (name, engine) in platforms.engines() {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut i = 0usize;
            b.iter(|| {
                let class = engine.classify(black_box(samples[i % samples.len()]));
                i += 1;
                black_box(class)
            });
        });
    }
    group.finish();
}

fn bench_tree_count_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("bolt_by_tree_count");
    for n_trees in [10usize, 20, 30] {
        let trained = train_workload(Workload::MnistLike, n_trees, 4, 1500, 100);
        let platforms = Platforms::build(&trained, 2);
        let sample = trained.test.sample(0).to_vec();
        group.bench_with_input(BenchmarkId::from_parameter(n_trees), &n_trees, |b, _| {
            b.iter(|| black_box(platforms.bolt.classify(black_box(&sample))));
        });
    }
    group.finish();
}

fn bench_datasets(c: &mut Criterion) {
    let mut group = c.benchmark_group("bolt_by_dataset");
    for workload in Workload::all() {
        let trained = train_workload(workload, 10, 4, 1000, 100);
        let platforms = Platforms::build(&trained, 2);
        let sample = trained.test.sample(0).to_vec();
        group.bench_with_input(
            BenchmarkId::from_parameter(workload.name()),
            &workload,
            |b, _| {
                b.iter(|| black_box(platforms.bolt.classify(black_box(&sample))));
            },
        );
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_small_forest, bench_tree_count_scaling, bench_datasets
);
criterion_main!(benches);
