//! Criterion benchmarks for the regression path: bagged and boosted
//! ensembles, traversal vs compiled lookup tables.

use bolt_core::{BoltConfig, BoltRegressor};
use bolt_forest::{GbtConfig, GradientBoostedRegressor, RegressionConfig, RegressionForest};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_bagged_regression(c: &mut Criterion) {
    let train = bolt_data::trip_duration_like(1500, 1);
    let forest = RegressionForest::train(
        &train,
        &RegressionConfig::new(10).with_max_height(5).with_seed(2),
    );
    let bolt = BoltRegressor::compile(&forest, &BoltConfig::default()).expect("compiles");
    let sample = train.sample(0).to_vec();
    let mut group = c.benchmark_group("regression_bagged");
    group.bench_function("forest_traversal", |b| {
        b.iter(|| black_box(forest.predict(black_box(&sample))));
    });
    group.bench_function("bolt_tables", |b| {
        b.iter(|| black_box(bolt.predict(black_box(&sample))));
    });
    group.finish();
}

fn bench_boosted_regression(c: &mut Criterion) {
    let train = bolt_data::trip_duration_like(1200, 3);
    let model = GradientBoostedRegressor::train(
        &train,
        &GbtConfig::new(30).with_max_height(3).with_seed(4),
    );
    let bolt = BoltRegressor::compile_boosted(&model, &BoltConfig::default()).expect("compiles");
    let sample = train.sample(0).to_vec();
    let mut group = c.benchmark_group("regression_boosted");
    group.bench_function("gbt_traversal", |b| {
        b.iter(|| black_box(model.predict(black_box(&sample))));
    });
    group.bench_function("bolt_tables", |b| {
        b.iter(|| black_box(bolt.predict(black_box(&sample))));
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_bagged_regression, bench_boosted_regression
);
criterion_main!(benches);
