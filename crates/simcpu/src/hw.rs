//! Hardware profiles for the machines of §6.2.
//!
//! The paper evaluates on an Intel Xeon E5-2650 v4 (12 cores, 30 MB LLC,
//! 2.2 GHz) and two Google Cloud instances: E2-standard-4 ("EC Small",
//! 4 vCPUs, 16 GB) and E2-standard-32 ("EC Large", 32 vCPUs, 128 GB).
//! Cache/latency values for the cloud VMs are typical for the E2 family's
//! underlying hosts; the reproduction only relies on their relative shape.

use bolt_core::CostModel;
use serde::{Deserialize, Serialize};

/// A named single-core hardware model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HardwareProfile {
    /// Marketing-style name used in Fig. 9's x axis.
    pub name: String,
    /// Physical/virtual cores available for partitioned inference.
    pub cores: usize,
    /// Per-core L1 data cache capacity in bytes.
    pub l1_bytes: usize,
    /// Per-core L2 cache capacity in bytes.
    pub l2_bytes: usize,
    /// Last-level cache capacity in bytes (whole socket).
    pub llc_bytes: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// LLC associativity.
    pub associativity: usize,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// Sustained instructions per cycle.
    pub ipc: f64,
    /// Main-memory access latency in nanoseconds.
    pub mem_latency_ns: f64,
    /// LLC hit latency in nanoseconds.
    pub cache_latency_ns: f64,
    /// L1 hit latency in nanoseconds.
    pub l1_latency_ns: f64,
    /// L2 hit latency in nanoseconds.
    pub l2_latency_ns: f64,
    /// Cycles lost per branch misprediction.
    pub branch_miss_penalty_cycles: f64,
}

impl HardwareProfile {
    /// Converts to the analytic [`CostModel`] Phase 2 uses, giving one core
    /// its proportional slice of the LLC.
    #[must_use]
    pub fn to_cost_model(&self) -> CostModel {
        CostModel {
            llc_bytes: self.llc_bytes / self.cores.max(1),
            freq_ghz: self.freq_ghz,
            mem_latency_ns: self.mem_latency_ns,
            cache_latency_ns: self.cache_latency_ns,
            aggregation_ns_per_core: 25.0,
        }
    }
}

/// The paper's default server: Intel Xeon E5-2650 v4 @ 2.20 GHz, 12 cores,
/// 30 MB LLC.
#[must_use]
pub fn xeon_e5_2650_v4() -> HardwareProfile {
    HardwareProfile {
        name: "E5-2650 v4".to_owned(),
        cores: 12,
        l1_bytes: 32 * 1024,
        l2_bytes: 256 * 1024,
        llc_bytes: 30 * 1024 * 1024,
        line_bytes: 64,
        associativity: 20,
        freq_ghz: 2.2,
        ipc: 2.5,
        mem_latency_ns: 90.0,
        cache_latency_ns: 12.0,
        l1_latency_ns: 1.1,
        l2_latency_ns: 4.0,
        branch_miss_penalty_cycles: 15.0,
    }
}

/// Google Cloud E2-standard-4 ("EC Small"): 4 vCPUs, 16 GB.
#[must_use]
pub fn ec_small() -> HardwareProfile {
    HardwareProfile {
        name: "EC Small".to_owned(),
        cores: 4,
        l1_bytes: 32 * 1024,
        l2_bytes: 1024 * 1024,
        llc_bytes: 16 * 1024 * 1024,
        line_bytes: 64,
        associativity: 16,
        freq_ghz: 2.25,
        ipc: 2.2,
        mem_latency_ns: 110.0,
        cache_latency_ns: 14.0,
        l1_latency_ns: 1.3,
        l2_latency_ns: 5.0,
        branch_miss_penalty_cycles: 16.0,
    }
}

/// Google Cloud E2-standard-32 ("EC Large"): 32 vCPUs, 128 GB.
#[must_use]
pub fn ec_large() -> HardwareProfile {
    HardwareProfile {
        name: "EC Large".to_owned(),
        cores: 32,
        l1_bytes: 32 * 1024,
        l2_bytes: 1024 * 1024,
        llc_bytes: 33 * 1024 * 1024,
        line_bytes: 64,
        associativity: 16,
        freq_ghz: 2.25,
        ipc: 2.3,
        mem_latency_ns: 100.0,
        cache_latency_ns: 13.0,
        l1_latency_ns: 1.2,
        l2_latency_ns: 4.5,
        branch_miss_penalty_cycles: 16.0,
    }
}

/// All three evaluation machines, in Fig. 9 order.
#[must_use]
pub fn all_profiles() -> Vec<HardwareProfile> {
    vec![xeon_e5_2650_v4(), ec_small(), ec_large()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_paper_shapes() {
        let xeon = xeon_e5_2650_v4();
        assert_eq!(xeon.cores, 12);
        assert_eq!(xeon.llc_bytes, 30 * 1024 * 1024);
        assert!((xeon.freq_ghz - 2.2).abs() < 1e-9);
        assert_eq!(ec_small().cores, 4);
        assert_eq!(ec_large().cores, 32);
        assert_eq!(all_profiles().len(), 3);
    }

    #[test]
    fn cost_model_splits_llc_per_core() {
        let xeon = xeon_e5_2650_v4();
        let model = xeon.to_cost_model();
        assert_eq!(model.llc_bytes, xeon.llc_bytes / 12);
        assert_eq!(model.freq_ghz, xeon.freq_ghz);
    }
}
