//! Set-associative LRU cache model.

/// A single-level, set-associative cache with true-LRU replacement.
///
/// Models the last-level cache the Bolt paper reasons about: the structure
/// either fits (hits) or thrashes (misses to memory).
///
/// # Examples
///
/// ```
/// use bolt_simcpu::CacheSim;
///
/// let mut cache = CacheSim::new(4096, 64, 4);
/// assert!(!cache.access(0));      // cold miss
/// assert!(cache.access(8));       // same 64-byte line
/// assert_eq!(cache.misses(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct CacheSim {
    /// Per-set tag stacks; most recently used at the back.
    sets: Vec<Vec<u64>>,
    assoc: usize,
    line_bits: u32,
    set_mask: u64,
    hits: u64,
    misses: u64,
}

impl CacheSim {
    /// Creates a cache of `capacity_bytes` with `line_bytes` lines and
    /// `assoc`-way associativity. Capacity and line size are rounded to the
    /// nearest powers of two.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero or `capacity_bytes < line_bytes * assoc`.
    #[must_use]
    pub fn new(capacity_bytes: usize, line_bytes: usize, assoc: usize) -> Self {
        assert!(
            capacity_bytes > 0 && line_bytes > 0 && assoc > 0,
            "zero cache parameter"
        );
        let line_bytes = line_bytes.next_power_of_two();
        let capacity = capacity_bytes.next_power_of_two();
        assert!(
            capacity >= line_bytes * assoc,
            "capacity {capacity} too small for {assoc}-way sets of {line_bytes}-byte lines"
        );
        // Set count must be a power of two for the index mask; round down
        // (equivalently, round associativity up a little).
        let raw_sets = (capacity / line_bytes / assoc).max(1);
        let n_sets = if raw_sets.is_power_of_two() {
            raw_sets
        } else {
            raw_sets.next_power_of_two() / 2
        };
        Self {
            sets: vec![Vec::with_capacity(assoc); n_sets],
            assoc,
            line_bits: line_bytes.trailing_zeros(),
            set_mask: (n_sets - 1) as u64,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses one byte address; returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_bits;
        let set = &mut self.sets[(line & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            let tag = set.remove(pos);
            set.push(tag);
            self.hits += 1;
            true
        } else {
            if set.len() == self.assoc {
                set.remove(0);
            }
            set.push(line);
            self.misses += 1;
            false
        }
    }

    /// Accesses a byte range, touching every line it spans.
    pub fn access_range(&mut self, addr: u64, bytes: u64) {
        let first = addr >> self.line_bits;
        let last = (addr + bytes.max(1) - 1) >> self.line_bits;
        for line in first..=last {
            self.access(line << self.line_bits);
        }
    }

    /// Total hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cache sets.
    #[must_use]
    pub fn n_sets(&self) -> usize {
        self.sets.len()
    }

    /// Line size in bytes.
    #[must_use]
    pub fn line_bytes(&self) -> u64 {
        1 << self.line_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = CacheSim::new(1024, 64, 2);
        assert!(!c.access(100));
        for _ in 0..10 {
            assert!(c.access(100));
        }
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 10);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2-way, 1 set: capacity = 2 lines of 64B.
        let mut c = CacheSim::new(128, 64, 2);
        c.access(0); // line 0
        c.access(64); // line 1
        c.access(0); // touch line 0 (now MRU)
        c.access(128); // evicts line 1 (LRU)
        assert!(c.access(0), "line 0 must survive");
        assert!(!c.access(64), "line 1 was evicted");
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = CacheSim::new(1024, 64, 2); // 16 lines
                                                // Stream 64 distinct lines twice: second pass still misses.
        for pass in 0..2 {
            for i in 0..64u64 {
                c.access(i * 64);
            }
            let _ = pass;
        }
        assert_eq!(c.misses(), 128, "streaming working set 4x cache never hits");
    }

    #[test]
    fn small_working_set_fits() {
        let mut c = CacheSim::new(4096, 64, 4);
        for _ in 0..4 {
            for i in 0..8u64 {
                c.access(i * 64);
            }
        }
        assert_eq!(c.misses(), 8, "8 lines fit; only cold misses");
    }

    #[test]
    fn access_range_touches_every_line() {
        let mut c = CacheSim::new(4096, 64, 4);
        c.access_range(60, 10); // spans lines 0 and 1
        assert_eq!(c.misses(), 2);
        c.access_range(0, 1);
        assert_eq!(c.hits(), 1);
    }

    #[test]
    #[should_panic(expected = "zero cache parameter")]
    fn zero_parameter_panics() {
        let _ = CacheSim::new(0, 64, 4);
    }

    #[test]
    fn set_count_is_always_a_power_of_two() {
        // 30 MiB / 64 B / 20-way would be 24576 sets — not a power of two.
        let c = CacheSim::new(30 * 1024 * 1024, 64, 20);
        assert!(c.n_sets().is_power_of_two(), "sets {}", c.n_sets());
        let c = CacheSim::new(4096, 64, 3);
        assert!(c.n_sets().is_power_of_two());
    }
}
