//! Software CPU-metrics substrate for the Bolt reproduction.
//!
//! The paper's Fig. 12 reports hardware performance counters (instructions,
//! branches taken, branch misses, cache misses) for each platform. Portable
//! access to PMUs is unavailable in this reproduction environment, so this
//! crate provides the substitute substrate: a set-associative LRU cache
//! model ([`CacheSim`]), a gshare branch predictor ([`GsharePredictor`]),
//! and an accounting CPU ([`SimCpu`]) through which *instrumented mirrors*
//! of the real inference algorithms ([`instrument`]) replay their memory
//! and branching behaviour. Fig. 12's claim is relative — Bolt does orders
//! of magnitude fewer branches and cache misses than per-node traversal —
//! and that relation is exactly what the event streams preserve.
//!
//! [`hw`] defines the named hardware profiles of §6.2 (Xeon E5-2650 v4 and
//! the two Google Cloud instances) used by Fig. 9's latency model.
//!
//! # Examples
//!
//! ```
//! use bolt_simcpu::{hw, SimCpu};
//!
//! let mut cpu = SimCpu::new(&hw::xeon_e5_2650_v4());
//! cpu.inst(10);
//! cpu.load(0x1000, 8);
//! cpu.branch_at(0x40, true);
//! let c = cpu.counters();
//! assert_eq!(c.instructions, 12); // 10 ALU + 1 load + 1 branch
//! assert_eq!(c.branches, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod cache;
mod cpu;
pub mod hw;
pub mod instrument;

pub use branch::GsharePredictor;
pub use cache::CacheSim;
pub use cpu::{Counters, SimCpu};
pub use hw::HardwareProfile;
