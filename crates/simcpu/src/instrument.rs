//! Instrumented mirrors of the four inference platforms (for Fig. 12).
//!
//! Each mirror walks the *real* data structures of its platform (the
//! compiled [`BoltForest`], the trained [`RandomForest`] under each
//! baseline's layout) and replays the resulting instruction, branch, and
//! memory-access stream into a [`SimCpu`]. The classes returned are the
//! platforms' real predictions, so tests can assert the mirrors stay honest.
//!
//! Modeling constants (documented here and in EXPERIMENTS.md):
//!
//! * Scikit's Python-interpreter overhead is modeled as
//!   [`PY_CALL_INSTRUCTIONS`] retired instructions plus
//!   [`PY_TOUCH_LINES`] cache lines touched in a rotating 32 MiB
//!   interpreter heap per `predict()` call — a deliberately conservative
//!   stand-in for CPython dispatch, argument marshalling, and ndarray
//!   bookkeeping (the real overhead is larger).
//! * Node objects in the Scikit mirror live at hash-scattered addresses
//!   (one 64-byte object per node); Ranger nodes are 16-byte records in
//!   per-tree breadth-first arrays; Forest-Packing nodes are 16-byte
//!   records in one depth-first hot-path-contiguous arena; Bolt's
//!   dictionary/table/bloom live in the flat regions its real structures
//!   occupy.

use crate::cpu::SimCpu;
use bolt_bitpack::Mask;
use bolt_core::filter::table_key;
use bolt_core::BoltForest;
use bolt_forest::{Dataset, NodeKind, RandomForest};

/// Instructions charged per Python-level `predict()` call in the Scikit
/// mirror.
pub const PY_CALL_INSTRUCTIONS: u64 = 4000;
/// Interpreter-heap cache lines touched per Scikit call.
pub const PY_TOUCH_LINES: u64 = 48;

const DICT_BASE: u64 = 0x1000_0000;
const TABLE_BASE: u64 = 0x2000_0000;
const BLOOM_BASE: u64 = 0x3000_0000;
const OBJ_BASE: u64 = 0x4000_0000;
const ARRAY_BASE: u64 = 0x5000_0000;
const ARENA_BASE: u64 = 0x6000_0000;
const INPUT_BASE: u64 = 0x7000_0000;
const PY_BASE: u64 = 0x8000_0000;

fn mix(x: u64) -> u64 {
    let mut x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 32)
}

/// Replays one Bolt classification into `cpu` and returns the class.
///
/// The dictionary scan streams the real mask/key words sequentially; each
/// matching entry gathers its address, probes the real bloom filter
/// (charging its actual bit probes), and performs the (at most one) table
/// access at the cell's true slot index.
pub fn run_bolt(bolt: &BoltForest, bits: &Mask, cpu: &mut SimCpu) -> u32 {
    let dict = bolt.dictionary();
    let stride = dict.stride() as u64;
    let mut votes = vec![0.0f64; bolt.n_classes()];
    for &(class, weight) in bolt.constant_votes() {
        votes[class as usize] += weight;
        cpu.inst(1);
    }
    // Input encoding: load only the raw features the universe references
    // (the grouped encoder gathers exactly these), then evaluate every
    // predicate once (compare + shift, branch-free).
    let n_preds = bolt.universe().len();
    let mut needed: Vec<u32> = (0..n_preds)
        .map(|p| bolt.universe().predicate(p as u32).feature)
        .collect();
    needed.dedup(); // predicates are sorted by feature
    for &f in &needed {
        cpu.load(INPUT_BASE + u64::from(f) * 4, 4);
    }
    cpu.inst(2 * n_preds as u64);
    for entry in dict.entries() {
        // Sequential masked compare over mask+key words — "fast bit-wise
        // operations in lieu of branching" (§4.2): the per-entry relevance
        // test retires ALU ops but no conditional branch; only a *match*
        // takes the (rare, well-predicted-not-taken) jump to the lookup
        // code.
        let base = DICT_BASE + u64::from(entry.id) * stride * 16;
        for w in 0..stride {
            cpu.load(base + w * 16, 16); // mask word + key word, adjacent
        }
        cpu.inst(2 * stride + 1);
        let matched = dict.matches(entry.id, bits);
        if !matched {
            continue;
        }
        // Branch-free address gather from register-resident input bits.
        cpu.inst(2 * entry.uncommon.len() as u64 + 1);
        let address = entry.address_of(bits);
        let key = table_key(entry.id, address);
        let passed = match bolt.bloom() {
            Some(bloom) => {
                // k hash probes into the real filter's bit array, combined
                // branchlessly (`hit &= word >> bit`).
                let k = 4u64; // clamped as in BloomFilter::from_keys
                for i in 0..k {
                    let bit = mix(key ^ i) % (bloom.size_bytes() as u64 * 8);
                    cpu.load(BLOOM_BASE + bit / 8, 1);
                }
                cpu.inst(6);
                bloom.contains(key)
            }
            None => true,
        };
        if !passed {
            continue;
        }
        // One (well-predicted, usually-taken) branch guards the whole
        // lookup block: match, filter pass, and table access are fused.
        cpu.branch_at(0x140, true);
        let slot = bolt.table().slot_of(entry.id, address) as u64;
        cpu.load(TABLE_BASE + slot * 16, 16);
        cpu.inst(3); // key verify compare (branchless select on mismatch)
        if let Some(cell) = bolt.table().lookup(entry.id, address) {
            for &(class, weight) in &cell.votes {
                votes[class as usize] += weight;
                cpu.inst(2);
            }
        }
    }
    argmax_instrumented(&votes, cpu)
}

/// Replays one Scikit-style classification (call `call_id` of the service)
/// and returns the class.
pub fn run_scikit(forest: &RandomForest, sample: &[f32], call_id: u64, cpu: &mut SimCpu) -> u32 {
    // Python dispatch + ndarray bookkeeping.
    cpu.inst(PY_CALL_INSTRUCTIONS);
    for i in 0..PY_TOUCH_LINES {
        let line = mix(call_id ^ (i << 32)) % (32 * 1024 * 1024 / 64);
        cpu.load(PY_BASE + line * 64, 8);
    }
    // check_array: read and copy every feature into a fresh float64 buffer
    // whose address rotates per call (allocator churn).
    let copy_base = PY_BASE + 0x0400_0000 + (call_id % 512) * 8192;
    for f in 0..forest.n_features() as u64 {
        cpu.load(INPUT_BASE + f * 4, 4);
        cpu.load(copy_base + f * 8, 8);
        cpu.inst(2);
    }
    // Per-tree object-graph traversal + probability aggregation.
    let mut votes = vec![0u32; forest.n_classes()];
    for (t, tree) in forest.trees().iter().enumerate() {
        cpu.inst(200); // Python-level loop body around the Cython call
        let mut id = 0u32;
        loop {
            let obj =
                OBJ_BASE + (mix(((t as u64) << 32) | u64::from(id)) % (64 * 1024 * 1024 / 64)) * 64;
            cpu.load(obj, 64);
            match tree.nodes()[id as usize] {
                NodeKind::Leaf { class } => {
                    votes[class as usize] += 1;
                    // Copy the per-class value vector into the proba matrix.
                    cpu.inst(forest.n_classes() as u64 * 2);
                    break;
                }
                NodeKind::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cpu.inst(4);
                    cpu.load(copy_base + u64::from(feature) * 8, 8);
                    let goes_left = sample[feature as usize] <= threshold;
                    cpu.branch_at(0x200 + (t as u64 % 13), goes_left);
                    id = if goes_left { left } else { right };
                }
            }
        }
    }
    // Average the proba matrix and argmax.
    cpu.inst(forest.n_trees() as u64 * forest.n_classes() as u64);
    argmax_votes_instrumented(&votes, cpu)
}

/// Breadth-first layout metadata for the Ranger mirror.
#[derive(Clone, Debug)]
pub struct RangerLayout {
    /// Per tree: arena-id → BFS index.
    bfs_index: Vec<Vec<u32>>,
    /// Per-tree base offset in the simulated node arrays.
    tree_offsets: Vec<u64>,
}

impl RangerLayout {
    /// Computes the breadth-first numbering of each tree.
    #[must_use]
    pub fn new(forest: &RandomForest) -> Self {
        let mut bfs_index = Vec::with_capacity(forest.n_trees());
        let mut tree_offsets = Vec::with_capacity(forest.n_trees());
        let mut offset = 0u64;
        for tree in forest.trees() {
            let nodes = tree.nodes();
            let mut index = vec![0u32; nodes.len()];
            let mut queue = std::collections::VecDeque::from([0u32]);
            let mut next = 0u32;
            while let Some(id) = queue.pop_front() {
                index[id as usize] = next;
                next += 1;
                if let NodeKind::Split { left, right, .. } = nodes[id as usize] {
                    queue.push_back(left);
                    queue.push_back(right);
                }
            }
            bfs_index.push(index);
            tree_offsets.push(offset);
            offset += nodes.len() as u64 * 16;
        }
        Self {
            bfs_index,
            tree_offsets,
        }
    }
}

/// Replays one Ranger-style classification and returns the class.
pub fn run_ranger(
    forest: &RandomForest,
    layout: &RangerLayout,
    sample: &[f32],
    cpu: &mut SimCpu,
) -> u32 {
    cpu.inst(60); // light per-call setup, no input copy
    let mut votes = vec![0u32; forest.n_classes()];
    for (t, tree) in forest.trees().iter().enumerate() {
        let mut id = 0u32;
        loop {
            let bfs = layout.bfs_index[t][id as usize] as u64;
            cpu.load(ARRAY_BASE + layout.tree_offsets[t] + bfs * 16, 16);
            match tree.nodes()[id as usize] {
                NodeKind::Leaf { class } => {
                    votes[class as usize] += 1;
                    cpu.inst(2);
                    break;
                }
                NodeKind::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cpu.inst(3);
                    cpu.load(INPUT_BASE + u64::from(feature) * 4, 4);
                    let goes_left = sample[feature as usize] <= threshold;
                    cpu.branch_at(0x300 + (t as u64 % 13), goes_left);
                    id = if goes_left { left } else { right };
                }
            }
        }
    }
    argmax_votes_instrumented(&votes, cpu)
}

/// Depth-first hot-path-contiguous layout metadata for the Forest-Packing
/// mirror.
#[derive(Clone, Debug)]
pub struct FpLayout {
    /// Per tree: arena-id → packed index and whether its hot child is left.
    packed_index: Vec<Vec<u32>>,
    hot_is_left: Vec<Vec<bool>>,
}

impl FpLayout {
    /// Computes the packed numbering using calibration-data hit counts, as
    /// Forest Packing does with testing data.
    #[must_use]
    pub fn new(forest: &RandomForest, calibration: &Dataset) -> Self {
        let mut packed_index = Vec::with_capacity(forest.n_trees());
        let mut hot_flags = Vec::with_capacity(forest.n_trees());
        let mut base = 0u32;
        for tree in forest.trees() {
            let nodes = tree.nodes();
            let mut hits = vec![0u64; nodes.len()];
            for (sample, _) in calibration.iter() {
                let mut id = 0u32;
                loop {
                    hits[id as usize] += 1;
                    match nodes[id as usize] {
                        NodeKind::Leaf { .. } => break,
                        NodeKind::Split {
                            feature,
                            threshold,
                            left,
                            right,
                        } => {
                            id = if sample[feature as usize] <= threshold {
                                left
                            } else {
                                right
                            };
                        }
                    }
                }
            }
            let mut index = vec![0u32; nodes.len()];
            let mut hot = vec![false; nodes.len()];
            let mut counter = base;
            fn assign(
                nodes: &[NodeKind],
                hits: &[u64],
                id: u32,
                counter: &mut u32,
                index: &mut [u32],
                hot: &mut [bool],
            ) {
                index[id as usize] = *counter;
                *counter += 1;
                if let NodeKind::Split { left, right, .. } = nodes[id as usize] {
                    let hot_is_left = hits[left as usize] >= hits[right as usize];
                    hot[id as usize] = hot_is_left;
                    let (h, c) = if hot_is_left {
                        (left, right)
                    } else {
                        (right, left)
                    };
                    assign(nodes, hits, h, counter, index, hot);
                    assign(nodes, hits, c, counter, index, hot);
                }
            }
            assign(nodes, &hits, 0, &mut counter, &mut index, &mut hot);
            base = counter;
            packed_index.push(index);
            hot_flags.push(hot);
        }
        Self {
            packed_index,
            hot_is_left: hot_flags,
        }
    }
}

/// Replays one Forest-Packing-style classification and returns the class.
pub fn run_forest_packing(
    forest: &RandomForest,
    layout: &FpLayout,
    sample: &[f32],
    cpu: &mut SimCpu,
) -> u32 {
    cpu.inst(30); // minimal setup
    let mut votes = vec![0u32; forest.n_classes()];
    for (t, tree) in forest.trees().iter().enumerate() {
        let mut id = 0u32;
        loop {
            let packed = layout.packed_index[t][id as usize] as u64;
            cpu.load(ARENA_BASE + packed * 16, 16);
            match tree.nodes()[id as usize] {
                NodeKind::Leaf { class } => {
                    votes[class as usize] += 1;
                    cpu.inst(2);
                    break;
                }
                NodeKind::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cpu.inst(3);
                    cpu.load(INPUT_BASE + u64::from(feature) * 4, 4);
                    let goes_left = sample[feature as usize] <= threshold;
                    // The branch that matters is hot-vs-cold, which the
                    // packing makes highly biased (usually hot).
                    let took_cold = goes_left != layout.hot_is_left[t][id as usize];
                    cpu.branch_at(0x400 + (t as u64 % 13), took_cold);
                    id = if goes_left { left } else { right };
                }
            }
        }
    }
    argmax_votes_instrumented(&votes, cpu)
}

fn argmax_instrumented(votes: &[f64], cpu: &mut SimCpu) -> u32 {
    let mut best = 0usize;
    for (i, &v) in votes.iter().enumerate().skip(1) {
        let better = v > votes[best];
        cpu.branch_at(0x500, better);
        if better {
            best = i;
        }
    }
    best as u32
}

fn argmax_votes_instrumented(votes: &[u32], cpu: &mut SimCpu) -> u32 {
    let mut best = 0usize;
    for (i, &v) in votes.iter().enumerate().skip(1) {
        let better = v > votes[best];
        cpu.branch_at(0x500, better);
        if better {
            best = i;
        }
    }
    best as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw;
    use bolt_core::BoltConfig;
    use bolt_forest::ForestConfig;

    fn fixture() -> (Dataset, RandomForest, BoltForest) {
        let data = bolt_data::mnist_like(300, 5);
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(10).with_max_height(4).with_seed(7),
        );
        let bolt = BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles");
        (data, forest, bolt)
    }

    #[test]
    fn mirrors_return_true_predictions() {
        let (data, forest, bolt) = fixture();
        let ranger = RangerLayout::new(&forest);
        let fp = FpLayout::new(&forest, &data);
        let profile = hw::xeon_e5_2650_v4();
        for (i, (sample, _)) in data.iter().take(30).enumerate() {
            let expected = forest.predict(sample);
            let mut cpu = SimCpu::new(&profile);
            assert_eq!(run_bolt(&bolt, &bolt.encode(sample), &mut cpu), expected);
            assert_eq!(run_scikit(&forest, sample, i as u64, &mut cpu), expected);
            assert_eq!(run_ranger(&forest, &ranger, sample, &mut cpu), expected);
            assert_eq!(run_forest_packing(&forest, &fp, sample, &mut cpu), expected);
        }
    }

    #[test]
    fn bolt_branches_far_fewer_than_scikit() {
        let (data, forest, bolt) = fixture();
        let profile = hw::xeon_e5_2650_v4();
        let mut bolt_cpu = SimCpu::new(&profile);
        let mut scikit_cpu = SimCpu::new(&profile);
        for (i, (sample, _)) in data.iter().take(100).enumerate() {
            run_bolt(&bolt, &bolt.encode(sample), &mut bolt_cpu);
            run_scikit(&forest, sample, i as u64, &mut scikit_cpu);
        }
        let b = bolt_cpu.counters();
        let s = scikit_cpu.counters();
        // The paper's gap is orders of magnitude thanks to the Python
        // interpreter; our interpreter model is deliberately conservative,
        // so require a smaller but still decisive gap.
        assert!(
            s.instructions > 4 * b.instructions,
            "scikit {} vs bolt {}",
            s.instructions,
            b.instructions
        );
        assert!(
            s.cache_misses > b.cache_misses * 5,
            "{} vs {}",
            s.cache_misses,
            b.cache_misses
        );
    }

    #[test]
    fn fp_beats_ranger_on_cache_but_bolt_beats_fp() {
        let (data, forest, bolt) = fixture();
        let ranger = RangerLayout::new(&forest);
        let fp = FpLayout::new(&forest, &data);
        let profile = hw::xeon_e5_2650_v4();
        let (mut c_bolt, mut c_ranger, mut c_fp) = (
            SimCpu::new(&profile),
            SimCpu::new(&profile),
            SimCpu::new(&profile),
        );
        for (sample, _) in data.iter().take(200) {
            run_bolt(&bolt, &bolt.encode(sample), &mut c_bolt);
            run_ranger(&forest, &ranger, sample, &mut c_ranger);
            run_forest_packing(&forest, &fp, sample, &mut c_fp);
        }
        let (b, r, f) = (c_bolt.counters(), c_ranger.counters(), c_fp.counters());
        // FP's biased hot/cold branches mispredict less than Ranger's
        // direction branches.
        assert!(
            f.branch_misses <= r.branch_misses,
            "fp {} vs ranger {}",
            f.branch_misses,
            r.branch_misses
        );
        // Bolt issues fewer branches than either traversal engine.
        assert!(
            b.branches < f.branches,
            "bolt {} vs fp {}",
            b.branches,
            f.branches
        );
    }

    #[test]
    fn bolt_structures_stay_cache_resident() {
        let (data, _, bolt) = fixture();
        let profile = hw::xeon_e5_2650_v4();
        let mut cpu = SimCpu::new(&profile);
        // Warm-up pass, then measure steady state.
        for (sample, _) in data.iter().take(50) {
            run_bolt(&bolt, &bolt.encode(sample), &mut cpu);
        }
        let warm = cpu.counters();
        for (sample, _) in data.iter().take(50) {
            run_bolt(&bolt, &bolt.encode(sample), &mut cpu);
        }
        let steady = cpu.counters();
        let new_misses = steady.cache_misses - warm.cache_misses;
        assert!(
            new_misses < 20 * 50,
            "steady-state misses per sample should be tiny, got {new_misses} over 50 samples"
        );
    }
}
