//! The accounting CPU: instructions + branches + a three-level memory
//! hierarchy (L1 → L2 → LLC → memory).

use crate::branch::GsharePredictor;
use crate::cache::CacheSim;
use crate::hw::HardwareProfile;

/// Counter snapshot covering the paper's Fig. 12 categories plus the
/// per-level miss breakdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Retired instructions.
    pub instructions: u64,
    /// Branches executed ("branches taken" axis of Fig. 12).
    pub branches: u64,
    /// Branch mispredictions.
    pub branch_misses: u64,
    /// Memory accesses issued.
    pub mem_accesses: u64,
    /// L1 data-cache misses.
    pub l1_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Last-level cache misses (the "cache misses" axis of Fig. 12).
    pub cache_misses: u64,
}

impl Counters {
    /// Adds another snapshot's counts.
    pub fn accumulate(&mut self, other: &Counters) {
        self.instructions += other.instructions;
        self.branches += other.branches;
        self.branch_misses += other.branch_misses;
        self.mem_accesses += other.mem_accesses;
        self.l1_misses += other.l1_misses;
        self.l2_misses += other.l2_misses;
        self.cache_misses += other.cache_misses;
    }
}

impl std::fmt::Display for Counters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "inst={} branches={} branch_misses={} mem={} l1_misses={} l2_misses={} cache_misses={}",
            self.instructions,
            self.branches,
            self.branch_misses,
            self.mem_accesses,
            self.l1_misses,
            self.l2_misses,
            self.cache_misses
        )
    }
}

/// A simulated single core: instruction accounting, a gshare predictor, and
/// an inclusive L1/L2/LLC hierarchy parameterized by a [`HardwareProfile`].
#[derive(Clone, Debug)]
pub struct SimCpu {
    l1: CacheSim,
    l2: CacheSim,
    llc: CacheSim,
    branch: GsharePredictor,
    instructions: u64,
    mem_accesses: u64,
    profile: HardwareProfile,
}

impl SimCpu {
    /// Creates a core with the profile's cache geometry.
    #[must_use]
    pub fn new(profile: &HardwareProfile) -> Self {
        Self {
            l1: CacheSim::new(profile.l1_bytes, profile.line_bytes, 8),
            l2: CacheSim::new(profile.l2_bytes, profile.line_bytes, 8),
            llc: CacheSim::new(profile.llc_bytes, profile.line_bytes, profile.associativity),
            branch: GsharePredictor::new(12),
            instructions: 0,
            mem_accesses: 0,
            profile: profile.clone(),
        }
    }

    /// Retires `n` straight-line instructions.
    pub fn inst(&mut self, n: u64) {
        self.instructions += n;
    }

    /// Executes a conditional branch at `pc` with outcome `taken` (also
    /// retires one instruction).
    pub fn branch_at(&mut self, pc: u64, taken: bool) {
        self.instructions += 1;
        self.branch.branch(pc, taken);
    }

    /// Loads `bytes` bytes at `addr` (retires one instruction; each line
    /// spanned walks the hierarchy until it hits).
    pub fn load(&mut self, addr: u64, bytes: u64) {
        self.instructions += 1;
        self.mem_accesses += 1;
        let line_bytes = self.l1.line_bytes();
        let first = addr / line_bytes;
        let last = (addr + bytes.max(1) - 1) / line_bytes;
        for line in first..=last {
            let a = line * line_bytes;
            if self.l1.access(a) {
                continue;
            }
            if self.l2.access(a) {
                continue;
            }
            self.llc.access(a);
        }
    }

    /// Current counter snapshot.
    #[must_use]
    pub fn counters(&self) -> Counters {
        Counters {
            instructions: self.instructions,
            branches: self.branch.branches(),
            branch_misses: self.branch.misses(),
            mem_accesses: self.mem_accesses,
            l1_misses: self.l1.misses(),
            l2_misses: self.l2.misses(),
            cache_misses: self.llc.misses(),
        }
    }

    /// Models wall-clock nanoseconds for the counters so far: instruction
    /// throughput at the profile's clock, branch-miss bubbles, and
    /// level-by-level access latencies.
    #[must_use]
    pub fn elapsed_ns(&self) -> f64 {
        let c = self.counters();
        let cycles = c.instructions as f64 / self.profile.ipc
            + c.branch_misses as f64 * self.profile.branch_miss_penalty_cycles;
        let l1_hits = c.mem_accesses.saturating_sub(c.l1_misses);
        let l2_hits = c.l1_misses.saturating_sub(c.l2_misses);
        let llc_hits = c.l2_misses.saturating_sub(c.cache_misses);
        cycles / self.profile.freq_ghz
            + l1_hits as f64 * self.profile.l1_latency_ns
            + l2_hits as f64 * self.profile.l2_latency_ns
            + llc_hits as f64 * self.profile.cache_latency_ns
            + c.cache_misses as f64 * self.profile.mem_latency_ns
    }

    /// The profile this core models.
    #[must_use]
    pub fn profile(&self) -> &HardwareProfile {
        &self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw;

    #[test]
    fn counters_accumulate_categories() {
        let mut cpu = SimCpu::new(&hw::xeon_e5_2650_v4());
        cpu.inst(5);
        cpu.branch_at(0x10, true);
        cpu.load(0x100, 8);
        let c = cpu.counters();
        assert_eq!(c.instructions, 7); // 5 + branch + load
        assert_eq!(c.branches, 1);
        assert_eq!(c.mem_accesses, 1);
        assert_eq!(c.l1_misses, 1);
        assert_eq!(c.l2_misses, 1);
        assert_eq!(c.cache_misses, 1);
    }

    #[test]
    fn hierarchy_absorbs_working_sets_by_size() {
        let profile = hw::xeon_e5_2650_v4();
        // Working set of 16 KiB fits L1 after the first pass.
        let mut small = SimCpu::new(&profile);
        for pass in 0..4 {
            for i in 0..256u64 {
                small.load(i * 64, 8);
            }
            let _ = pass;
        }
        let c = small.counters();
        assert_eq!(c.l1_misses, 256, "only cold misses in L1");
        // Working set of 128 KiB exceeds 32 KiB L1 but fits 256 KiB L2.
        let mut medium = SimCpu::new(&profile);
        for _ in 0..4 {
            for i in 0..2048u64 {
                medium.load(i * 64, 8);
            }
        }
        let m = medium.counters();
        assert!(m.l1_misses > 2048, "L1 thrashes");
        assert_eq!(m.l2_misses, 2048, "L2 absorbs after cold pass");
        assert_eq!(m.cache_misses, 2048);
    }

    #[test]
    fn elapsed_time_grows_with_miss_depth() {
        let profile = hw::xeon_e5_2650_v4();
        let mut hot = SimCpu::new(&profile);
        let mut cold = SimCpu::new(&profile);
        for _ in 0..100 {
            hot.load(0x100, 8);
        }
        for i in 0..100u64 {
            cold.load(i * (1 << 21), 8); // distinct sets everywhere
        }
        assert!(cold.elapsed_ns() > hot.elapsed_ns());
        assert_eq!(cold.counters().cache_misses, 100);
        assert_eq!(hot.counters().cache_misses, 1);
    }

    #[test]
    fn accumulate_combines_snapshots() {
        let mut a = Counters {
            instructions: 1,
            branches: 2,
            branch_misses: 3,
            mem_accesses: 4,
            l1_misses: 5,
            l2_misses: 5,
            cache_misses: 5,
        };
        a.accumulate(&a.clone());
        assert_eq!(a.instructions, 2);
        assert_eq!(a.cache_misses, 10);
        assert!(a.to_string().contains("branch_misses=6"));
    }
}
