//! Gshare branch predictor model.

/// A gshare predictor: a table of 2-bit saturating counters indexed by the
/// XOR of the branch address and a global history register.
///
/// Used to reproduce the paper's branch-miss comparison: per-node tree
/// traversal issues one hard-to-predict branch per level, while Bolt's
/// dictionary scan replaces them with bit masks.
///
/// # Examples
///
/// ```
/// use bolt_simcpu::GsharePredictor;
///
/// let mut bp = GsharePredictor::new(10);
/// for _ in 0..1000 {
///     bp.branch(0x40, true); // perfectly biased branch
/// }
/// // After the history register warms up, the branch is fully predictable.
/// assert!(bp.misses() < 15);
/// ```
#[derive(Clone, Debug)]
pub struct GsharePredictor {
    table: Vec<u8>,
    index_mask: u64,
    history: u64,
    branches: u64,
    misses: u64,
}

impl GsharePredictor {
    /// Creates a predictor with `2^index_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 24.
    #[must_use]
    pub fn new(index_bits: u32) -> Self {
        assert!(
            (1..=24).contains(&index_bits),
            "index_bits must be in 1..=24"
        );
        Self {
            // Weakly not-taken initial state.
            table: vec![1u8; 1 << index_bits],
            index_mask: (1u64 << index_bits) - 1,
            history: 0,
            branches: 0,
            misses: 0,
        }
    }

    /// Records one executed branch at `pc` with the actual `taken` outcome;
    /// returns whether the prediction was correct.
    pub fn branch(&mut self, pc: u64, taken: bool) -> bool {
        let idx = ((pc >> 2) ^ self.history) & self.index_mask;
        let counter = &mut self.table[idx as usize];
        let predicted = *counter >= 2;
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        self.history = ((self.history << 1) | u64::from(taken)) & self.index_mask;
        self.branches += 1;
        let correct = predicted == taken;
        if !correct {
            self.misses += 1;
        }
        correct
    }

    /// Total branches executed.
    #[must_use]
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Total mispredictions.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biased_branch_learns_quickly() {
        let mut bp = GsharePredictor::new(12);
        for _ in 0..1000 {
            bp.branch(0x1000, true);
        }
        // One warmup miss per distinct history value (≤ index_bits + 1),
        // then perfect prediction.
        assert!(bp.misses() <= 13, "misses {}", bp.misses());
        assert_eq!(bp.branches(), 1000);
    }

    #[test]
    fn random_branch_mispredicts_often() {
        let mut bp = GsharePredictor::new(12);
        let mut x = 0x12345u64;
        let mut rand_bit = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x & 1 == 1
        };
        for _ in 0..4000 {
            bp.branch(0x2000, rand_bit());
        }
        let rate = bp.misses() as f64 / bp.branches() as f64;
        assert!(
            rate > 0.25,
            "random outcomes should mispredict, rate {rate}"
        );
    }

    #[test]
    fn alternating_pattern_is_learnable_via_history() {
        let mut bp = GsharePredictor::new(12);
        for i in 0..2000 {
            bp.branch(0x3000, i % 2 == 0);
        }
        let late_rate = bp.misses() as f64 / bp.branches() as f64;
        assert!(
            late_rate < 0.2,
            "history should capture alternation, rate {late_rate}"
        );
    }

    #[test]
    #[should_panic(expected = "index_bits")]
    fn zero_bits_rejected() {
        let _ = GsharePredictor::new(0);
    }
}
