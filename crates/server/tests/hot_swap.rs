//! Hot-swap under fire: client threads hammer a named model while the
//! main thread repeatedly swaps the engine behind that name between Bolt
//! and a baseline. Because every engine is held to bit-exact agreement
//! with the reference traversal, *every* response must match the
//! reference no matter which engine answered — a torn read, a dropped
//! in-flight request, or a half-installed engine would surface as an
//! error or a divergent class. Statistics must survive the swaps too:
//! the per-model counters, keyed by name rather than by engine instance,
//! must account for every request the clients made.

use std::sync::Arc;

use bolt_baselines::{ForestPackingForest, InferenceEngine, RangerLikeForest};
use bolt_core::oracle;
use bolt_core::{BoltConfig, BoltForest};
use bolt_server::{BoltEngine, ClassificationClient, ServerBuilder};

const CLIENT_THREADS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 250;
const SWAPS: usize = 60;

#[test]
fn hot_swap_under_concurrent_traffic_drops_nothing() {
    let case = oracle::served_case(0xCAFE, 30);
    let forest = case.forest.clone();
    let bolt: Arc<dyn InferenceEngine> = Arc::new(BoltEngine::new(Arc::new(
        BoltForest::compile(&case.forest, &BoltConfig::default()).expect("compiles"),
    )));
    let ranger: Arc<dyn InferenceEngine> = Arc::new(RangerLikeForest::from_forest(&case.forest));

    let path = std::env::temp_dir().join(format!("bolt-test-hot-swap-{}.sock", std::process::id()));
    let server = ServerBuilder::new()
        .register("hot", Arc::clone(&bolt))
        .register(
            "pinned",
            // Forest packing handles the full adversarial input set
            // (scikit's check_array would reject the NaN/inf samples).
            Arc::new(ForestPackingForest::from_forest(
                &case.forest,
                &case.calibration,
            )),
        )
        .default_model("hot")
        .bind_uds(&path)
        .expect("binds");
    let registry = server.registry();

    let clients: Vec<_> = (0..CLIENT_THREADS)
        .map(|t| {
            let path = path.clone();
            let forest = forest.clone();
            let inputs = case.inputs.clone();
            std::thread::spawn(move || {
                let mut client = ClassificationClient::connect(&path).expect("connects");
                for i in 0..REQUESTS_PER_CLIENT {
                    let sample = &inputs[(t + i) % inputs.len()];
                    let want = forest.predict(sample);
                    // Rotate across the swapped name, the legacy default
                    // (which also routes to the swapped name), and the
                    // pinned control model.
                    let got = match i % 3 {
                        0 => client.classify_with("hot", sample),
                        1 => client.classify(sample),
                        _ => client.classify_with("pinned", sample),
                    };
                    let response = got.unwrap_or_else(|e| {
                        panic!("request {i} on thread {t} failed mid-swap: {e}")
                    });
                    assert_eq!(
                        response.class, want,
                        "torn response on thread {t}, request {i}: {sample:?}"
                    );
                }
            })
        })
        .collect();

    // Swap the live engine back and forth while the clients run.
    for i in 0..SWAPS {
        let engine = if i % 2 == 0 {
            Arc::clone(&ranger)
        } else {
            Arc::clone(&bolt)
        };
        registry.swap("hot", engine).expect("hot-swaps");
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    for client in clients {
        client.join().expect("client thread");
    }

    // Every request the clients made is accounted for in the per-model
    // counters — nothing was dropped or double-booked across swaps.
    let total = (CLIENT_THREADS * REQUESTS_PER_CLIENT) as u64;
    let per_model: u64 = registry.list().iter().map(|m| m.requests).sum();
    assert_eq!(per_model, total, "per-model stats must sum to the total");
    assert_eq!(server.stats().requests, total);
    // The swapped name kept one continuous counter across engines:
    // 2 of every 3 requests (named + legacy default) landed on it.
    let hot = server.stats_for("hot").expect("registered");
    let pinned = server.stats_for("pinned").expect("registered");
    assert_eq!(hot.requests + pinned.requests, total);
    assert!(
        hot.requests > pinned.requests,
        "hot took named + legacy traffic ({} vs {})",
        hot.requests,
        pinned.requests
    );
    server.shutdown();
}
