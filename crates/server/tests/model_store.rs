//! Fleet-scale model store: lazy mapping, LRU eviction under a
//! resident-bytes budget, and crash recovery from the write-ahead log.
//!
//! Three layers of guarantee:
//!
//! 1. A directory of 64 artifacts serves through a budget that admits at
//!    most 8 concurrently — with zero protocol errors and responses
//!    bit-identical to the unevicted (reference forest) path, across
//!    evict/reload cycles.
//! 2. Lifecycle operations (activate / retire / set-default) survive an
//!    unclean restart: the WAL replays to the exact pre-crash registry
//!    state, tolerating torn tails and duplicate records.
//! 3. A proptest drives random lifecycle sequences and checks the live
//!    store and a fresh WAL replay project to identical state.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use bolt_artifact::ArtifactWriter;
use bolt_core::{BoltConfig, BoltForest};
use bolt_forest::{Dataset, ForestConfig, RandomForest};
use bolt_server::store::{Wal, WalOp};
use bolt_server::{ClassificationClient, ModelRegistry, ModelStore, RouteError, ServerBuilder};

/// A tiny forest whose predictions depend on `seed`, so distinct models
/// in the directory answer differently and a misrouted or stale mapping
/// shows up as a wrong class, not a silent pass.
fn forest(seed: u64) -> RandomForest {
    let rows: Vec<Vec<f32>> = (0..48)
        .map(|i| vec![(i % 6) as f32, ((i * 7) % 5) as f32])
        .collect();
    let labels: Vec<u32> = (0..48u64)
        .map(|i| (((i + seed) * (seed | 1)) % 3) as u32)
        .collect();
    let data = Dataset::from_rows(rows, labels, 3).expect("valid dataset");
    RandomForest::train(&data, &ForestConfig::new(4).with_seed(seed))
}

fn artifact(seed: u64, version: u32) -> Vec<u8> {
    let bolt = BoltForest::compile(&forest(seed), &BoltConfig::default()).expect("compiles");
    ArtifactWriter::serialize_forest_versioned(&bolt, version)
}

/// One serialized artifact, reused wherever the *content* of the file is
/// irrelevant (WAL replay tests care about names and versions, not trees).
fn stock_artifact() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| artifact(7, 1))
}

/// A unique, empty model directory per call (tests run concurrently).
fn unique_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bolt-test-store-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create model dir");
    dir
}

fn write_artifact(dir: &std::path::Path, name: &str, version: u32, bytes: &[u8]) {
    std::fs::write(dir.join(format!("{name}@{version}.blt")), bytes).expect("write artifact");
}

/// Serving state that must survive a crash: `(name, version, default?)`
/// per live model, sorted. Retired models are absent; residency is
/// deliberately excluded (a restarted store is cold by design).
fn project(store: &ModelStore) -> Vec<(String, u32, bool)> {
    let mut rows: Vec<_> = store
        .list()
        .into_iter()
        .map(|m| (m.name, m.version, m.is_default))
        .collect();
    rows.sort();
    rows
}

const FLEET: usize = 64;
const ADMIT: usize = 8;

#[test]
fn fleet_of_64_serves_bit_identically_through_a_budget_admitting_8() {
    let dir = unique_dir("fleet");
    let samples: Vec<Vec<f32>> = (0..6)
        .map(|i| vec![(i % 6) as f32, ((i * 3) % 5) as f32])
        .collect();
    // Reference classes from the *unevicted* path: the training-time
    // forest itself, before any artifact round trip.
    let mut expected = Vec::with_capacity(FLEET);
    for i in 0..FLEET {
        let seed = 100 + i as u64;
        let f = forest(seed);
        expected.push(samples.iter().map(|s| f.predict(s)).collect::<Vec<u32>>());
        write_artifact(&dir, &format!("m{i:02}"), 1, &artifact(seed, 1));
    }
    // Budget: one byte short of the 9 smallest artifacts together, so no
    // 9 models can ever be resident at once — but comfortably above 8
    // (the artifacts are near-identical in size).
    let mut sizes: Vec<u64> = std::fs::read_dir(&dir)
        .expect("read dir")
        .map(|e| e.expect("entry").metadata().expect("meta").len())
        .collect();
    sizes.sort_unstable();
    let budget = sizes.iter().take(ADMIT + 1).sum::<u64>() - 1;
    assert!(
        budget >= sizes[sizes.len() - 1],
        "budget {budget} must fit at least the largest single artifact"
    );

    let socket = dir.join("serve.sock");
    let server = ServerBuilder::new()
        .model_dir(&dir)
        .resident_bytes(budget)
        .bind_uds(&socket)
        .expect("binds");
    let store = server.store();
    let mut client = ClassificationClient::connect(&socket).expect("connects");

    // Two full passes over the fleet: the first maps every artifact (and
    // evicts 56 of them along the way), the second re-maps what was
    // evicted. Every answer must match the reference forest bit-exactly.
    for pass in 0..2 {
        for (i, want) in expected.iter().enumerate() {
            let name = format!("m{i:02}");
            for (j, sample) in samples.iter().enumerate() {
                let got = client
                    .classify_with(&name, sample)
                    .unwrap_or_else(|e| panic!("pass {pass} {name} sample {j}: {e}"));
                assert_eq!(got.class, want[j], "pass {pass} {name} sample {j}");
            }
        }
        assert!(
            store.resident_bytes() <= budget,
            "pass {pass}: resident {} bytes over budget {budget}",
            store.resident_bytes()
        );
    }

    // The extended listing agrees: 64 models, at most 8 resident.
    let listing = client.list_models().expect("list").models;
    assert_eq!(listing.len(), FLEET);
    let resident = listing.iter().filter(|m| m.resident).count();
    assert!(
        (1..=ADMIT).contains(&resident),
        "expected 1..={ADMIT} resident models, got {resident}"
    );
    for m in &listing {
        assert_eq!(m.version, 1, "{}", m.name);
        assert!(m.bytes > 0, "{} reports its artifact size", m.name);
    }
    server.shutdown();
}

#[test]
fn lifecycle_survives_an_unclean_restart() {
    let dir = unique_dir("restart");
    for v in 1..=2 {
        write_artifact(&dir, "fraud", v, stock_artifact());
    }
    write_artifact(&dir, "spam", 1, stock_artifact());
    write_artifact(&dir, "old", 1, stock_artifact());

    {
        let store = ModelStore::open(ModelRegistry::new(), &dir, None, 0).expect("opens");
        // Scan picks the newest version; roll fraud back to 1 explicitly.
        store.activate("fraud", 1).expect("rollback");
        store.set_default("spam").expect("default");
        store.retire("old").expect("retire");
        assert_eq!(
            project(&store),
            vec![("fraud".into(), 1, false), ("spam".into(), 1, true),]
        );
        // Dropped without any shutdown handshake: every op was fsync'd
        // at append time, so this models a crash.
    }

    let store = ModelStore::open(ModelRegistry::new(), &dir, None, 0).expect("reopens");
    assert_eq!(
        project(&store),
        vec![("fraud".into(), 1, false), ("spam".into(), 1, true),],
        "replayed state differs from pre-crash state"
    );
    assert!(
        matches!(store.resolve(Some("old")), Err(RouteError::RetiredModel(_))),
        "retirement survives restart"
    );
    // The default route works cold: resolving it maps spam@1 lazily.
    let handle = store.resolve(None).expect("default routes");
    assert_eq!(handle.engine().name(), "BOLT-BLT");
}

#[test]
fn torn_wal_tail_is_truncated_and_the_log_stays_writable() {
    let dir = unique_dir("torn");
    for v in 1..=2 {
        write_artifact(&dir, "fraud", v, stock_artifact());
    }
    {
        let store = ModelStore::open(ModelRegistry::new(), &dir, None, 0).expect("opens");
        store.activate("fraud", 1).expect("rollback");
    }
    let wal_path = dir.join("registry.wal");
    let clean_len = std::fs::metadata(&wal_path).expect("wal exists").len();
    // A crash mid-append leaves a partial record: a plausible length
    // prefix with only half the payload behind it.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&wal_path)
            .expect("open wal");
        f.write_all(&[16, 0, 0, 0, 0xde, 0xad, 0xbe]).expect("tear");
    }

    let store = ModelStore::open(ModelRegistry::new(), &dir, None, 0).expect("reopens");
    assert_eq!(project(&store), vec![("fraud".into(), 1, false)]);
    assert_eq!(
        std::fs::metadata(&wal_path).expect("wal").len(),
        clean_len,
        "torn tail truncated away on replay"
    );
    // The log keeps accepting appends after truncation, and they stick.
    store.activate("fraud", 2).expect("roll forward");
    drop(store);
    let store = ModelStore::open(ModelRegistry::new(), &dir, None, 0).expect("reopens again");
    assert_eq!(project(&store), vec![("fraud".into(), 2, false)]);
}

#[test]
fn duplicate_and_superseded_wal_records_replay_idempotently() {
    let dir = unique_dir("dupes");
    for v in 1..=2 {
        write_artifact(&dir, "fraud", v, stock_artifact());
    }
    // Hand-craft a log a crashing writer could plausibly leave behind:
    // duplicated registers, a retire, then a revival of the same name.
    {
        let (mut wal, ops) = Wal::open(&dir.join("registry.wal")).expect("fresh wal");
        assert!(ops.is_empty());
        let register = |version| WalOp::Register {
            name: "fraud".into(),
            version,
        };
        for op in [
            register(1),
            register(1), // duplicate
            register(2),
            WalOp::Retire {
                name: "fraud".into(),
            },
            register(2), // retire-then-register: the name comes back
            WalOp::SetDefault {
                name: "fraud".into(),
            },
            WalOp::Register {
                name: "ghost".into(),
                version: 9, // no artifact file on disk
            },
        ] {
            wal.append(&op).expect("append");
        }
    }

    let store = ModelStore::open(ModelRegistry::new(), &dir, None, 0).expect("replays");
    assert_eq!(
        project(&store),
        vec![("fraud".into(), 2, true)],
        "last write wins; ghost (no artifact) is not served"
    );
    assert!(
        store.resolve(Some("ghost")).is_err(),
        "a register record without its artifact file must not route"
    );
    let handle = store.resolve(Some("fraud")).expect("revived model serves");
    assert_eq!(handle.engine().name(), "BOLT-BLT");
}

#[test]
fn compaction_prunes_superseded_versions_and_shrinks_the_log() {
    let dir = unique_dir("compact");
    for v in 1..=3 {
        write_artifact(&dir, "fraud", v, stock_artifact());
    }
    write_artifact(&dir, "other", 1, stock_artifact());

    let store = ModelStore::open(ModelRegistry::new(), &dir, None, 1).expect("opens");
    // Churn the log — roll forward through every version, then back to 1,
    // so the serving version is *not* the newest on disk.
    store.activate("fraud", 1).expect("activate");
    store.activate("fraud", 2).expect("activate");
    store.activate("fraud", 3).expect("activate");
    store.activate("fraud", 1).expect("rollback");
    store.set_default("other").expect("default");
    let wal_len = std::fs::metadata(dir.join("registry.wal"))
        .expect("wal")
        .len();

    let stats = store.compact().expect("compacts");
    // keep_versions = 1 keeps the newest version (3) plus the serving
    // version (1) wherever it sits; only fraud@2 goes.
    assert_eq!(stats.files_deleted, 1);
    assert!(dir.join("fraud@1.blt").exists());
    assert!(!dir.join("fraud@2.blt").exists());
    assert!(dir.join("fraud@3.blt").exists());
    assert_eq!(stats.wal_bytes_before, wal_len);
    assert!(
        stats.wal_bytes_after < stats.wal_bytes_before,
        "snapshot {} must be smaller than the churned log {}",
        stats.wal_bytes_after,
        stats.wal_bytes_before
    );
    drop(store);

    let store = ModelStore::open(ModelRegistry::new(), &dir, None, 1).expect("reopens");
    assert_eq!(
        project(&store),
        vec![("fraud".into(), 1, false), ("other".into(), 1, true)],
        "compaction must not change serving state"
    );
}

#[test]
fn compaction_with_keep_versions_zero_deletes_no_files() {
    let dir = unique_dir("keepall");
    for v in 1..=3 {
        write_artifact(&dir, "fraud", v, stock_artifact());
    }
    let store = ModelStore::open(ModelRegistry::new(), &dir, None, 0).expect("opens");
    store.activate("fraud", 3).expect("activate");
    let stats = store.compact().expect("compacts");
    assert_eq!(stats.files_deleted, 0);
    for v in 1..=3 {
        assert!(dir.join(format!("fraud@{v}.blt")).exists(), "v{v} kept");
    }
}

mod replay_equivalence {
    //! Random lifecycle sequences, applied live and then replayed from
    //! the WAL by a fresh store, must project to identical state —
    //! including which operations were *refused* (refusals must never
    //! reach the log, or replay would diverge).

    use super::*;
    use proptest::prelude::*;

    const NAMES: [&str; 3] = ["alpha", "beta", "gamma"];
    const VERSIONS: u32 = 3;

    #[derive(Clone, Debug)]
    enum Op {
        Activate(usize, u32),
        Retire(usize),
        SetDefault(usize),
    }

    fn op() -> impl Strategy<Value = Op> {
        // No prop_oneof in the vendored proptest: draw the variant
        // discriminant alongside the operands and map.
        (0..3u8, 0..NAMES.len(), 1..=VERSIONS).prop_map(|(kind, n, v)| match kind {
            0 => Op::Activate(n, v),
            1 => Op::Retire(n),
            _ => Op::SetDefault(n),
        })
    }

    proptest! {
        // Each case writes a directory and fsyncs every append; keep the
        // case count modest so the suite stays fast on spinning disks.
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn live_state_equals_replayed_state(ops in proptest::collection::vec(op(), 0..14)) {
            let dir = unique_dir("prop");
            for name in NAMES {
                for v in 1..=VERSIONS {
                    write_artifact(&dir, name, v, stock_artifact());
                }
            }
            let live = ModelStore::open(ModelRegistry::new(), &dir, None, 0).expect("opens");
            for op in &ops {
                // Refusals (retiring the default, re-activating the
                // active version, retired names) are part of the
                // property: they must leave no trace in the log.
                let _ = match *op {
                    Op::Activate(n, v) => live.activate(NAMES[n], v),
                    Op::Retire(n) => live.retire(NAMES[n]),
                    Op::SetDefault(n) => live.set_default(NAMES[n]),
                };
            }
            let want = project(&live);
            let default = live.registry().default_model();
            drop(live);

            let replayed = ModelStore::open(ModelRegistry::new(), &dir, None, 0).expect("replays");
            prop_assert_eq!(project(&replayed), want);
            prop_assert_eq!(replayed.registry().default_model(), default);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
