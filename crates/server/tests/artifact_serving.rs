//! Serving mapped `BLT1` artifacts through the model registry.
//!
//! Two guarantees: (1) an [`ArtifactEngine`] answers bit-identically to the
//! reference forest across the full compile configuration matrix, and (2)
//! hot-swapping a live model for a *freshly memory-mapped* artifact file —
//! repeatedly, under concurrent client traffic — never tears a response,
//! drops a request, or changes a classification.

use std::sync::Arc;

use bolt_artifact::{Artifact, ArtifactWriter, MappedForest};
use bolt_baselines::InferenceEngine;
use bolt_core::oracle;
use bolt_core::{BoltConfig, BoltForest};
use bolt_server::{ArtifactEngine, BoltEngine, ClassificationClient, ServerBuilder};

fn artifact_engine(bolt: &BoltForest) -> ArtifactEngine {
    let bytes = ArtifactWriter::serialize_forest(bolt);
    let mapped = MappedForest::from_artifact(Artifact::from_bytes(&bytes).expect("valid"))
        .expect("valid classifier");
    ArtifactEngine::new(Arc::new(mapped))
}

#[test]
fn artifact_engine_is_bit_identical_across_config_matrix() {
    let case = oracle::served_case(0xB017, 30);
    let slices: Vec<&[f32]> = case.inputs.iter().map(Vec::as_slice).collect();
    let expected: Vec<u32> = case.inputs.iter().map(|s| case.forest.predict(s)).collect();
    for (i, config) in oracle::config_matrix().iter().enumerate() {
        let bolt = BoltForest::compile(&case.forest, config).expect("compile");
        let engine = artifact_engine(&bolt);
        for (sample, &want) in case.inputs.iter().zip(&expected) {
            assert_eq!(engine.classify(sample), want, "config {i}");
        }
        assert_eq!(
            engine.classify_batch(&slices),
            expected,
            "config {i} batched"
        );
    }
}

const CLIENT_THREADS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 200;
const SWAPS: usize = 40;

#[test]
fn hot_swapping_freshly_mapped_artifacts_under_traffic_is_seamless() {
    let case = oracle::served_case(0xB117, 24);
    let forest = case.forest.clone();
    let bolt = BoltForest::compile(&case.forest, &BoltConfig::default()).expect("compiles");
    // Two artifact files compiled under different configs — both must
    // classify identically; the swap loop maps each file *fresh* every
    // time, exercising map-validate-swap under live traffic.
    let alt = BoltForest::compile(
        &case.forest,
        &BoltConfig::default()
            .with_cluster_threshold(2)
            .with_bloom_bits_per_key(0),
    )
    .expect("compiles");
    let dir = std::env::temp_dir();
    let path_a = dir.join(format!(
        "bolt-test-artifact-swap-a-{}.blt",
        std::process::id()
    ));
    let path_b = dir.join(format!(
        "bolt-test-artifact-swap-b-{}.blt",
        std::process::id()
    ));
    ArtifactWriter::write_forest(&bolt, &path_a).expect("write a");
    ArtifactWriter::write_forest(&alt, &path_b).expect("write b");

    let in_memory: Arc<dyn InferenceEngine> = Arc::new(BoltEngine::new(Arc::new(bolt)));
    let socket = dir.join(format!(
        "bolt-test-artifact-swap-{}.sock",
        std::process::id()
    ));
    let server = ServerBuilder::new()
        .register("prod", Arc::clone(&in_memory))
        .default_model("prod")
        .bind_uds(&socket)
        .expect("binds");
    let registry = server.registry();

    let clients: Vec<_> = (0..CLIENT_THREADS)
        .map(|t| {
            let socket = socket.clone();
            let forest = forest.clone();
            let inputs = case.inputs.clone();
            std::thread::spawn(move || {
                let mut client = ClassificationClient::connect(&socket).expect("connects");
                for i in 0..REQUESTS_PER_CLIENT {
                    let sample = &inputs[(t + i) % inputs.len()];
                    let want = forest.predict(sample);
                    let got = if i % 2 == 0 {
                        client.classify_with("prod", sample)
                    } else {
                        client.classify(sample)
                    };
                    let response = got.unwrap_or_else(|e| {
                        panic!("request {i} on thread {t} failed mid-swap: {e}")
                    });
                    assert_eq!(
                        response.class, want,
                        "divergent response on thread {t}, request {i}: {sample:?}"
                    );
                }
            })
        })
        .collect();

    // Re-map one of the artifact files from scratch on every swap — the
    // full open/validate/register path a production reload would take.
    for i in 0..SWAPS {
        let engine: Arc<dyn InferenceEngine> = match i % 3 {
            0 => Arc::new(ArtifactEngine::open(&path_a).expect("map a")),
            1 => Arc::new(ArtifactEngine::open(&path_b).expect("map b")),
            _ => Arc::clone(&in_memory),
        };
        registry.swap("prod", engine).expect("hot-swaps");
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    for client in clients {
        client.join().expect("client thread");
    }
    let total = (CLIENT_THREADS * REQUESTS_PER_CLIENT) as u64;
    assert_eq!(
        server.stats().requests,
        total,
        "every request is accounted for"
    );
    server.shutdown();
    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();
}
