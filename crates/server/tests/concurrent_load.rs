//! Concurrent-load smoke: one registry behind a UDS server *and* a TCP
//! server, hammered by client threads on both transports at once with a
//! mixed workload — single classifies, `ClassifyBatch` frames, v2 named
//! routing across two models, and deliberate unknown-model traffic.
//! The serving path must come through with zero protocol errors, every
//! classification bit-identical to the direct `forest.predict` answer,
//! every unknown-model frame answered with a structured rejection (never
//! a dropped connection), and the per-model statistics — booked from two
//! transports concurrently — summing exactly to the aggregate.

use std::sync::Arc;

use bolt_baselines::RangerLikeForest;
use bolt_core::{BoltConfig, BoltForest};
use bolt_forest::{Dataset, ForestConfig, RandomForest};
use bolt_server::{BoltEngine, ClassificationClient, ModelRegistry, ProtoError, ServerBuilder};

const THREADS_PER_TRANSPORT: usize = 4;
const REQUESTS_PER_THREAD: usize = 400;

fn fixture() -> (Dataset, RandomForest, Arc<BoltForest>) {
    let rows: Vec<Vec<f32>> = (0..240)
        .map(|i| {
            (0..8)
                .map(|j| ((i * 31 + j * 17) % 23) as f32 / 3.0)
                .collect()
        })
        .collect();
    let labels: Vec<u32> = rows.iter().map(|r| u32::from(r[0] + r[3] > 5.0)).collect();
    let data = Dataset::from_rows(rows, labels, 2).expect("valid");
    let forest = RandomForest::train(
        &data,
        &ForestConfig::new(8).with_max_height(5).with_seed(0xB0),
    );
    let bolt = Arc::new(BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles"));
    (data, forest, bolt)
}

/// One client thread's slice of the mixed workload. Returns the number of
/// single-sample-equivalent requests it booked on the server (for the
/// stats reconciliation), or panics on the first divergence.
fn hammer(
    mut client: ClassificationClient,
    thread_idx: usize,
    samples: &[Vec<f32>],
    expected: &[u32],
) -> u64 {
    let mut booked = 0u64;
    for i in 0..REQUESTS_PER_THREAD {
        let pick = (thread_idx * 7 + i) % samples.len();
        let sample = samples[pick].as_slice();
        let want = expected[pick];
        match i % 5 {
            // Legacy single classify to the default model.
            0 => {
                let response = client.classify(sample).expect("classify");
                assert_eq!(response.class, want, "thread {thread_idx} request {i}");
                booked += 1;
            }
            // Batched frame (4 samples) to the default model.
            1 => {
                let batch: Vec<&[f32]> = (0..4)
                    .map(|k| samples[(pick + k) % samples.len()].as_slice())
                    .collect();
                let response = client.classify_batch(&batch).expect("classify_batch");
                assert_eq!(response.classes.len(), 4);
                for (k, &class) in response.classes.iter().enumerate() {
                    assert_eq!(class, expected[(pick + k) % expected.len()]);
                }
                booked += 4;
            }
            // v2 named routing to the Bolt model.
            2 => {
                let response = client.classify_with("bolt", sample).expect("classify_with");
                assert_eq!(response.class, want);
                booked += 1;
            }
            // v2 named routing to the baseline model: same forest, same
            // bits, different engine.
            3 => {
                let response = client
                    .classify_with("ranger", sample)
                    .expect("classify_with ranger");
                assert_eq!(response.class, want);
                booked += 1;
            }
            // Unknown-model traffic: must be a structured rejection, and
            // the connection must remain usable for the next iteration.
            _ => match client.classify_with("no-such-model", sample) {
                Err(ProtoError::Rejected { code, .. }) => {
                    assert_eq!(code, bolt_server::proto::ERR_UNKNOWN_MODEL);
                }
                other => panic!("unknown model should be rejected, got {other:?}"),
            },
        }
    }
    booked
}

#[test]
fn mixed_concurrent_load_on_both_transports_is_clean() {
    let (data, forest, bolt) = fixture();
    let samples: Vec<Vec<f32>> = (0..data.len()).map(|i| data.sample(i).to_vec()).collect();
    let expected: Vec<u32> = samples.iter().map(|s| forest.predict(s)).collect();

    // One registry shared by both transports, as boltd deploys it.
    let registry = ModelRegistry::new();
    registry
        .register("bolt", Arc::new(BoltEngine::new(Arc::clone(&bolt))))
        .expect("registers");
    registry
        .register("ranger", Arc::new(RangerLikeForest::from_forest(&forest)))
        .expect("registers");
    registry.set_default("bolt").expect("default");
    let path = std::env::temp_dir().join(format!(
        "bolt-test-concurrent-load-{}.sock",
        std::process::id()
    ));
    let uds = ServerBuilder::with_registry(registry.clone())
        .bind_uds(&path)
        .expect("binds uds");
    let tcp = ServerBuilder::with_registry(registry.clone())
        .bind_tcp("127.0.0.1:0")
        .expect("binds tcp");
    let addr = tcp.local_addr();

    let samples = Arc::new(samples);
    let expected = Arc::new(expected);
    let mut workers = Vec::new();
    for t in 0..THREADS_PER_TRANSPORT * 2 {
        let samples = Arc::clone(&samples);
        let expected = Arc::clone(&expected);
        let path = path.clone();
        workers.push(std::thread::spawn(move || {
            // Even threads hit UDS, odd threads hit TCP, concurrently.
            let client = if t % 2 == 0 {
                ClassificationClient::connect(&path).expect("uds connect")
            } else {
                ClassificationClient::connect_tcp(addr).expect("tcp connect")
            };
            hammer(client, t, &samples, &expected)
        }));
    }
    let booked: u64 = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .sum();

    // Every successful request (and nothing else) is on the books; the
    // rejected unknown-model frames never reach a model.
    let total = registry.total_stats();
    assert_eq!(total.requests, booked, "aggregate stats drop or inflate");
    let per_model: u64 = registry.list().iter().map(|m| m.requests).sum();
    assert_eq!(
        per_model, total.requests,
        "per-model stats disagree with the aggregate"
    );
    // Both named models saw their share of the v2 routed traffic.
    let bolt_requests = registry.stats("bolt").expect("bolt stats").requests;
    let ranger_requests = registry.stats("ranger").expect("ranger stats").requests;
    assert!(bolt_requests > 0 && ranger_requests > 0);
    assert_eq!(bolt_requests + ranger_requests, total.requests);

    uds.shutdown();
    tcp.shutdown();
}
