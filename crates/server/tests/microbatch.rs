//! Edge cases of the event-loop front-end's adaptive micro-batching:
//! flush policy under pipelining, per-request malformed-payload errors,
//! bounded-queue overload shedding, reconnect churn, and the retained
//! thread-per-connection mode.

use bolt_baselines::InferenceEngine;
use bolt_server::proto::{
    is_v2, read_frame, ClassifyBatchRequest, ClassifyRequest, ClassifyResponse, V2Response,
    ERR_MALFORMED_REQUEST, ERR_OVERLOADED,
};
use bolt_server::{
    ClassificationClient, EventLoopOptions, MicroBatchConfig, ServerBuilder, ServingMode,
};
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn unique_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bolt-mb-{tag}-{}.sock", std::process::id()))
}

/// Classifies `features[0] as u32`, after an optional artificial delay —
/// deterministic classes without training a forest, and a way to hold the
/// admission queue full for overload tests.
struct SlowEngine {
    delay: Duration,
}

impl InferenceEngine for SlowEngine {
    fn name(&self) -> &'static str {
        "Slow"
    }

    fn classify(&self, sample: &[f32]) -> u32 {
        self.classify_batch(&[sample])[0]
    }

    fn classify_batch(&self, samples: &[&[f32]]) -> Vec<u32> {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        samples.iter().map(|s| s[0] as u32).collect()
    }
}

fn engine(delay: Duration) -> Arc<dyn InferenceEngine> {
    Arc::new(SlowEngine { delay })
}

/// Reads one response frame, sorting v2 error frames from legacy
/// classification responses.
fn read_response(stream: &mut UnixStream) -> Result<ClassifyResponse, u8> {
    let payload = read_frame(stream).expect("read").expect("frame");
    if is_v2(&payload) {
        match V2Response::decode(&payload).expect("decodes") {
            V2Response::Error(e) => Err(e.code),
            V2Response::Classify(r) => Ok(r),
            other => panic!("unexpected v2 response: {other:?}"),
        }
    } else {
        Ok(ClassifyResponse::decode(&payload).expect("decodes"))
    }
}

#[test]
fn pipelined_singles_coalesce_and_answer_in_order() {
    let path = unique_socket("pipeline");
    let server = ServerBuilder::new()
        .register("m", engine(Duration::ZERO))
        .serving(ServingMode::EventLoop(EventLoopOptions {
            microbatch: MicroBatchConfig {
                flush_samples: 8, // force several size-triggered flushes
                ..MicroBatchConfig::default()
            },
            ..EventLoopOptions::default()
        }))
        .bind_uds(&path)
        .expect("binds");
    let mut stream = UnixStream::connect(&path).expect("connects");
    // Fire 50 distinguishable requests without reading a single response:
    // the server must coalesce them into batch-kernel calls yet answer
    // strictly in request order.
    let mut wire = Vec::new();
    for i in 0..50u32 {
        wire.extend_from_slice(
            &ClassifyRequest {
                features: vec![i as f32],
            }
            .encode(),
        );
    }
    stream.write_all(&wire).expect("writes");
    for i in 0..50u32 {
        let response = read_response(&mut stream).expect("classified");
        assert_eq!(response.class, i, "response {i} out of order");
        assert!(response.latency_ns > 0);
    }
    // Every coalesced sample was booked as one request.
    assert_eq!(server.stats().requests, 50);
    server.shutdown();
}

#[test]
fn malformed_request_fails_alone_and_the_connection_survives() {
    let path = unique_socket("malformed-mix");
    let server = ServerBuilder::new()
        .register("m", engine(Duration::ZERO))
        .bind_uds(&path)
        .expect("binds");
    let mut stream = UnixStream::connect(&path).expect("connects");
    // A pipelined mix: valid, malformed (well-delimited frame whose
    // 2-byte payload decodes as no message), valid. Only the middle
    // request may fail, and only with a structured error.
    let mut wire = Vec::new();
    wire.extend_from_slice(
        &ClassifyRequest {
            features: vec![7.0],
        }
        .encode(),
    );
    wire.extend_from_slice(&2u32.to_le_bytes());
    wire.extend_from_slice(&[0xFF, 0xFF]);
    wire.extend_from_slice(
        &ClassifyRequest {
            features: vec![9.0],
        }
        .encode(),
    );
    stream.write_all(&wire).expect("writes");
    assert_eq!(read_response(&mut stream).expect("first").class, 7);
    assert_eq!(
        read_response(&mut stream).expect_err("second is rejected"),
        ERR_MALFORMED_REQUEST
    );
    assert_eq!(read_response(&mut stream).expect("third").class, 9);
    // The same connection keeps serving afterwards.
    stream
        .write_all(
            &ClassifyRequest {
                features: vec![3.0],
            }
            .encode(),
        )
        .expect("writes");
    assert_eq!(read_response(&mut stream).expect("fourth").class, 3);
    assert_eq!(
        server.stats().requests,
        3,
        "the malformed frame books nothing"
    );
    server.shutdown();
}

#[test]
fn overload_sheds_with_structured_errors_never_drops() {
    let path = unique_socket("overload");
    let server = ServerBuilder::new()
        // Slow enough that the queue stays full while the flood arrives.
        .register("m", engine(Duration::from_millis(80)))
        .serving(ServingMode::EventLoop(EventLoopOptions {
            microbatch: MicroBatchConfig {
                queue_depth: 2,
                ..MicroBatchConfig::default()
            },
            ..EventLoopOptions::default()
        }))
        .bind_uds(&path)
        .expect("binds");
    let mut stream = UnixStream::connect(&path).expect("connects");
    let mut wire = Vec::new();
    for i in 0..10u32 {
        wire.extend_from_slice(
            &ClassifyRequest {
                features: vec![i as f32],
            }
            .encode(),
        );
    }
    stream.write_all(&wire).expect("writes");
    // Every one of the 10 requests gets *an answer* — classification or a
    // structured overload error — and the connection never drops.
    let mut served = 0;
    let mut shed = 0;
    for _ in 0..10 {
        match read_response(&mut stream) {
            Ok(_) => served += 1,
            Err(code) => {
                assert_eq!(code, ERR_OVERLOADED);
                shed += 1;
            }
        }
    }
    assert_eq!(served + shed, 10);
    assert!(served >= 2, "the admitted requests are answered");
    assert!(shed >= 1, "a depth-2 queue cannot absorb a 10-deep flood");
    // Shedding drained: once in-flight work completes, the same
    // connection is admitted again.
    stream
        .write_all(
            &ClassifyRequest {
                features: vec![4.0],
            }
            .encode(),
        )
        .expect("writes");
    assert_eq!(
        read_response(&mut stream).expect("served after shed").class,
        4
    );
    // A single batch frame larger than the whole queue is shed the same
    // structured way.
    let flood = ClassifyBatchRequest {
        samples: (0..8).map(|i| vec![i as f32]).collect(),
    }
    .encode()
    .expect("encodes");
    stream.write_all(&flood).expect("writes");
    match read_response(&mut stream) {
        Err(code) => assert_eq!(code, ERR_OVERLOADED),
        Ok(other) => panic!("oversized batch must be shed, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn reconnect_churn_leaks_no_state() {
    fn open_fds() -> usize {
        std::fs::read_dir("/proc/self/fd")
            .map(|entries| entries.count())
            .unwrap_or(0)
    }
    let path = unique_socket("churn");
    let server = ServerBuilder::new()
        .register("m", engine(Duration::ZERO))
        .bind_uds(&path)
        .expect("binds");
    // Warm up so the slab and fd table reach steady state first.
    for _ in 0..10 {
        let mut client = ClassificationClient::connect(&path).expect("connects");
        let _ = client.classify(&[1.0]).expect("classifies");
    }
    // Churn phase cannot start until the warm-up connections are fully
    // closed server-side; poll the fd count down to a baseline.
    std::thread::sleep(Duration::from_millis(50));
    let baseline = open_fds();
    for i in 0..200u32 {
        let mut client = ClassificationClient::connect(&path).expect("connects");
        let response = client.classify(&[(i % 32) as f32]).expect("classifies");
        assert_eq!(response.class, i % 32);
    }
    assert_eq!(server.stats().requests, 210);
    // Give the event loop a beat to observe the last hangups.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut now_fds = open_fds();
    while now_fds > baseline + 4 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
        now_fds = open_fds();
    }
    assert!(
        now_fds <= baseline + 4,
        "fd count grew from {baseline} to {now_fds} across 200 reconnects"
    );
    // The server still serves after the churn.
    let mut client = ClassificationClient::connect(&path).expect("connects");
    assert_eq!(client.classify(&[5.0]).expect("classifies").class, 5);
    server.shutdown();
}

#[test]
fn kernel_sized_batches_take_the_same_thread_fast_path() {
    let path = unique_socket("fastpath");
    let server = ServerBuilder::new()
        .register("m", engine(Duration::ZERO))
        .serving(ServingMode::EventLoop(EventLoopOptions {
            microbatch: MicroBatchConfig {
                flush_samples: 4, // batches of >= 4 execute inline
                ..MicroBatchConfig::default()
            },
            ..EventLoopOptions::default()
        }))
        .bind_uds(&path)
        .expect("binds");
    let mut stream = UnixStream::connect(&path).expect("connects");
    // Pipeline a mix across the threshold — a single, an at-threshold
    // batch (fast path), an under-threshold batch (worker path), and an
    // over-threshold batch — without reading a response. Ordered delivery
    // must hold across the inline and dispatched paths, and every class
    // must be exact.
    let mut wire = Vec::new();
    wire.extend_from_slice(
        &ClassifyRequest {
            features: vec![9.0],
        }
        .encode(),
    );
    let shapes: [&[u32]; 3] = [&[1, 2, 3, 4], &[5, 6], &[7, 8, 9, 10, 11]];
    for samples in shapes {
        wire.extend_from_slice(
            &ClassifyBatchRequest {
                samples: samples.iter().map(|&s| vec![s as f32]).collect(),
            }
            .encode()
            .expect("encodes"),
        );
    }
    stream.write_all(&wire).expect("writes");
    assert_eq!(read_response(&mut stream).expect("single").class, 9);
    for samples in shapes {
        let payload = read_frame(&mut stream).expect("read").expect("frame");
        let response =
            bolt_server::proto::ClassifyBatchResponse::decode(&payload).expect("decodes");
        let want: Vec<u32> = samples.to_vec();
        assert_eq!(response.classes, want);
        assert!(response.latency_ns > 0);
    }
    // The connection keeps serving after an inline batch.
    stream
        .write_all(
            &ClassifyRequest {
                features: vec![2.0],
            }
            .encode(),
        )
        .expect("writes");
    assert_eq!(read_response(&mut stream).expect("after").class, 2);
    // 1 + 4 + 2 + 5 batch samples + 1 trailing single.
    assert_eq!(server.stats().requests, 13);
    server.shutdown();
}

#[test]
fn disabled_microbatching_still_serves_concurrently() {
    let path = unique_socket("mb-off");
    let server = ServerBuilder::new()
        .register("m", engine(Duration::ZERO))
        .serving(ServingMode::EventLoop(EventLoopOptions {
            microbatch: MicroBatchConfig {
                enabled: false,
                ..MicroBatchConfig::default()
            },
            ..EventLoopOptions::default()
        }))
        .bind_uds(&path)
        .expect("binds");
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let path = path.clone();
            std::thread::spawn(move || {
                let mut client = ClassificationClient::connect(&path).expect("connects");
                for i in 0..50u32 {
                    let want = (t * 50 + i) % 32;
                    let response = client.classify(&[want as f32]).expect("classifies");
                    assert_eq!(response.class, want);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }
    assert_eq!(server.stats().requests, 200);
    server.shutdown();
}

#[test]
fn thread_per_connection_mode_is_retained() {
    let path = unique_socket("threads");
    let uds = ServerBuilder::new()
        .register("m", engine(Duration::ZERO))
        .serving(ServingMode::ThreadPerConnection)
        .bind_uds(&path)
        .expect("binds");
    let mut client = ClassificationClient::connect(&path).expect("connects");
    for i in 0..10u32 {
        assert_eq!(client.classify(&[i as f32]).expect("classifies").class, i);
    }
    assert_eq!(uds.stats().requests, 10);
    uds.shutdown();

    let tcp = ServerBuilder::new()
        .register("m", engine(Duration::ZERO))
        .serving(ServingMode::ThreadPerConnection)
        .bind_tcp("127.0.0.1:0")
        .expect("binds");
    let mut client = ClassificationClient::connect_tcp(tcp.local_addr()).expect("connects");
    for i in 0..10u32 {
        assert_eq!(client.classify(&[i as f32]).expect("classifies").class, i);
    }
    assert_eq!(tcp.stats().requests, 10);
    tcp.shutdown();
}

#[test]
fn event_loop_tcp_pipelining_and_hot_swap() {
    let server = ServerBuilder::new()
        .register("m", engine(Duration::ZERO))
        .bind_tcp("127.0.0.1:0")
        .expect("binds");
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connects");
    let mut wire = Vec::new();
    for i in 0..30u32 {
        wire.extend_from_slice(
            &ClassifyRequest {
                features: vec![i as f32],
            }
            .encode(),
        );
    }
    stream.write_all(&wire).expect("writes");
    for i in 0..30u32 {
        let payload = read_frame(&mut stream).expect("read").expect("frame");
        assert_eq!(
            ClassifyResponse::decode(&payload).expect("decodes").class,
            i
        );
    }
    // Hot-swap under the event loop: subsequent resolves see the new
    // engine, stats carry over.
    server
        .registry()
        .swap("m", engine(Duration::from_micros(1)))
        .expect("hot-swaps");
    stream
        .write_all(
            &ClassifyRequest {
                features: vec![12.0],
            }
            .encode(),
        )
        .expect("writes");
    let payload = read_frame(&mut stream).expect("read").expect("frame");
    assert_eq!(
        ClassifyResponse::decode(&payload).expect("decodes").class,
        12
    );
    assert_eq!(server.stats().requests, 31);
    server.shutdown();
}
