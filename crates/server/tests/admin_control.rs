//! Control-plane integration: the admin socket under real traffic.
//!
//! Three layers of guarantee:
//!
//! 1. Every admin opcode round-trips over the socket in both serving
//!    modes, the socket is 0600, garbage on it gets a typed refusal (or a
//!    drop for corrupt framing) and never a stall.
//! 2. Admin churn — activate / retire / rescan / compact / status — runs
//!    concurrently with sustained inference traffic with zero protocol
//!    errors and bit-identical responses on the data plane, and a model
//!    dropped into the directory mid-run activates and serves with zero
//!    restarts.
//! 3. Every admin mutation is journaled before it applies: at any point
//!    in an admin sequence, a *fresh* store replaying the directory's WAL
//!    projects exactly the live store's state (the in-process equivalent
//!    of `kill -9` between any two operations; the real-SIGKILL leg lives
//!    in `scripts/run_loadgen.sh`).

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use bolt_artifact::ArtifactWriter;
use bolt_core::{BoltConfig, BoltForest};
use bolt_forest::{Dataset, ForestConfig, RandomForest};
use bolt_server::{
    AdminClient, AdminReply, AdminRequest, ClassificationClient, EventLoopOptions, ModelRegistry,
    ModelStore, ServerBuilder, ServingMode,
};

/// A tiny forest whose predictions depend on `seed`, so a misrouted or
/// stale model answers with a wrong class instead of silently passing.
fn forest(seed: u64) -> RandomForest {
    let rows: Vec<Vec<f32>> = (0..48)
        .map(|i| vec![(i % 6) as f32, ((i * 7) % 5) as f32])
        .collect();
    let labels: Vec<u32> = (0..48u64)
        .map(|i| (((i + seed) * (seed | 1)) % 3) as u32)
        .collect();
    let data = Dataset::from_rows(rows, labels, 3).expect("valid dataset");
    RandomForest::train(&data, &ForestConfig::new(4).with_seed(seed))
}

fn artifact(seed: u64, version: u32) -> Vec<u8> {
    let bolt = BoltForest::compile(&forest(seed), &BoltConfig::default()).expect("compiles");
    ArtifactWriter::serialize_forest_versioned(&bolt, version)
}

/// A unique, empty model directory per call (tests run concurrently).
fn unique_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bolt-test-admin-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create model dir");
    dir
}

fn write_artifact(dir: &std::path::Path, name: &str, version: u32, bytes: &[u8]) {
    std::fs::write(dir.join(format!("{name}@{version}.blt")), bytes).expect("write artifact");
}

/// Serving state that must agree between a live store and a WAL replay:
/// `(name, version, default?)` per live model, sorted.
fn project(store: &ModelStore) -> Vec<(String, u32, bool)> {
    let mut rows: Vec<_> = store
        .list()
        .into_iter()
        .map(|m| (m.name, m.version, m.is_default))
        .collect();
    rows.sort();
    rows
}

fn both_modes() -> [ServingMode; 2] {
    [
        ServingMode::ThreadPerConnection,
        ServingMode::EventLoop(EventLoopOptions::default()),
    ]
}

#[test]
fn every_admin_opcode_round_trips_in_both_serving_modes() {
    for (mode_idx, mode) in both_modes().into_iter().enumerate() {
        let dir = unique_dir(&format!("opcodes{mode_idx}"));
        write_artifact(&dir, "fraud", 1, &artifact(1, 1));
        write_artifact(&dir, "fraud", 2, &artifact(1, 2));
        let sock = dir.join("data.sock");
        let admin_sock = dir.join("admin.sock");
        let server = ServerBuilder::new()
            .model_dir(&dir)
            .serving(mode)
            .admin_socket(&admin_sock)
            .bind_uds(&sock)
            .expect("binds");
        assert_eq!(server.admin_path(), Some(admin_sock.as_path()));

        // The socket is owner-only: possession is the credential.
        {
            use std::os::unix::fs::PermissionsExt;
            let mode = std::fs::metadata(&admin_sock)
                .expect("socket")
                .permissions()
                .mode();
            assert_eq!(mode & 0o777, 0o600, "admin socket must be 0600");
        }

        let mut admin = AdminClient::connect(&admin_sock).expect("admin connects");

        // Status sees the cataloged model before any mutation.
        match admin.call(&AdminRequest::Status).expect("status") {
            AdminReply::Status(report) => {
                assert_eq!(report.models.len(), 1);
                assert_eq!(report.models[0].name, "fraud");
            }
            other => panic!("expected Status, got {other:?}"),
        }

        // Activate a newer version, make it the default.
        assert_eq!(
            admin
                .call(&AdminRequest::Activate {
                    name: "fraud".into(),
                    version: 2
                })
                .expect("activate"),
            AdminReply::Ok
        );
        assert_eq!(
            admin
                .call(&AdminRequest::SetDefault("fraud".into()))
                .expect("set-default"),
            AdminReply::Ok
        );

        // Drop a brand-new artifact into the directory on the *running*
        // daemon: rescan catalogs it, activate serves it — no restart.
        write_artifact(&dir, "spam", 1, &artifact(2, 1));
        match admin.call(&AdminRequest::Rescan).expect("rescan") {
            AdminReply::Rescanned(stats) => {
                assert_eq!(stats.names_added, 1);
                assert_eq!(stats.versions_added, 1);
            }
            other => panic!("expected Rescanned, got {other:?}"),
        }
        assert_eq!(
            admin
                .call(&AdminRequest::Activate {
                    name: "spam".into(),
                    version: 1
                })
                .expect("activate spam"),
            AdminReply::Ok
        );
        let spam_forest = forest(2);
        let mut data = ClassificationClient::connect(&sock).expect("data connects");
        for sample in [[0.0_f32, 1.0], [3.0, 2.0], [5.0, 4.0]] {
            let got = data.classify_with("spam", &sample).expect("serves");
            assert_eq!(got.class, spam_forest.predict(&sample), "bit-identical");
        }

        // Retiring the default is refused with a typed error; a
        // non-default retires cleanly and stops serving.
        match admin
            .call(&AdminRequest::Retire("fraud".into()))
            .expect("retire default")
        {
            AdminReply::Refused(e) => {
                assert_eq!(e.code, bolt_server::admin::ADMIN_ERR_DEFAULT_IN_USE)
            }
            other => panic!("expected Refused, got {other:?}"),
        }
        assert_eq!(
            admin
                .call(&AdminRequest::Retire("spam".into()))
                .expect("retire spam"),
            AdminReply::Ok
        );
        assert!(
            data.classify_with("spam", &[0.0, 1.0]).is_err(),
            "a retired model must answer a structured rejection"
        );

        // Compact prunes the superseded fraud@1 and rewrites the log.
        match admin.call(&AdminRequest::Compact).expect("compact") {
            AdminReply::Compacted(stats) => {
                assert!(stats.wal_bytes_after > 0);
            }
            other => panic!("expected Compacted, got {other:?}"),
        }

        // The stats drain accounts for the traffic this test sent.
        match admin.call(&AdminRequest::DrainStats).expect("stats") {
            AdminReply::Stats(report) => assert!(report.total.requests >= 3),
            other => panic!("expected Stats, got {other:?}"),
        }

        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn garbage_on_the_admin_socket_is_refused_or_dropped_never_stalls() {
    for (mode_idx, mode) in both_modes().into_iter().enumerate() {
        let dir = unique_dir(&format!("hostile{mode_idx}"));
        write_artifact(&dir, "fraud", 1, &artifact(1, 1));
        let sock = dir.join("data.sock");
        let admin_sock = dir.join("admin.sock");
        let server = ServerBuilder::new()
            .model_dir(&dir)
            .serving(mode)
            .admin_socket(&admin_sock)
            .bind_uds(&sock)
            .expect("binds");

        // Well-delimited garbage: a typed MALFORMED refusal comes back
        // and the connection keeps working for a real request after it.
        let mut stream = UnixStream::connect(&admin_sock).expect("connects");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .expect("timeout");
        let payload = [0xAB_u8; 9];
        stream
            .write_all(&(payload.len() as u32).to_le_bytes())
            .and_then(|()| stream.write_all(&payload))
            .expect("write garbage");
        let reply = bolt_server::proto::read_frame(&mut stream)
            .expect("a frame, not a stall")
            .expect("a frame, not a drop");
        match AdminReply::decode(&reply).expect("typed reply") {
            AdminReply::Refused(e) => {
                assert_eq!(e.code, bolt_server::admin::ADMIN_ERR_MALFORMED);
            }
            other => panic!("expected Refused, got {other:?}"),
        }
        let framed = AdminRequest::Status.encode().expect("encodes");
        stream.write_all(&framed).expect("write status");
        let reply = bolt_server::proto::read_frame(&mut stream)
            .expect("frame")
            .expect("connection survived the garbage");
        assert!(matches!(
            AdminReply::decode(&reply).expect("decodes"),
            AdminReply::Status(_)
        ));

        // Corrupt framing (oversized declaration): the server must drop
        // the connection — EOF or reset, never a reply, never a hang.
        let mut stream = UnixStream::connect(&admin_sock).expect("connects");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .expect("timeout");
        stream
            .write_all(&u32::MAX.to_le_bytes())
            .and_then(|()| stream.write_all(&[0xCD; 8]))
            .expect("write corrupt framing");
        let mut sink = [0u8; 16];
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("server answered {n} byte(s) after corrupt framing"),
        }

        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn admin_churn_under_sustained_load_stays_bit_identical() {
    let dir = unique_dir("churn");
    write_artifact(&dir, "steady", 1, &artifact(3, 1));
    const CHURN_ROUNDS: u32 = 12;
    for v in 1..=CHURN_ROUNDS {
        write_artifact(&dir, "churner", v, &artifact(4, v));
    }
    let sock = dir.join("data.sock");
    let admin_sock = dir.join("admin.sock");
    let server = ServerBuilder::new()
        .model_dir(&dir)
        .serving(ServingMode::EventLoop(EventLoopOptions::default()))
        .admin_socket(&admin_sock)
        .bind_uds(&sock)
        .expect("binds");

    let steady = forest(3);
    let samples: Vec<[f32; 2]> = (0..16)
        .map(|i| [(i % 6) as f32, ((i * 7) % 5) as f32])
        .collect();
    let expected: Vec<u32> = samples.iter().map(|s| steady.predict(s)).collect();

    std::thread::scope(|scope| {
        // Data plane: four workers hammer the steady model; any wrong
        // class or protocol error while admin ops run alongside fails.
        let mut workers = Vec::new();
        for w in 0..4 {
            let sock = &sock;
            let samples = &samples;
            let expected = &expected;
            workers.push(scope.spawn(move || {
                let mut client = ClassificationClient::connect(sock).expect("connects");
                for i in 0..300usize {
                    let k = (i + w) % samples.len();
                    let got = client
                        .classify_with("steady", &samples[k])
                        .expect("zero protocol errors under admin churn");
                    assert_eq!(got.class, expected[k], "bit-identical under churn");
                }
            }));
        }

        // Control plane: a full lifecycle per round — activate a fresh
        // version, retire it, rescan, compact, status — while the data
        // plane runs.
        let mut admin = AdminClient::connect(&admin_sock).expect("admin connects");
        for v in 1..=CHURN_ROUNDS {
            assert_eq!(
                admin
                    .call(&AdminRequest::Activate {
                        name: "churner".into(),
                        version: v
                    })
                    .expect("activate"),
                AdminReply::Ok,
                "round {v}"
            );
            assert_eq!(
                admin
                    .call(&AdminRequest::Retire("churner".into()))
                    .expect("retire"),
                AdminReply::Ok,
                "round {v}"
            );
            assert!(matches!(
                admin.call(&AdminRequest::Rescan).expect("rescan"),
                AdminReply::Rescanned(_)
            ));
            assert!(matches!(
                admin.call(&AdminRequest::Compact).expect("compact"),
                AdminReply::Compacted(_)
            ));
            assert!(matches!(
                admin.call(&AdminRequest::Status).expect("status"),
                AdminReply::Status(_)
            ));
        }
        for worker in workers {
            worker.join().expect("data-plane worker");
        }
    });

    // The books balance after the dust settles: 4 workers × 300 frames.
    match AdminClient::connect(&admin_sock)
        .expect("reconnects")
        .call(&AdminRequest::DrainStats)
        .expect("stats")
    {
        AdminReply::Stats(report) => assert_eq!(report.total.requests, 1200),
        other => panic!("expected Stats, got {other:?}"),
    }

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wal_replay_projects_the_live_state_after_every_admin_step() {
    let dir = unique_dir("replay");
    for v in 1..=3u32 {
        write_artifact(&dir, "fraud", v, &artifact(5, v));
    }
    write_artifact(&dir, "spam", 1, &artifact(6, 1));
    let sock = dir.join("data.sock");
    let admin_sock = dir.join("admin.sock");
    let server = ServerBuilder::new()
        .model_dir(&dir)
        .serving(ServingMode::EventLoop(EventLoopOptions::default()))
        .admin_socket(&admin_sock)
        .bind_uds(&sock)
        .expect("binds");
    let mut admin = AdminClient::connect(&admin_sock).expect("admin connects");

    // After *each* admin mutation the WAL on disk must already describe
    // the post-op state: a second store opening the same directory — the
    // moral equivalent of a kill -9 restart at that instant — projects
    // exactly what the live store serves.
    let steps = [
        AdminRequest::Activate {
            name: "fraud".into(),
            version: 2,
        },
        AdminRequest::SetDefault("fraud".into()),
        AdminRequest::Activate {
            name: "spam".into(),
            version: 1,
        },
        AdminRequest::Activate {
            name: "fraud".into(),
            version: 3,
        },
        AdminRequest::Retire("spam".into()),
        AdminRequest::Compact,
    ];
    for (i, step) in steps.iter().enumerate() {
        match admin.call(step).expect("admin op") {
            AdminReply::Ok | AdminReply::Compacted(_) => {}
            other => panic!("step {i} refused: {other:?}"),
        }
        let replayed = ModelStore::open(ModelRegistry::new(), &dir, None, 0).expect("replays");
        assert_eq!(
            project(&server.store()),
            project(&replayed),
            "step {i}: WAL replay diverged from live state"
        );
    }

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
