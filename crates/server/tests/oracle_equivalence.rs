//! End-to-end differential check for the serving stack (Fig. 7 of the
//! paper): classifications served over the socket front-ends — frame
//! codec, registry routing, engine adapters, response framing — must
//! equal the reference forest traversal for the same adversarial inputs
//! the in-process harness uses, including NaN and infinite features,
//! which must survive the wire encoding bit-exactly.
//!
//! One server process hosts Bolt *and* every baseline in its model
//! registry, so all four engines answer through the identical socket and
//! protocol path and can be compared request-for-request.

use std::sync::Arc;

use bolt_baselines::{ForestPackingForest, RangerLikeForest, ScikitLikeForest};
use bolt_core::oracle::{self, ServedCase};
use bolt_core::{BoltConfig, BoltForest};
use bolt_server::{BoltEngine, ClassificationClient, ServerBuilder};

const MODELS: [&str; 4] = ["bolt", "scikit", "ranger", "fp"];

fn compile_case(case: &ServedCase) -> Arc<BoltForest> {
    Arc::new(
        BoltForest::compile(
            &case.forest,
            &BoltConfig::default()
                .with_cluster_threshold(4)
                .with_bloom_bits_per_key(8),
        )
        .expect("compiles"),
    )
}

fn builder_for(case: &ServedCase, bolt: Arc<BoltForest>) -> ServerBuilder {
    ServerBuilder::new()
        .register("bolt", Arc::new(BoltEngine::new(bolt)))
        .register(
            "scikit",
            Arc::new(ScikitLikeForest::from_forest(&case.forest)),
        )
        .register(
            "ranger",
            Arc::new(RangerLikeForest::from_forest(&case.forest)),
        )
        .register(
            "fp",
            Arc::new(ForestPackingForest::from_forest(
                &case.forest,
                &case.calibration,
            )),
        )
        .default_model("bolt")
}

/// Sweeps every adversarial input through every named model on one
/// connection, asserting bit-identical agreement with the reference
/// traversal, then replays the sweep through the legacy (unrouted) path
/// and as one named batch per model. The scikit model only sees the
/// finite slice of the inputs — its `check_array` rejects NaN/inf by
/// documented contract (see `baselines/tests/oracle_agreement.rs`).
///
/// Returns the expected per-sample request count booked against each
/// model, in `MODELS` order.
fn sweep(client: &mut ClassificationClient, case: &ServedCase) -> [u64; MODELS.len()] {
    let n = case.inputs.len() as u64;
    let finite: Vec<&[f32]> = case
        .inputs
        .iter()
        .filter(|s| s.iter().all(|v| v.is_finite()))
        .map(Vec::as_slice)
        .collect();
    let f = finite.len() as u64;
    assert!(f < n, "adversarial prelude always has non-finite inputs");

    for sample in &case.inputs {
        let want = case.forest.predict(sample);
        let all_finite = sample.iter().all(|v| v.is_finite());
        for model in MODELS {
            if model == "scikit" && !all_finite {
                continue;
            }
            let response = client.classify_with(model, sample).expect("classifies");
            assert_eq!(
                response.class, want,
                "model {model} diverged from reference on {sample:?}"
            );
        }
        // Legacy frame → default model ("bolt").
        let response = client.classify(sample).expect("classifies");
        assert_eq!(
            response.class, want,
            "default-model fallback diverged on {sample:?}"
        );
    }
    for model in MODELS {
        let samples: Vec<&[f32]> = if model == "scikit" {
            finite.clone()
        } else {
            case.inputs.iter().map(Vec::as_slice).collect()
        };
        let want: Vec<u32> = samples.iter().map(|s| case.forest.predict(s)).collect();
        let response = client
            .classify_batch_with(model, &samples)
            .expect("classifies batch");
        assert_eq!(
            response.classes, want,
            "model {model} batch diverged from reference"
        );
    }
    // bolt: named + legacy + batch; scikit: finite named + finite batch;
    // ranger, fp: named + batch.
    [3 * n, 2 * f, 2 * n, 2 * n]
}

#[test]
fn served_classifications_match_reference_forest_uds() {
    let case = oracle::served_case(0x5E1F, 40);
    let bolt = compile_case(&case);
    let path =
        std::env::temp_dir().join(format!("bolt-test-oracle-e2e-{}.sock", std::process::id()));
    let server = builder_for(&case, bolt).bind_uds(&path).expect("binds");
    let mut client = ClassificationClient::connect(&path).expect("connects");

    let expected = sweep(&mut client, &case);

    // Per-model stats: each model answered exactly its share of the
    // sweep, and the default model additionally absorbed legacy traffic.
    for (model, want) in MODELS.iter().zip(expected) {
        let stats = server.stats_for(model).expect("registered");
        assert_eq!(stats.requests, want, "stats for {model}");
    }
    assert_eq!(server.stats().requests, expected.iter().sum::<u64>());
    server.shutdown();
}

#[test]
fn served_classifications_match_reference_forest_tcp() {
    let case = oracle::served_case(0x7CB1, 25);
    let bolt = compile_case(&case);
    let server = builder_for(&case, bolt)
        .bind_tcp("127.0.0.1:0")
        .expect("binds");
    let mut client = ClassificationClient::connect_tcp(server.local_addr()).expect("connects");

    let expected = sweep(&mut client, &case);

    assert_eq!(server.stats().requests, expected.iter().sum::<u64>());
    server.shutdown();
}
