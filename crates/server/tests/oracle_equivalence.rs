//! End-to-end differential check for the serving stack (Fig. 7 of the
//! paper): a classification served over the Unix-socket front-end — frame
//! codec, request dispatch, engine adapter, response framing — must equal
//! the reference forest traversal for the same adversarial inputs the
//! in-process harness uses, including NaN and infinite features, which
//! must survive the wire encoding bit-exactly.

use std::sync::Arc;

use bolt_core::oracle::{self, ForestSpec, OracleRng};
use bolt_core::{BoltConfig, BoltForest};
use bolt_server::{BoltEngine, ClassificationClient, ClassificationServer};

#[test]
fn served_classifications_match_reference_forest() {
    let mut rng = OracleRng::new(0x5E1F);
    let spec = ForestSpec::sampled(&mut rng);
    let forest = oracle::random_forest(&spec, &mut rng);
    let thresholds = oracle::forest_thresholds(&forest);
    let inputs = oracle::adversarial_inputs(spec.n_features, &thresholds, &mut rng, 40);

    let bolt = Arc::new(
        BoltForest::compile(
            &forest,
            &BoltConfig::default()
                .with_cluster_threshold(4)
                .with_bloom_bits_per_key(8),
        )
        .expect("compiles"),
    );
    let path =
        std::env::temp_dir().join(format!("bolt-test-oracle-e2e-{}.sock", std::process::id()));
    let server = ClassificationServer::bind(&path, Box::new(BoltEngine::new(bolt))).expect("binds");
    let mut client = ClassificationClient::connect(&path).expect("connects");

    for sample in &inputs {
        let response = client.classify(sample).expect("classifies");
        assert_eq!(
            response.class,
            forest.predict(sample),
            "served classification diverged from reference on {sample:?}"
        );
    }

    let stats = server.stats();
    assert_eq!(stats.requests as usize, inputs.len());
    server.shutdown();
}
