//! Non-blocking event-loop front-end with adaptive micro-batching.
//!
//! The thread-per-connection front-end ([`super::server`]) spends its
//! concurrency budget on parked OS threads and hands the engine one sample
//! at a time, so the batch kernel's 2.2–3× throughput advantage never
//! reaches the serving path. This module replaces it with one event-loop
//! thread multiplexing every connection through a level-triggered
//! [`epoll::Poller`], plus a small worker pool that runs the actual
//! inference:
//!
//! ```text
//!             ┌────────────────────────── event-loop thread ─────────────┐
//!  accept ───▶│ slab of connections                                      │
//!  readable ─▶│   FrameReader (resumable) ──▶ decode ──▶ admit ──▶ queue │
//!             │   micro-batcher: flush at N samples / T µs / input idle  │
//!             │   ordered response slots ──▶ write buffer ──▶ flush      │
//!             └───────▲──────────────────────────────┬───────────────────┘
//!                     │ completions (wake pipe)      │ FlushGroup / Batch
//!             ┌───────┴──────────────────────────────▼───────────────────┐
//!             │ worker pool: classify_batch on the entry-major kernel    │
//!             └──────────────────────────────────────────────────────────┘
//! ```
//!
//! **Connection state machine.** Each connection is `reading ⇄ writing`
//! with both sides always willing: reads resume mid-frame across
//! `WouldBlock` via [`FrameReader`], and responses that do not fit the
//! socket buffer park in a per-connection write buffer mirrored by
//! `EPOLLOUT` interest until drained. Responses are delivered strictly in
//! request order through a slot queue, no matter how the worker pool
//! reorders completions.
//!
//! **Backpressure.** Admission is bounded by the micro-batcher's
//! `queue_depth`; a request past the bound is answered immediately with a
//! structured [`ERR_OVERLOADED`] frame — the connection stays open and the
//! client may retry, instead of the old model's unbounded thread growth. A
//! connection whose peer stops reading accumulates a write buffer up to
//! `max_write_buffer` and is then closed as a slow consumer.
//!
//! **Malformed requests.** A payload that is framed correctly but decodes
//! as no known message answers [`ERR_MALFORMED_REQUEST`] and the
//! connection survives — other requests in flight on it are unaffected.
//! Framing-level corruption (oversized length declaration, EOF mid-frame)
//! still tears the connection down, as no frame boundary can be trusted
//! afterwards.

use crate::admin::{self, AdminRequest};
use crate::microbatch::{Completion, FlushGroup, MicroBatchConfig, MicroBatcher, QueuedSample};
use crate::proto::{
    ClassifyBatchResponse, ErrorFrame, FrameReader, ListModelsResponse, ProtoError, Request,
    ERR_INTERNAL, ERR_MALFORMED_REQUEST, ERR_OVERLOADED, ERR_UNSUPPORTED_VERSION, PROTOCOL_VERSION,
};
use crate::registry::ModelHandle;
use crate::server::{route_error_frame, Shared};
use bytes::Bytes;
use epoll::{Interest, Poller};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a server front-end schedules its connections.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum ServingMode {
    /// One blocking OS thread per connection, requests handled one at a
    /// time (the paper's §6 methodology, and this crate's original
    /// front-end).
    ThreadPerConnection,
    /// One non-blocking event-loop thread multiplexing every connection,
    /// with concurrent single-sample requests coalesced into batch-kernel
    /// calls by an adaptive micro-batcher.
    EventLoop(EventLoopOptions),
}

impl Default for ServingMode {
    fn default() -> Self {
        Self::EventLoop(EventLoopOptions::default())
    }
}

/// Tuning for the event-loop front-end.
#[derive(Clone, Debug)]
pub struct EventLoopOptions {
    /// Micro-batching flush policy and admission bound.
    pub microbatch: MicroBatchConfig,
    /// Inference worker threads; `0` picks from the machine's available
    /// parallelism.
    pub workers: usize,
    /// Most simultaneous connections; beyond it, new connections are
    /// answered with an overload error and closed.
    pub max_connections: usize,
    /// Per-connection write-buffer cap; a peer that stops reading its
    /// responses past this is closed as a slow consumer.
    pub max_write_buffer: usize,
}

impl Default for EventLoopOptions {
    fn default() -> Self {
        Self {
            microbatch: MicroBatchConfig::default(),
            workers: 0,
            max_connections: 4096,
            max_write_buffer: 4 << 20,
        }
    }
}

/// Either listener the event loop can front.
pub(crate) enum Listener {
    Uds(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            Self::Uds(l) => l.as_raw_fd(),
            Self::Tcp(l) => l.as_raw_fd(),
        }
    }

    /// Accepts one connection, already switched to non-blocking (and
    /// `TCP_NODELAY` for TCP — single-sample responses are
    /// latency-sensitive).
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Self::Uds(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(true)?;
                Ok(Stream::Uds(stream))
            }
            Self::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(true)?;
                let _ = stream.set_nodelay(true);
                Ok(Stream::Tcp(stream))
            }
        }
    }
}

enum Stream {
    Uds(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            Self::Uds(s) => s.as_raw_fd(),
            Self::Tcp(s) => s.as_raw_fd(),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Self::Uds(s) => s.read(buf),
            Self::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Self::Uds(s) => s.write(buf),
            Self::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Self::Uds(s) => s.flush(),
            Self::Tcp(s) => s.flush(),
        }
    }
}

/// Connection tokens pack `(generation << 32) | slab index`. A slab index
/// never reaches `u32::MAX` (connections are bounded far below it), so
/// tokens with all-ones low bits are reserved for the loop's own fds —
/// completions for a connection that died and whose slot was reused carry
/// a stale generation and are discarded instead of answering the wrong
/// peer.
const TOKEN_LISTENER: u64 = u32::MAX as u64;
const TOKEN_WAKEUP: u64 = (1 << 32) | u32::MAX as u64;
/// The control-plane listener: its own reserved token, so admin accepts
/// are dispatched as a distinct listener class and never queue behind
/// inference traffic.
const TOKEN_ADMIN_LISTENER: u64 = (2 << 32) | u32::MAX as u64;

fn pack_token(index: usize, generation: u32) -> u64 {
    (u64::from(generation) << 32) | index as u64
}

fn unpack_token(token: u64) -> (usize, u32) {
    ((token & u64::from(u32::MAX)) as usize, (token >> 32) as u32)
}

/// Most frames decoded per readable event before yielding back to the
/// poller, so one firehose connection cannot starve the others (the data
/// left in its socket buffer keeps it level-triggered readable).
const FRAMES_PER_WAKE: usize = 64;

/// Idle poll period: an upper bound on how stale the shutdown flag can go
/// unnoticed when no wake byte arrives.
const IDLE_TIMEOUT: Duration = Duration::from_millis(25);

/// Compact the write buffer once this much of its front has been flushed.
const WRITE_COMPACT_BYTES: usize = 64 << 10;

struct Conn {
    stream: Stream,
    frames: FrameReader,
    /// Response bytes not yet accepted by the socket.
    out: Vec<u8>,
    out_pos: usize,
    /// In-order response slots: `pending[i]` answers request
    /// `base_seq + i`; `None` is still being classified.
    pending: VecDeque<Option<Bytes>>,
    base_seq: u64,
    next_seq: u64,
    generation: u32,
    interest: Interest,
    /// Accepted on the admin listener: frames decode as admin ops and
    /// execute on the control thread, not the inference pool.
    admin: bool,
}

impl Conn {
    fn token(&self, index: usize) -> u64 {
        pack_token(index, self.generation)
    }

    fn unflushed(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

/// One decoded admin op bound for the control thread, with the slot its
/// reply must fill.
struct AdminJob {
    token: u64,
    slot: u64,
    request: AdminRequest,
}

/// Work handed to the inference pool.
enum Job {
    /// Coalesced single-sample requests for one resolved model.
    Group(FlushGroup),
    /// A client-submitted batch frame, passed through whole.
    Batch {
        model: Arc<ModelHandle>,
        token: u64,
        slot: u64,
        v2: bool,
        samples: Vec<Vec<f32>>,
    },
}

impl Job {
    fn samples(&self) -> usize {
        match self {
            Self::Group(group) => group.items.len(),
            Self::Batch { samples, .. } => samples.len(),
        }
    }
}

/// Classifies one job and returns its completions (one per request).
fn run_job(job: Job) -> Vec<Completion> {
    match job {
        Job::Group(group) => {
            let borrowed: Vec<&[f32]> = group
                .items
                .iter()
                .map(|item| item.features.as_slice())
                .collect();
            let start = Instant::now();
            let classes = group.model.engine().classify_batch(&borrowed);
            let elapsed = start.elapsed().as_nanos() as u64;
            let n = group.items.len() as u64;
            group.model.book(n, elapsed);
            // Each coalesced request reports the amortized share of the
            // batch's wall clock — the same accounting `classify_many`
            // applies to client-submitted batches.
            let latency_ns = (elapsed / n.max(1)).max(1);
            group
                .items
                .into_iter()
                .zip(classes)
                .map(|(item, class)| {
                    let response = crate::proto::ClassifyResponse { class, latency_ns };
                    Completion {
                        token: item.token,
                        slot: item.slot,
                        frame: if item.v2 {
                            response.encode_v2()
                        } else {
                            response.encode()
                        },
                        samples: 1,
                    }
                })
                .collect()
        }
        Job::Batch {
            model,
            token,
            slot,
            v2,
            samples,
        } => {
            let borrowed: Vec<&[f32]> = samples.iter().map(Vec::as_slice).collect();
            let start = Instant::now();
            let classes = model.engine().classify_batch(&borrowed);
            let latency_ns = start.elapsed().as_nanos() as u64;
            model.book(borrowed.len() as u64, latency_ns);
            let response = ClassifyBatchResponse {
                classes,
                latency_ns,
            };
            vec![Completion {
                token,
                slot,
                frame: if v2 {
                    response.encode_v2()
                } else {
                    response.encode()
                },
                samples: samples.len(),
            }]
        }
    }
}

/// A running event-loop front-end; joining it tears everything down.
pub(crate) struct EventLoopHandle {
    loop_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// Write end of the loop's wake pipe, to interrupt a poll on shutdown.
    wake: UnixStream,
}

impl EventLoopHandle {
    /// Wakes the loop (the caller must have set the shared shutdown flag
    /// first) and joins the loop thread and worker pool.
    pub(crate) fn stop(&mut self) {
        let _ = (&self.wake).write(&[1]);
        if let Some(handle) = self.loop_thread.take() {
            let _ = handle.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Binds the poller, wake pipe, and worker pool, then starts the loop
/// thread over an already-listening socket. When `admin` is given, its
/// listener joins the same poller under [`TOKEN_ADMIN_LISTENER`] and a
/// dedicated control thread executes the decoded ops — WAL fsyncs and
/// compaction never run on the loop thread and never wait behind queued
/// inference jobs.
pub(crate) fn spawn(
    listener: Listener,
    admin: Option<UnixListener>,
    shared: Arc<Shared>,
    opts: EventLoopOptions,
) -> std::io::Result<EventLoopHandle> {
    let poller = Poller::new()?;
    let (wake_tx, wake_rx) = UnixStream::pair()?;
    wake_tx.set_nonblocking(true)?;
    wake_rx.set_nonblocking(true)?;
    listener_nonblocking(&listener)?;
    poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;
    poller.register(wake_rx.as_raw_fd(), TOKEN_WAKEUP, Interest::READABLE)?;
    let admin_listener = match admin {
        Some(l) => {
            l.set_nonblocking(true)?;
            poller.register(l.as_raw_fd(), TOKEN_ADMIN_LISTENER, Interest::READABLE)?;
            Some(Listener::Uds(l))
        }
        None => None,
    };

    let worker_count = if opts.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(8)
    } else {
        opts.workers
    };
    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
    let mut workers = Vec::with_capacity(worker_count);
    for _ in 0..worker_count {
        let job_rx = Arc::clone(&job_rx);
        let completions = Arc::clone(&completions);
        let wake = wake_tx.try_clone()?;
        workers.push(std::thread::spawn(move || loop {
            // Sender dropped (loop thread exited) ⇒ drain and stop.
            let Ok(job) = job_rx.lock().expect("job queue").recv() else {
                return;
            };
            let done = run_job(job);
            completions.lock().expect("completion queue").extend(done);
            // A full wake pipe means a wakeup is already pending; the
            // loop will drain the completion queue either way.
            let _ = (&wake).write(&[1]);
        }));
    }

    // The control thread: one per loop, executing admin ops serially in
    // arrival order (activate-then-set-default scripts behave) and
    // pushing replies through the ordinary completion path.
    let admin_jobs = if admin_listener.is_some() {
        let (admin_tx, admin_rx) = mpsc::channel::<AdminJob>();
        let admin_shared = Arc::clone(&shared);
        let admin_completions = Arc::clone(&completions);
        let wake = wake_tx.try_clone()?;
        workers.push(std::thread::spawn(move || {
            // Sender dropped (loop thread exited) ⇒ stop.
            while let Ok(job) = admin_rx.recv() {
                let reply = admin::handle(&admin_shared.store, &job.request);
                let done = Completion {
                    token: job.token,
                    slot: job.slot,
                    frame: reply.encode(),
                    samples: 0,
                };
                admin_completions
                    .lock()
                    .expect("completion queue")
                    .push(done);
                let _ = (&wake).write(&[1]);
            }
        }));
        Some(admin_tx)
    } else {
        None
    };

    let loop_shared = Arc::clone(&shared);
    let loop_thread = std::thread::spawn(move || {
        let mut event_loop = EventLoop {
            poller,
            listener,
            admin_listener,
            shared: loop_shared,
            conns: Vec::new(),
            generations: Vec::new(),
            free: Vec::new(),
            active: 0,
            batcher: MicroBatcher::new(opts.microbatch.clone()),
            jobs: job_tx,
            admin_jobs,
            completions,
            wake_rx,
            opts,
        };
        event_loop.run();
    });

    Ok(EventLoopHandle {
        loop_thread: Some(loop_thread),
        workers,
        wake: wake_tx,
    })
}

fn listener_nonblocking(listener: &Listener) -> std::io::Result<()> {
    match listener {
        Listener::Uds(l) => l.set_nonblocking(true),
        Listener::Tcp(l) => l.set_nonblocking(true),
    }
}

struct EventLoop {
    poller: Poller,
    listener: Listener,
    /// The control-plane listener, when an admin socket was configured.
    admin_listener: Option<Listener>,
    shared: Arc<Shared>,
    /// Connection slab; `free` holds vacated indices for reuse.
    conns: Vec<Option<Conn>>,
    /// Per-slot generation, bumped on every close, so a completion for a
    /// dead tenant never answers the slot's next occupant.
    generations: Vec<u32>,
    free: Vec<usize>,
    active: usize,
    batcher: MicroBatcher,
    jobs: mpsc::Sender<Job>,
    /// Channel to the control thread; `None` without an admin socket.
    admin_jobs: Option<mpsc::Sender<AdminJob>>,
    completions: Arc<Mutex<Vec<Completion>>>,
    wake_rx: UnixStream,
    opts: EventLoopOptions,
}

impl EventLoop {
    fn run(&mut self) {
        let mut events = Vec::new();
        while !self.shared.shutdown.load(Ordering::Acquire) {
            // With samples pending, poll without blocking: the moment the
            // input goes idle we flush, so a lone request pays
            // microseconds, not the full flush_wait. Under sustained
            // arrivals the loop keeps finding ready connections and the
            // size/time caps below bound the coalescing delay.
            let timeout = if self.batcher.deadline().is_some() {
                Duration::ZERO
            } else {
                IDLE_TIMEOUT
            };
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                break;
            }
            let had_events = !events.is_empty();
            for &event in &events {
                match event.token {
                    TOKEN_LISTENER => self.accept_ready(false),
                    TOKEN_ADMIN_LISTENER => self.accept_ready(true),
                    TOKEN_WAKEUP => self.drain_wakeups(),
                    token => self.conn_event(token, event.readable, event.writable, event.error),
                }
            }
            // Completions may have landed while we were busy even without
            // a fresh wake byte in this batch of events.
            self.apply_completions();
            let groups = if had_events {
                self.batcher.flush_due(Instant::now())
            } else {
                // The zero-timeout poll came back empty: input is idle,
                // nothing more will coalesce — flush now.
                self.batcher.flush_all()
            };
            self.dispatch(groups);
        }
    }

    fn accept_ready(&mut self, admin: bool) {
        loop {
            let accepted = if admin {
                let Some(listener) = &self.admin_listener else {
                    return;
                };
                listener.accept()
            } else {
                self.listener.accept()
            };
            match accepted {
                Ok(stream) => {
                    // Admin connections are exempt from the data-plane
                    // connection cap: the socket is local-only and mode
                    // 0600, and an emergency `retire` must get through a
                    // daemon that is drowning in data traffic.
                    if !admin && self.active >= self.opts.max_connections {
                        // Best-effort structured refusal; a fresh socket
                        // buffer virtually always takes one small frame.
                        let frame = ErrorFrame {
                            code: ERR_OVERLOADED,
                            detail: format!(
                                "connection limit {} reached",
                                self.opts.max_connections
                            ),
                        }
                        .encode();
                        let mut stream = stream;
                        let _ = stream.write(&frame);
                        continue;
                    }
                    self.insert_conn(stream, admin);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                // Transient pressure (EMFILE, aborted handshake, EINTR):
                // the listener stays level-triggered readable while a
                // connection is still queued, so the next iteration
                // retries — same resilience as run_accept_loop.
                Err(_) => return,
            }
        }
    }

    fn insert_conn(&mut self, stream: Stream, admin: bool) {
        let index = match self.free.pop() {
            Some(index) => index,
            None => {
                self.conns.push(None);
                self.generations.push(0);
                self.conns.len() - 1
            }
        };
        let generation = self.generations[index];
        let conn = Conn {
            stream,
            frames: FrameReader::new(),
            out: Vec::new(),
            out_pos: 0,
            pending: VecDeque::new(),
            base_seq: 0,
            next_seq: 0,
            generation,
            interest: Interest::READABLE,
            admin,
        };
        let token = conn.token(index);
        let fd = conn.stream.as_raw_fd();
        if self.poller.register(fd, token, Interest::READABLE).is_err() {
            // Registration failure: drop the connection, reuse the slot.
            self.free.push(index);
            return;
        }
        self.conns[index] = Some(conn);
        self.active += 1;
    }

    fn drain_wakeups(&mut self) {
        let mut buf = [0u8; 64];
        while matches!((&self.wake_rx).read(&mut buf), Ok(n) if n > 0) {}
    }

    fn conn_event(&mut self, token: u64, readable: bool, writable: bool, error: bool) {
        let (index, generation) = unpack_token(token);
        let Some(Some(conn)) = self.conns.get(index) else {
            return;
        };
        if conn.generation != generation {
            return; // stale event for a reused slot
        }
        if writable {
            self.flush_out(index);
        }
        if readable {
            self.read_ready(index);
        } else if error {
            self.close_conn(index);
            return;
        }
        self.update_interest(index);
    }

    fn read_ready(&mut self, index: usize) {
        for _ in 0..FRAMES_PER_WAKE {
            let Some(Some(conn)) = self.conns.get_mut(index) else {
                return;
            };
            let is_admin = conn.admin;
            let payload = match conn.frames.read_frame(&mut conn.stream) {
                Ok(Some(payload)) => payload,
                Ok(None) => {
                    // Clean EOF: the peer is gone, any responses still in
                    // flight have no reader.
                    self.close_conn(index);
                    return;
                }
                Err(ProtoError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return; // drained; partial frame stays buffered
                }
                // Framing-level corruption (oversized declaration, EOF
                // mid-frame, transport error): no trustworthy frame
                // boundary remains, drop the connection.
                Err(_) => {
                    self.close_conn(index);
                    return;
                }
            };
            if is_admin {
                self.on_admin_request(index, &payload);
            } else {
                self.on_request(index, &payload);
            }
            if self.conns.get(index).is_none_or(Option::is_none) {
                return; // the request handler closed the connection
            }
        }
    }

    fn on_request(&mut self, index: usize, payload: &[u8]) {
        match Request::decode(payload) {
            Ok(Request::Single(request)) => {
                self.submit_single(index, None, request.features, false);
            }
            Ok(Request::SingleWith(request)) => {
                self.submit_single(index, Some(request.model), request.features, true);
            }
            Ok(Request::Batch(request)) => {
                self.submit_batch(index, None, request.samples, false);
            }
            Ok(Request::BatchWith(request)) => {
                self.submit_batch(index, Some(request.model), request.samples, true);
            }
            Ok(Request::ListModels { extended }) => {
                let response = ListModelsResponse {
                    models: self.shared.store.list(),
                };
                let frame = match response.encode(if extended { 3 } else { 2 }) {
                    Ok(frame) => frame,
                    Err(e) => ErrorFrame {
                        code: ERR_INTERNAL,
                        detail: format!("model list does not fit in a frame: {e}"),
                    }
                    .encode(),
                };
                self.respond_now(index, frame);
            }
            Ok(Request::UnsupportedVersion { requested }) => {
                let frame = ErrorFrame {
                    code: ERR_UNSUPPORTED_VERSION,
                    detail: format!(
                        "protocol version {requested} not supported; \
                         this server speaks up to {PROTOCOL_VERSION}"
                    ),
                }
                .encode();
                self.respond_now(index, frame);
            }
            // The frame was well-delimited, so the stream is still in
            // sync: reject the one bad request, keep the connection.
            Err(e) => {
                let frame = ErrorFrame {
                    code: ERR_MALFORMED_REQUEST,
                    detail: e.to_string(),
                }
                .encode();
                self.respond_now(index, frame);
            }
        }
    }

    /// Routes one admin frame: decode failures answer a typed refusal
    /// inline (the connection survives — the frame was well-delimited);
    /// decoded ops ship to the control thread, which fills the reserved
    /// slot through the completion path like any inference reply.
    fn on_admin_request(&mut self, index: usize, payload: &[u8]) {
        let request = match AdminRequest::decode(payload) {
            Ok(request) => request,
            Err(e) => {
                let frame = admin::malformed_reply(&e).encode();
                self.respond_now(index, frame);
                return;
            }
        };
        let Some(Some(conn)) = self.conns.get_mut(index) else {
            return;
        };
        let token = conn.token(index);
        let slot = alloc_slot(conn);
        let sent = self.admin_jobs.as_ref().is_some_and(|jobs| {
            jobs.send(AdminJob {
                token,
                slot,
                request,
            })
            .is_ok()
        });
        if !sent {
            // Control thread gone — only during teardown. Fail the slot
            // so the ordered queue does not wedge behind it.
            let frame = admin::AdminReply::Refused(admin::AdminError {
                code: admin::ADMIN_ERR_INTERNAL,
                detail: "control thread unavailable".into(),
            })
            .encode();
            let Some(Some(conn)) = self.conns.get_mut(index) else {
                return;
            };
            fill_slot(conn, slot, frame);
            drain_ready(conn);
            self.flush_out(index);
        }
    }

    fn submit_single(&mut self, index: usize, model: Option<String>, features: Vec<f32>, v2: bool) {
        let resolved = self.shared.store.resolve(model.as_deref());
        let model = match resolved {
            Ok(model) => model,
            Err(e) => {
                self.respond_now(index, route_error_frame(&e).encode());
                return;
            }
        };
        if !self.batcher.admit(1) {
            self.respond_now(index, overload_frame(1).encode());
            return;
        }
        let Some(Some(conn)) = self.conns.get_mut(index) else {
            self.batcher.release(1);
            return;
        };
        let token = conn.token(index);
        let slot = alloc_slot(conn);
        let sample = QueuedSample {
            token,
            slot,
            v2,
            features,
        };
        let groups = self.batcher.enqueue(model, sample, Instant::now());
        self.dispatch(groups);
    }

    fn submit_batch(
        &mut self,
        index: usize,
        model: Option<String>,
        samples: Vec<Vec<f32>>,
        v2: bool,
    ) {
        let resolved = self.shared.store.resolve(model.as_deref());
        let model = match resolved {
            Ok(model) => model,
            Err(e) => {
                self.respond_now(index, route_error_frame(&e).encode());
                return;
            }
        };
        if samples.is_empty() {
            // Answer inline without touching engine or statistics, like
            // `classify_many`.
            let response = ClassifyBatchResponse {
                classes: Vec::new(),
                latency_ns: 0,
            };
            let frame = if v2 {
                response.encode_v2()
            } else {
                response.encode()
            };
            self.respond_now(index, frame);
            return;
        }
        let n = samples.len();
        if !self.batcher.admit(n) {
            self.respond_now(index, overload_frame(n).encode());
            return;
        }
        let Some(Some(conn)) = self.conns.get_mut(index) else {
            self.batcher.release(n);
            return;
        };
        let token = conn.token(index);
        let slot = alloc_slot(conn);
        // Client-submitted batches are already kernel-sized; hand them
        // through whole instead of re-coalescing. Batches at or above the
        // flush threshold take the same-thread fast path: they gain
        // nothing from coalescing, so the loop→worker handoff (queue,
        // wake pipe, completion lock) is pure added latency for them —
        // the `uds_batch` p99 regression recorded in EXPERIMENTS.md
        // entry 2. Running the kernel inline trades one batch of loop
        // availability for a shorter, lock-free response path.
        let job = Job::Batch {
            model,
            token,
            slot,
            v2,
            samples,
        };
        if n >= self.batcher.flush_samples() {
            let done = run_job(job);
            self.batcher.release(n);
            let Some(Some(conn)) = self.conns.get_mut(index) else {
                return;
            };
            for completion in done {
                fill_slot(conn, completion.slot, completion.frame);
            }
            drain_ready(conn);
            self.flush_out(index);
            self.update_interest(index);
            return;
        }
        self.send_job(job);
    }

    fn dispatch(&mut self, groups: Vec<FlushGroup>) {
        for group in groups {
            self.send_job(Job::Group(group));
        }
    }

    fn send_job(&mut self, job: Job) {
        let samples = job.samples();
        if self.jobs.send(job).is_err() {
            // Worker pool gone — only during teardown. Release the
            // admission so accounting stays exact.
            self.batcher.release(samples);
        }
    }

    /// Answers a request inline (errors, model lists, empty batches):
    /// claims the next slot, fills it immediately, and pushes whatever is
    /// deliverable onto the wire.
    fn respond_now(&mut self, index: usize, frame: Bytes) {
        let Some(Some(conn)) = self.conns.get_mut(index) else {
            return;
        };
        let slot = alloc_slot(conn);
        fill_slot(conn, slot, frame);
        drain_ready(conn);
        self.flush_out(index);
    }

    fn apply_completions(&mut self) {
        let done = {
            let mut queue = self.completions.lock().expect("completion queue");
            std::mem::take(&mut *queue)
        };
        if done.is_empty() {
            return;
        }
        let mut touched = Vec::new();
        for completion in done {
            // Admission is released even when the connection died while
            // the job was in flight — capacity must not leak.
            self.batcher.release(completion.samples);
            let (index, generation) = unpack_token(completion.token);
            let Some(Some(conn)) = self.conns.get_mut(index) else {
                continue;
            };
            if conn.generation != generation {
                continue; // slot reused since; discard the orphan
            }
            fill_slot(conn, completion.slot, completion.frame);
            drain_ready(conn);
            if !touched.contains(&index) {
                touched.push(index);
            }
        }
        for index in touched {
            self.flush_out(index);
            self.update_interest(index);
        }
    }

    /// Writes buffered response bytes until the socket refuses; closes
    /// the connection on transport failure or slow-consumer overflow.
    fn flush_out(&mut self, index: usize) {
        let max_write_buffer = self.opts.max_write_buffer;
        let close = {
            let Some(Some(conn)) = self.conns.get_mut(index) else {
                return;
            };
            let mut dead = false;
            while conn.out_pos < conn.out.len() {
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => conn.out_pos += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if conn.out_pos == conn.out.len() {
                conn.out.clear();
                conn.out_pos = 0;
            } else if conn.out_pos >= WRITE_COMPACT_BYTES {
                conn.out.drain(..conn.out_pos);
                conn.out_pos = 0;
            }
            // A peer that stops reading while piling on requests would
            // otherwise trade thread exhaustion for memory exhaustion.
            dead || conn.unflushed() > max_write_buffer
        };
        if close {
            self.close_conn(index);
        }
    }

    /// Mirrors the write backlog into poller interest: `EPOLLOUT` only
    /// while bytes are parked, so an idle connection costs no wakeups.
    fn update_interest(&mut self, index: usize) {
        let Some(Some(conn)) = self.conns.get_mut(index) else {
            return;
        };
        let want = if conn.unflushed() > 0 {
            Interest::BOTH
        } else {
            Interest::READABLE
        };
        if want != conn.interest {
            let fd = conn.stream.as_raw_fd();
            let token = conn.token(index);
            if self.poller.reregister(fd, token, want).is_ok() {
                conn.interest = want;
            }
        }
    }

    fn close_conn(&mut self, index: usize) {
        let Some(slot) = self.conns.get_mut(index) else {
            return;
        };
        if let Some(conn) = slot.take() {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.generations[index] = self.generations[index].wrapping_add(1);
            self.free.push(index);
            self.active -= 1;
            // The fd closes when `conn` drops here. Samples of this
            // connection still queued or in flight classify harmlessly;
            // their completions are discarded by the generation check and
            // their admission released there.
        }
    }
}

fn overload_frame(samples: usize) -> ErrorFrame {
    ErrorFrame {
        code: ERR_OVERLOADED,
        detail: format!("request queue full; {samples} sample(s) shed, retry after backoff"),
    }
}

fn alloc_slot(conn: &mut Conn) -> u64 {
    let slot = conn.next_seq;
    conn.next_seq += 1;
    conn.pending.push_back(None);
    slot
}

fn fill_slot(conn: &mut Conn, slot: u64, frame: Bytes) {
    let Some(offset) = slot.checked_sub(conn.base_seq) else {
        return; // already delivered (cannot happen; defensive)
    };
    if let Some(entry) = conn.pending.get_mut(offset as usize) {
        *entry = Some(frame);
    }
}

/// Moves every response that is next-in-order into the write buffer.
fn drain_ready(conn: &mut Conn) {
    while matches!(conn.pending.front(), Some(Some(_))) {
        let frame = conn.pending.pop_front().flatten().expect("checked Some");
        conn.base_seq += 1;
        conn.out.extend_from_slice(&frame);
    }
}
