//! The classification front-end (Fig. 7), serving a [`ModelRegistry`].

use crate::event_loop::{self, EventLoopHandle, Listener, ServingMode};
use crate::proto::{
    write_frame, ClassifyBatchResponse, ClassifyResponse, ErrorFrame, FrameReader,
    ListModelsResponse, ProtoError, Request, ERR_INTERNAL, ERR_NO_DEFAULT_MODEL, ERR_RETIRED_MODEL,
    ERR_UNKNOWN_MODEL, ERR_UNSUPPORTED_VERSION, PROTOCOL_VERSION,
};
use crate::registry::{ModelHandle, ModelRegistry, RouteError};
use crate::store::ModelStore;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Aggregate service statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests answered.
    pub requests: u64,
    /// Total service-side latency across requests, in nanoseconds.
    pub total_latency_ns: u64,
}

impl ServerStats {
    /// Mean service-side latency in nanoseconds.
    #[must_use]
    pub fn mean_latency_ns(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency_ns as f64 / self.requests as f64
        }
    }
}

pub(crate) struct Shared {
    /// The model store every request resolves through. A detached store
    /// (no model directory) degrades to a plain registry passthrough.
    pub(crate) store: ModelStore,
    pub(crate) shutdown: AtomicBool,
}

impl Shared {
    pub(crate) fn new(store: ModelStore) -> Self {
        Self {
            store,
            shutdown: AtomicBool::new(false),
        }
    }

    pub(crate) fn registry(&self) -> &ModelRegistry {
        self.store.registry()
    }
}

/// Joins every worker whose connection has already closed, so a long-lived
/// server does not accumulate one parked `JoinHandle` per historical
/// connection.
pub(crate) fn reap_finished(workers: &mut Vec<JoinHandle<()>>) {
    let mut i = 0;
    while i < workers.len() {
        if workers[i].is_finished() {
            let _ = workers.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

/// Longest sleep between retries of a failing `accept`.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(100);

/// Drives an accept loop until shutdown, spawning one worker thread per
/// accepted connection. Shared by the UDS and TCP front-ends.
///
/// `WouldBlock` is the non-blocking listener's idle signal and polls at
/// 1 ms. Every *other* accept error — `EMFILE`/`ENFILE` descriptor
/// exhaustion under connection load, `ECONNABORTED` handshakes, `EINTR` —
/// is transient pressure, not a reason to die: a `break` here would kill
/// the accept thread while the process keeps running deaf. Such errors are
/// logged and retried with exponential backoff (capped at
/// [`ACCEPT_BACKOFF_MAX`]); only the shutdown flag exits the loop.
pub(crate) fn run_accept_loop<S, A, F>(shared: &Arc<Shared>, mut accept: A, serve: F)
where
    S: Send + 'static,
    A: FnMut() -> std::io::Result<S>,
    F: Fn(S, &Shared) + Clone + Send + 'static,
{
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    let mut backoff = Duration::from_millis(1);
    while !shared.shutdown.load(Ordering::Acquire) {
        match accept() {
            Ok(stream) => {
                backoff = Duration::from_millis(1);
                let conn_shared = Arc::clone(shared);
                let serve = serve.clone();
                workers.push(std::thread::spawn(move || serve(stream, &conn_shared)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => {
                eprintln!("bolt-server: accept failed ({e}); retrying in {backoff:?}");
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
            }
        }
        reap_finished(&mut workers);
    }
    for worker in workers {
        let _ = worker.join();
    }
}

/// How a bound server front-end is being driven — and therefore how to
/// tear it down.
pub(crate) enum FrontEnd {
    /// Blocking accept loops spawning one thread per connection (the data
    /// listener, plus the admin listener when configured).
    Threads(Vec<JoinHandle<()>>),
    /// Event-loop thread plus worker pool ([`crate::event_loop`]).
    Event(EventLoopHandle),
}

impl FrontEnd {
    pub(crate) fn stop(&mut self) {
        match self {
            Self::Threads(handles) => {
                for handle in handles.drain(..) {
                    let _ = handle.join();
                }
            }
            Self::Event(handle) => handle.stop(),
        }
    }
}

/// A classification server on a Unix domain socket. Hosts every model in
/// its [`ModelRegistry`]; construct it with
/// [`ServerBuilder`](crate::ServerBuilder).
///
/// The default [`ServingMode`] is the event-loop front-end with adaptive
/// micro-batching; [`ServingMode::ThreadPerConnection`] restores the
/// paper's §6 methodology (requests on a connection processed
/// sequentially by a dedicated thread, without batching).
pub struct ClassificationServer {
    shared: Arc<Shared>,
    path: PathBuf,
    /// The control-plane socket path, when one was bound; removed on stop.
    admin_path: Option<PathBuf>,
    front: FrontEnd,
}

impl ClassificationServer {
    /// Binds the socket (removing any stale file) and starts accepting,
    /// serving the store's models — registry-resident and lazily mapped
    /// directory artifacts alike — under the given serving mode. With
    /// `admin`, a mode-0600 control socket is bound alongside and served
    /// as its own listener class ([`crate::admin`]).
    pub(crate) fn bind_store(
        path: impl AsRef<Path>,
        store: ModelStore,
        mode: ServingMode,
        admin: Option<PathBuf>,
    ) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        let admin_listener = match &admin {
            Some(admin_path) => Some(crate::admin::bind(admin_path)?),
            None => None,
        };
        let shared = Arc::new(Shared::new(store));
        let front = match mode {
            ServingMode::ThreadPerConnection => {
                let accept_shared = Arc::clone(&shared);
                let mut handles = vec![std::thread::spawn(move || {
                    run_accept_loop(
                        &accept_shared,
                        || listener.accept().map(|(stream, _)| stream),
                        |stream, shared| {
                            let _ = handle_connection(stream, shared);
                        },
                    );
                })];
                if let Some(admin_listener) = admin_listener {
                    admin_listener.set_nonblocking(true)?;
                    let accept_shared = Arc::clone(&shared);
                    handles.push(std::thread::spawn(move || {
                        run_accept_loop(
                            &accept_shared,
                            || admin_listener.accept().map(|(stream, _)| stream),
                            |stream, shared| {
                                let _ = handle_admin_connection(stream, shared);
                            },
                        );
                    }));
                }
                FrontEnd::Threads(handles)
            }
            ServingMode::EventLoop(opts) => FrontEnd::Event(event_loop::spawn(
                Listener::Uds(listener),
                admin_listener,
                Arc::clone(&shared),
                opts,
            )?),
        };
        Ok(Self {
            shared,
            path,
            admin_path: admin,
            front,
        })
    }

    /// The socket path clients connect to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The control-plane socket path, when one is bound.
    #[must_use]
    pub fn admin_path(&self) -> Option<&Path> {
        self.admin_path.as_deref()
    }

    /// A handle to the live model registry, for hot-swapping, retiring,
    /// and re-defaulting models while the server runs.
    #[must_use]
    pub fn registry(&self) -> ModelRegistry {
        self.shared.registry().clone()
    }

    /// A handle to the live model store, for lifecycle operations
    /// (activate, retire, set-default) that must survive a restart.
    #[must_use]
    pub fn store(&self) -> ModelStore {
        self.shared.store.clone()
    }

    /// Snapshot of the aggregate statistics across every model (including
    /// retired ones).
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        self.shared.registry().total_stats()
    }

    /// Snapshot of one model's statistics.
    #[must_use]
    pub fn stats_for(&self, model: &str) -> Option<ServerStats> {
        self.shared.registry().stats(model)
    }

    /// Stops accepting, waits for in-flight connections, and removes the
    /// socket file.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.front.stop();
        let _ = std::fs::remove_file(&self.path);
        if let Some(admin_path) = &self.admin_path {
            let _ = std::fs::remove_file(admin_path);
        }
    }
}

impl Drop for ClassificationServer {
    fn drop(&mut self) {
        // Infallible teardown; `shutdown` is the checked variant.
        self.stop();
    }
}

impl std::fmt::Debug for ClassificationServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClassificationServer")
            .field("path", &self.path)
            .field("store", &self.shared.store)
            .finish()
    }
}

fn handle_connection(stream: UnixStream, shared: &Shared) -> Result<(), ProtoError> {
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    handle_stream(stream, shared)
}

fn handle_admin_connection(stream: UnixStream, shared: &Shared) -> Result<(), ProtoError> {
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    crate::admin::handle_admin_stream(stream, &shared.store, &shared.shutdown)
}

/// Translates a routing failure into its structured wire error.
pub(crate) fn route_error_frame(error: &RouteError) -> ErrorFrame {
    let code = match error {
        RouteError::UnknownModel(_) => ERR_UNKNOWN_MODEL,
        RouteError::RetiredModel(_) => ERR_RETIRED_MODEL,
        RouteError::NoDefaultModel => ERR_NO_DEFAULT_MODEL,
        RouteError::LoadFailed(_) => ERR_INTERNAL,
    };
    ErrorFrame {
        code,
        detail: error.to_string(),
    }
}

/// Classifies one sample on a resolved model, booking its latency.
fn classify_one(model: &ModelHandle, features: &[f32]) -> ClassifyResponse {
    // Latency measured from receipt to aggregation output (§6).
    let start = Instant::now();
    let class = model.engine().classify(features);
    let latency_ns = start.elapsed().as_nanos() as u64;
    model.book(1, latency_ns);
    ClassifyResponse { class, latency_ns }
}

/// Classifies a batch on a resolved model. Each sample counts as a
/// request; the batch's wall clock is booked once, so mean latency
/// reflects the amortized per-sample cost. Empty batches touch neither
/// the engine nor the statistics: latency booked without a request count
/// would skew the mean.
fn classify_many(model: &ModelHandle, samples: &[Vec<f32>]) -> ClassifyBatchResponse {
    if samples.is_empty() {
        return ClassifyBatchResponse {
            classes: Vec::new(),
            latency_ns: 0,
        };
    }
    let borrowed: Vec<&[f32]> = samples.iter().map(Vec::as_slice).collect();
    let start = Instant::now();
    let classes = model.engine().classify_batch(&borrowed);
    let latency_ns = start.elapsed().as_nanos() as u64;
    model.book(borrowed.len() as u64, latency_ns);
    ClassifyBatchResponse {
        classes,
        latency_ns,
    }
}

/// Serves framed requests on any byte stream whose read timeout has been
/// configured by the caller (both Unix and TCP transports funnel here).
///
/// Routing failures (unknown model, retired model, no default) answer
/// with a structured [`ErrorFrame`] and keep the connection alive; only
/// transport failures and malformed frames tear it down.
pub(crate) fn handle_stream<S: std::io::Read + std::io::Write>(
    mut stream: S,
    shared: &Shared,
) -> Result<(), ProtoError> {
    // Per-connection frame state: the read timeout exists so this loop can
    // re-check the shutdown flag, and it can fire *mid-frame* for a slow
    // or trickling client. The FrameReader buffers partial bytes across
    // those timeouts (resume, don't restart), so a timeout between frames
    // is pure idleness and a timeout mid-frame loses nothing.
    let mut frames = FrameReader::new();
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return Ok(());
        }
        let payload = match frames.read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => return Ok(()), // client hung up cleanly
            Err(ProtoError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue; // re-check shutdown, then resume where we left off
            }
            Err(e) => return Err(e),
        };
        match Request::decode(&payload)? {
            Request::Single(request) => match shared.store.resolve(None) {
                Ok(model) => {
                    let response = classify_one(&model, &request.features);
                    write_frame(&mut stream, &response.encode())?;
                }
                Err(e) => write_frame(&mut stream, &route_error_frame(&e).encode())?,
            },
            Request::Batch(request) => match shared.store.resolve(None) {
                Ok(model) => {
                    let response = classify_many(&model, &request.samples);
                    write_frame(&mut stream, &response.encode())?;
                }
                Err(e) => write_frame(&mut stream, &route_error_frame(&e).encode())?,
            },
            Request::SingleWith(request) => match shared.store.resolve(Some(&request.model)) {
                Ok(model) => {
                    let response = classify_one(&model, &request.features);
                    write_frame(&mut stream, &response.encode_v2())?;
                }
                Err(e) => write_frame(&mut stream, &route_error_frame(&e).encode())?,
            },
            Request::BatchWith(request) => match shared.store.resolve(Some(&request.model)) {
                Ok(model) => {
                    let response = classify_many(&model, &request.samples);
                    write_frame(&mut stream, &response.encode_v2())?;
                }
                Err(e) => write_frame(&mut stream, &route_error_frame(&e).encode())?,
            },
            Request::ListModels { extended } => {
                let response = ListModelsResponse {
                    models: shared.store.list(),
                };
                match response.encode(if extended { 3 } else { 2 }) {
                    Ok(framed) => write_frame(&mut stream, &framed)?,
                    Err(e) => {
                        // A registry too large to enumerate in one frame;
                        // report rather than kill the connection.
                        let frame = ErrorFrame {
                            code: ERR_INTERNAL,
                            detail: format!("model list does not fit in a frame: {e}"),
                        };
                        write_frame(&mut stream, &frame.encode())?;
                    }
                }
            }
            Request::UnsupportedVersion { requested } => {
                let frame = ErrorFrame {
                    code: ERR_UNSUPPORTED_VERSION,
                    detail: format!(
                        "protocol version {requested} not supported; \
                         this server speaks up to {PROTOCOL_VERSION}"
                    ),
                };
                write_frame(&mut stream, &frame.encode())?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ServerBuilder;
    use crate::client::ClassificationClient;
    use crate::engine::BoltEngine;
    use crate::proto::read_frame;
    use bolt_baselines::ScikitLikeForest;
    use bolt_core::{BoltConfig, BoltForest};
    use bolt_forest::{Dataset, ForestConfig, RandomForest};

    fn unique_socket(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bolt-test-{tag}-{}.sock", std::process::id()))
    }

    fn fixture() -> (Dataset, RandomForest, Arc<BoltForest>) {
        let rows: Vec<Vec<f32>> = (0..80)
            .map(|i| vec![(i % 8) as f32, (i % 3) as f32])
            .collect();
        let labels: Vec<u32> = rows.iter().map(|r| u32::from(r[0] > 3.0)).collect();
        let data = Dataset::from_rows(rows, labels, 2).expect("valid");
        let forest =
            RandomForest::train(&data, &ForestConfig::new(5).with_max_height(3).with_seed(3));
        let bolt =
            Arc::new(BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles"));
        (data, forest, bolt)
    }

    fn bolt_server(path: &Path, bolt: Arc<BoltForest>) -> ClassificationServer {
        ServerBuilder::new()
            .register("bolt", Arc::new(BoltEngine::new(bolt)))
            .bind_uds(path)
            .expect("binds")
    }

    #[test]
    fn end_to_end_roundtrip() {
        let (data, forest, bolt) = fixture();
        let path = unique_socket("roundtrip");
        let server = bolt_server(&path, bolt);
        let mut client = ClassificationClient::connect(&path).expect("connects");
        for (sample, _) in data.iter().take(30) {
            let response = client.classify(sample).expect("classifies");
            assert_eq!(response.class, forest.predict(sample));
            assert!(response.latency_ns > 0);
        }
        let stats = server.stats();
        assert_eq!(stats.requests, 30);
        assert!(stats.mean_latency_ns() > 0.0);
        // The single registered model is the default and carries the
        // whole count.
        assert_eq!(server.stats_for("bolt").expect("registered").requests, 30);
        server.shutdown();
        assert!(!path.exists(), "socket file removed on shutdown");
    }

    #[test]
    fn batched_roundtrip_matches_singles() {
        let (data, forest, bolt) = fixture();
        let path = unique_socket("batch");
        let server = bolt_server(&path, bolt);
        let mut client = ClassificationClient::connect(&path).expect("connects");
        let samples: Vec<&[f32]> = (0..40).map(|i| data.sample(i)).collect();
        let response = client.classify_batch(&samples).expect("classifies");
        assert_eq!(response.classes.len(), samples.len());
        for (i, &class) in response.classes.iter().enumerate() {
            assert_eq!(class, forest.predict(samples[i]));
        }
        // Singles still work on the same connection, before and after.
        let single = client.classify(samples[0]).expect("classifies");
        assert_eq!(single.class, forest.predict(samples[0]));
        // Every batched sample counts as a request.
        assert_eq!(server.stats().requests, 41);
        server.shutdown();
    }

    #[test]
    fn empty_batch_roundtrip() {
        let (_, _, bolt) = fixture();
        let path = unique_socket("batch-empty");
        let server = bolt_server(&path, bolt);
        let mut client = ClassificationClient::connect(&path).expect("connects");
        let response = client.classify_batch(&[]).expect("classifies");
        assert!(response.classes.is_empty());
        // Empty batches must not move the stats at all: latency booked
        // without a request count would skew the mean.
        assert_eq!(server.stats(), ServerStats::default());
        server.shutdown();
    }

    #[test]
    fn multiple_concurrent_clients() {
        let (data, forest, bolt) = fixture();
        let path = unique_socket("concurrent");
        let server = bolt_server(&path, bolt);
        let expected: Vec<u32> = (0..20).map(|i| forest.predict(data.sample(i))).collect();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let path = path.clone();
                let data = data.clone();
                let expected = expected.clone();
                std::thread::spawn(move || {
                    let mut client = ClassificationClient::connect(&path).expect("connects");
                    for (i, &want) in expected.iter().enumerate() {
                        let response = client.classify(data.sample(i)).expect("classifies");
                        assert_eq!(response.class, want);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
        assert_eq!(server.stats().requests, 60);
        server.shutdown();
    }

    #[test]
    fn malformed_client_does_not_take_down_the_service() {
        use std::io::Write as _;
        let (data, forest, bolt) = fixture();
        let path = unique_socket("malformed");
        let server = bolt_server(&path, bolt);
        // A hostile client: declares an oversized frame, then hangs up.
        {
            let mut bad = UnixStream::connect(&path).expect("connects");
            bad.write_all(&(u32::MAX).to_le_bytes()).expect("writes");
            bad.write_all(&[0u8; 16]).expect("writes");
        }
        // A second hostile client: truncated frame.
        {
            let mut bad = UnixStream::connect(&path).expect("connects");
            bad.write_all(&100u32.to_le_bytes()).expect("writes");
            bad.write_all(&[1, 2, 3]).expect("writes");
        }
        // A well-behaved client still gets answers.
        let mut client = ClassificationClient::connect(&path).expect("connects");
        for (sample, _) in data.iter().take(5) {
            let response = client.classify(sample).expect("classifies");
            assert_eq!(response.class, forest.predict(sample));
        }
        server.shutdown();
    }

    #[test]
    fn slow_client_dribbling_across_timeouts_is_served() {
        use std::io::Write as _;
        let (data, forest, bolt) = fixture();
        let path = unique_socket("dribble");
        let server = bolt_server(&path, bolt);
        let mut raw = UnixStream::connect(&path).expect("connects");
        let sample = data.sample(0);
        let framed = crate::proto::ClassifyRequest {
            features: sample.to_vec(),
        }
        .encode();
        // Trickle the frame across the server's 200 ms read timeout twice:
        // once inside the length header, once inside the payload. The old
        // read_exact-based reader lost the already-consumed bytes at each
        // timeout and desynced the connection.
        raw.write_all(&framed[..2]).expect("writes");
        std::thread::sleep(Duration::from_millis(350));
        raw.write_all(&framed[2..6]).expect("writes");
        std::thread::sleep(Duration::from_millis(350));
        raw.write_all(&framed[6..]).expect("writes");
        let reply = read_frame(&mut raw).expect("read").expect("frame");
        let response = ClassifyResponse::decode(&reply).expect("decodes");
        assert_eq!(response.class, forest.predict(sample));
        // The same connection still serves a full-speed request after.
        raw.write_all(&framed).expect("writes");
        let reply = read_frame(&mut raw).expect("read").expect("frame");
        assert_eq!(
            ClassifyResponse::decode(&reply).expect("decodes").class,
            forest.predict(sample)
        );
        server.shutdown();
    }

    #[test]
    fn accept_loop_survives_transient_accept_errors() {
        use std::sync::atomic::AtomicUsize;
        let shared = Arc::new(Shared::new(ModelStore::detached(
            crate::registry::ModelRegistry::new(),
        )));
        let served = Arc::new(AtomicUsize::new(0));
        let loop_shared = Arc::clone(&shared);
        let loop_served = Arc::clone(&served);
        let accept_thread = std::thread::spawn(move || {
            // A listener under pressure: descriptor exhaustion twice, an
            // aborted handshake, an interrupt — then one real connection,
            // then idle. The old loop `break`s on the first EMFILE and
            // never reaches the connection.
            let mut calls = 0usize;
            run_accept_loop(
                &loop_shared,
                move || {
                    calls += 1;
                    match calls {
                        1 => Err(std::io::Error::from_raw_os_error(24)), // EMFILE
                        2 => Err(std::io::Error::from_raw_os_error(23)), // ENFILE
                        3 => Err(std::io::ErrorKind::ConnectionAborted.into()),
                        4 => Err(std::io::ErrorKind::Interrupted.into()),
                        5 => Ok(()),
                        _ => Err(std::io::ErrorKind::WouldBlock.into()),
                    }
                },
                move |(), _shared| {
                    loop_served.fetch_add(1, Ordering::SeqCst);
                },
            );
        });
        let deadline = Instant::now() + Duration::from_secs(10);
        while served.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            served.load(Ordering::SeqCst),
            1,
            "the accept loop must outlive transient errors and still serve"
        );
        shared.shutdown.store(true, Ordering::Release);
        accept_thread.join().expect("accept loop exits on shutdown");
    }

    #[test]
    fn stale_socket_file_is_replaced() {
        let (_, _, bolt) = fixture();
        let path = unique_socket("stale");
        std::fs::write(&path, b"stale").expect("write stale file");
        let server = bolt_server(&path, bolt);
        server.shutdown();
    }

    #[test]
    fn named_routing_and_model_listing() {
        let (data, forest, bolt) = fixture();
        let path = unique_socket("routing");
        let server = ServerBuilder::new()
            .register("bolt", Arc::new(BoltEngine::new(bolt)))
            .register("scikit", Arc::new(ScikitLikeForest::from_forest(&forest)))
            .default_model("bolt")
            .bind_uds(&path)
            .expect("binds");
        let mut client = ClassificationClient::connect(&path).expect("connects");
        for (i, (sample, _)) in data.iter().take(10).enumerate() {
            let want = forest.predict(sample);
            // Both engines answer identically through their names, and
            // the legacy (unrouted) frame hits the default.
            assert_eq!(
                client.classify_with("bolt", sample).expect("bolt").class,
                want
            );
            assert_eq!(
                client
                    .classify_with("scikit", sample)
                    .expect("scikit")
                    .class,
                want
            );
            assert_eq!(client.classify(sample).expect("default").class, want);
            let _ = i;
        }
        let models = client.list_models().expect("lists").models;
        assert_eq!(
            models.iter().map(|m| m.name.as_str()).collect::<Vec<_>>(),
            ["bolt", "scikit"]
        );
        assert!(models[0].is_default);
        assert_eq!(models[0].engine, "BOLT");
        assert_eq!(models[1].engine, "Scikit");
        // 10 named + 10 legacy (default) on bolt, 10 named on scikit.
        assert_eq!(models[0].requests, 20);
        assert_eq!(models[1].requests, 10);
        assert_eq!(server.stats().requests, 30);
        server.shutdown();
    }

    #[test]
    fn unknown_and_retired_models_answer_structured_errors() {
        let (data, _, bolt) = fixture();
        let path = unique_socket("route-errors");
        let server = ServerBuilder::new()
            .register("bolt", Arc::new(BoltEngine::new(bolt)))
            .bind_uds(&path)
            .expect("binds");
        let mut client = ClassificationClient::connect(&path).expect("connects");
        let sample = data.sample(0);
        match client.classify_with("ghost", sample) {
            Err(ProtoError::Rejected { code, detail }) => {
                assert_eq!(code, ERR_UNKNOWN_MODEL);
                assert!(detail.contains("ghost"));
            }
            other => panic!("expected unknown-model rejection, got {other:?}"),
        }
        // Retire the only model: the registry refuses while it is the
        // default (clients would silently lose service), so clear the
        // default first. Named lookups then say *retired*, and legacy
        // frames get a structured no-default error.
        server
            .registry()
            .retire("bolt")
            .expect_err("the default cannot be retired in place");
        server.registry().clear_default();
        server.registry().retire("bolt").expect("retires");
        match client.classify_with("bolt", sample) {
            Err(ProtoError::Rejected { code, .. }) => assert_eq!(code, ERR_RETIRED_MODEL),
            other => panic!("expected retired-model rejection, got {other:?}"),
        }
        match client.classify(sample) {
            Err(ProtoError::Rejected { code, .. }) => assert_eq!(code, ERR_NO_DEFAULT_MODEL),
            other => panic!("expected no-default rejection, got {other:?}"),
        }
        // The connection survived all three rejections; registering the
        // name anew revives it.
        server
            .registry()
            .register(
                "bolt",
                Arc::new(BoltEngine::new(fixture().2)) as Arc<dyn bolt_baselines::InferenceEngine>,
            )
            .expect("revives the retired name");
        server.registry().set_default("bolt").expect("revived");
        assert!(client.classify(sample).is_ok());
        server.shutdown();
    }

    #[test]
    fn batch_routes_by_name() {
        let (data, forest, bolt) = fixture();
        let path = unique_socket("batch-routing");
        let server = ServerBuilder::new()
            .register("bolt", Arc::new(BoltEngine::new(bolt)))
            .register("scikit", Arc::new(ScikitLikeForest::from_forest(&forest)))
            .bind_uds(&path)
            .expect("binds");
        let mut client = ClassificationClient::connect(&path).expect("connects");
        let samples: Vec<&[f32]> = (0..20).map(|i| data.sample(i)).collect();
        for model in ["bolt", "scikit"] {
            let response = client
                .classify_batch_with(model, &samples)
                .expect("classifies");
            for (i, &class) in response.classes.iter().enumerate() {
                assert_eq!(class, forest.predict(samples[i]));
            }
        }
        assert_eq!(server.stats_for("bolt").expect("bolt").requests, 20);
        assert_eq!(server.stats_for("scikit").expect("scikit").requests, 20);
        // Empty named batches answer without moving stats.
        let empty = client.classify_batch_with("bolt", &[]).expect("answers");
        assert!(empty.classes.is_empty());
        assert_eq!(server.stats().requests, 40);
        server.shutdown();
    }

    #[test]
    fn future_protocol_version_is_answered_not_fatal() {
        use std::io::Write as _;
        let (data, _, bolt) = fixture();
        let path = unique_socket("version");
        let server = bolt_server(&path, bolt);
        let mut raw = UnixStream::connect(&path).expect("connects");
        // A frame from the future: v2 magic, version 9.
        let mut payload = Vec::new();
        payload.extend_from_slice(&crate::proto::V2_MAGIC.to_le_bytes());
        payload.push(9);
        payload.push(crate::proto::OP_LIST_MODELS);
        let mut framed = (payload.len() as u32).to_le_bytes().to_vec();
        framed.extend_from_slice(&payload);
        raw.write_all(&framed).expect("writes");
        let reply = read_frame(&mut raw).expect("read").expect("frame");
        match crate::proto::V2Response::decode(&reply).expect("decodes") {
            crate::proto::V2Response::Error(e) => {
                assert_eq!(e.code, ERR_UNSUPPORTED_VERSION);
                assert!(e.detail.contains('3'), "names the supported version");
            }
            other => panic!("expected error frame, got {other:?}"),
        }
        // Same connection still serves v2 requests afterwards.
        let mut client = ClassificationClient::connect(&path).expect("connects");
        assert!(client.classify(data.sample(0)).is_ok());
        server.shutdown();
    }
}
