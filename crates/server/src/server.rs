//! The classification front-end (Fig. 7).

use crate::proto::{
    read_frame, write_frame, ClassifyBatchResponse, ClassifyResponse, ProtoError, Request,
};
use bolt_baselines::InferenceEngine;
use parking_lot::Mutex;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Aggregate service statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests answered.
    pub requests: u64,
    /// Total service-side latency across requests, in nanoseconds.
    pub total_latency_ns: u64,
}

impl ServerStats {
    /// Mean service-side latency in nanoseconds.
    #[must_use]
    pub fn mean_latency_ns(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency_ns as f64 / self.requests as f64
        }
    }
}

pub(crate) struct Shared {
    pub(crate) engine: Box<dyn InferenceEngine>,
    pub(crate) stats: Mutex<ServerStats>,
    pub(crate) shutdown: AtomicBool,
}

impl Shared {
    pub(crate) fn new(engine: Box<dyn InferenceEngine>) -> Self {
        Self {
            engine,
            stats: Mutex::new(ServerStats::default()),
            shutdown: AtomicBool::new(false),
        }
    }
}

/// A classification server on a Unix domain socket, one thread per
/// connection (requests on a connection are processed sequentially, without
/// batching, per §6's methodology).
pub struct ClassificationServer {
    shared: Arc<Shared>,
    path: PathBuf,
    accept_thread: Option<JoinHandle<()>>,
}

impl ClassificationServer {
    /// Binds the socket (removing any stale file) and starts accepting.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the socket cannot be bound.
    pub fn bind(path: impl AsRef<Path>, engine: Box<dyn InferenceEngine>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            engine,
            stats: Mutex::new(ServerStats::default()),
            shutdown: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            while !accept_shared.shutdown.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let conn_shared = Arc::clone(&accept_shared);
                        workers.push(std::thread::spawn(move || {
                            let _ = handle_connection(stream, &conn_shared);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
            for worker in workers {
                let _ = worker.join();
            }
        });
        Ok(Self {
            shared,
            path,
            accept_thread: Some(accept_thread),
        })
    }

    /// The socket path clients connect to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Snapshot of the aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        *self.shared.stats.lock()
    }

    /// Stops accepting, waits for in-flight connections, and removes the
    /// socket file.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Drop for ClassificationServer {
    fn drop(&mut self) {
        // Infallible teardown; `shutdown` is the checked variant.
        self.stop();
    }
}

impl std::fmt::Debug for ClassificationServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClassificationServer")
            .field("path", &self.path)
            .field("engine", &self.shared.engine.name())
            .finish()
    }
}

fn handle_connection(stream: UnixStream, shared: &Shared) -> Result<(), ProtoError> {
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    handle_stream(stream, shared)
}

/// Serves framed requests on any byte stream whose read timeout has been
/// configured by the caller (both Unix and TCP transports funnel here).
pub(crate) fn handle_stream<S: std::io::Read + std::io::Write>(
    mut stream: S,
    shared: &Shared,
) -> Result<(), ProtoError> {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return Ok(());
        }
        let payload = match read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => return Ok(()), // client hung up cleanly
            Err(ProtoError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue; // idle; re-check shutdown
            }
            Err(e) => return Err(e),
        };
        match Request::decode(&payload)? {
            Request::Single(request) => {
                // Latency measured from receipt to aggregation output (§6).
                let start = Instant::now();
                let class = shared.engine.classify(&request.features);
                let latency_ns = start.elapsed().as_nanos() as u64;
                {
                    let mut stats = shared.stats.lock();
                    stats.requests += 1;
                    stats.total_latency_ns += latency_ns;
                }
                write_frame(
                    &mut stream,
                    &ClassifyResponse { class, latency_ns }.encode(),
                )?;
            }
            Request::Batch(request) => {
                if request.samples.is_empty() {
                    // Answer without touching the engine or the stats: an
                    // empty batch adds no requests, so booking its wall
                    // clock would inflate the mean latency unbacked by any
                    // request count.
                    write_frame(
                        &mut stream,
                        &ClassifyBatchResponse {
                            classes: Vec::new(),
                            latency_ns: 0,
                        }
                        .encode(),
                    )?;
                    continue;
                }
                let samples: Vec<&[f32]> = request.samples.iter().map(Vec::as_slice).collect();
                let start = Instant::now();
                let classes = shared.engine.classify_batch(&samples);
                let latency_ns = start.elapsed().as_nanos() as u64;
                {
                    // Each sample counts as a request; the batch's wall
                    // clock is booked once, so mean latency reflects the
                    // amortized per-sample cost.
                    let mut stats = shared.stats.lock();
                    stats.requests += samples.len() as u64;
                    stats.total_latency_ns += latency_ns;
                }
                write_frame(
                    &mut stream,
                    &ClassifyBatchResponse {
                        classes,
                        latency_ns,
                    }
                    .encode(),
                )?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClassificationClient;
    use crate::engine::BoltEngine;
    use bolt_core::{BoltConfig, BoltForest};
    use bolt_forest::{Dataset, ForestConfig, RandomForest};

    fn unique_socket(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bolt-test-{tag}-{}.sock", std::process::id()))
    }

    fn fixture() -> (Dataset, RandomForest, Arc<BoltForest>) {
        let rows: Vec<Vec<f32>> = (0..80)
            .map(|i| vec![(i % 8) as f32, (i % 3) as f32])
            .collect();
        let labels: Vec<u32> = rows.iter().map(|r| u32::from(r[0] > 3.0)).collect();
        let data = Dataset::from_rows(rows, labels, 2).expect("valid");
        let forest =
            RandomForest::train(&data, &ForestConfig::new(5).with_max_height(3).with_seed(3));
        let bolt =
            Arc::new(BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles"));
        (data, forest, bolt)
    }

    #[test]
    fn end_to_end_roundtrip() {
        let (data, forest, bolt) = fixture();
        let path = unique_socket("roundtrip");
        let server =
            ClassificationServer::bind(&path, Box::new(BoltEngine::new(bolt))).expect("binds");
        let mut client = ClassificationClient::connect(&path).expect("connects");
        for (sample, _) in data.iter().take(30) {
            let response = client.classify(sample).expect("classifies");
            assert_eq!(response.class, forest.predict(sample));
            assert!(response.latency_ns > 0);
        }
        let stats = server.stats();
        assert_eq!(stats.requests, 30);
        assert!(stats.mean_latency_ns() > 0.0);
        server.shutdown();
        assert!(!path.exists(), "socket file removed on shutdown");
    }

    #[test]
    fn batched_roundtrip_matches_singles() {
        let (data, forest, bolt) = fixture();
        let path = unique_socket("batch");
        let server =
            ClassificationServer::bind(&path, Box::new(BoltEngine::new(bolt))).expect("binds");
        let mut client = ClassificationClient::connect(&path).expect("connects");
        let samples: Vec<&[f32]> = (0..40).map(|i| data.sample(i)).collect();
        let response = client.classify_batch(&samples).expect("classifies");
        assert_eq!(response.classes.len(), samples.len());
        for (i, &class) in response.classes.iter().enumerate() {
            assert_eq!(class, forest.predict(samples[i]));
        }
        // Singles still work on the same connection, before and after.
        let single = client.classify(samples[0]).expect("classifies");
        assert_eq!(single.class, forest.predict(samples[0]));
        // Every batched sample counts as a request.
        assert_eq!(server.stats().requests, 41);
        server.shutdown();
    }

    #[test]
    fn empty_batch_roundtrip() {
        let (_, _, bolt) = fixture();
        let path = unique_socket("batch-empty");
        let server =
            ClassificationServer::bind(&path, Box::new(BoltEngine::new(bolt))).expect("binds");
        let mut client = ClassificationClient::connect(&path).expect("connects");
        let response = client.classify_batch(&[]).expect("classifies");
        assert!(response.classes.is_empty());
        // Empty batches must not move the stats at all: latency booked
        // without a request count would skew the mean.
        assert_eq!(server.stats(), ServerStats::default());
        server.shutdown();
    }

    #[test]
    fn multiple_concurrent_clients() {
        let (data, forest, bolt) = fixture();
        let path = unique_socket("concurrent");
        let server =
            ClassificationServer::bind(&path, Box::new(BoltEngine::new(bolt))).expect("binds");
        let expected: Vec<u32> = (0..20).map(|i| forest.predict(data.sample(i))).collect();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let path = path.clone();
                let data = data.clone();
                let expected = expected.clone();
                std::thread::spawn(move || {
                    let mut client = ClassificationClient::connect(&path).expect("connects");
                    for (i, &want) in expected.iter().enumerate() {
                        let response = client.classify(data.sample(i)).expect("classifies");
                        assert_eq!(response.class, want);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
        assert_eq!(server.stats().requests, 60);
        server.shutdown();
    }

    #[test]
    fn malformed_client_does_not_take_down_the_service() {
        use std::io::Write as _;
        let (data, forest, bolt) = fixture();
        let path = unique_socket("malformed");
        let server =
            ClassificationServer::bind(&path, Box::new(BoltEngine::new(bolt))).expect("binds");
        // A hostile client: declares an oversized frame, then hangs up.
        {
            let mut bad = UnixStream::connect(&path).expect("connects");
            bad.write_all(&(u32::MAX).to_le_bytes()).expect("writes");
            bad.write_all(&[0u8; 16]).expect("writes");
        }
        // A second hostile client: truncated frame.
        {
            let mut bad = UnixStream::connect(&path).expect("connects");
            bad.write_all(&100u32.to_le_bytes()).expect("writes");
            bad.write_all(&[1, 2, 3]).expect("writes");
        }
        // A well-behaved client still gets answers.
        let mut client = ClassificationClient::connect(&path).expect("connects");
        for (sample, _) in data.iter().take(5) {
            let response = client.classify(sample).expect("classifies");
            assert_eq!(response.class, forest.predict(sample));
        }
        server.shutdown();
    }

    #[test]
    fn stale_socket_file_is_replaced() {
        let (_, _, bolt) = fixture();
        let path = unique_socket("stale");
        std::fs::write(&path, b"stale").expect("write stale file");
        let server = ClassificationServer::bind(&path, Box::new(BoltEngine::new(bolt)))
            .expect("binds over stale file");
        server.shutdown();
    }
}
