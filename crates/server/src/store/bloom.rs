//! Lock-free bloom filter over model names.
//!
//! Unknown-model traffic (typos, retired fleets, hostile probes) must be
//! rejected without touching the registry lock or the model directory.
//! A fixed-size bloom filter answers "definitely not here" in O(1) from
//! atomic reads; only names that *might* exist proceed to the real
//! lookup. The filter is insert-only — retire and eviction never remove
//! bits — so a stale positive costs one registry miss, while a negative
//! is always authoritative.
//!
//! Hashing follows the xxh3-style double-hashing idiom: two independent
//! 64-bit hashes of the name under fixed seeds, with probe `i` at
//! `h_a.wrapping_add(i · h_b)`. Bits live in `AtomicU64` words, so
//! concurrent insert and query need no lock at all.

use std::sync::atomic::{AtomicU64, Ordering};

/// Filter width in bits. 2^16 bits (8 KiB) holds thousands of model
/// names below a ~1 % false-positive rate with [`N_HASHES`] probes —
/// fleet-scale headroom for a structure this cheap.
const N_BITS: u64 = 1 << 16;

/// Probes per key.
const N_HASHES: u64 = 4;

/// Seed for the first hash stream.
const SEED_A: u64 = 0x9e37_79b9_7f4a_7c15;

/// Seed for the second hash stream.
const SEED_B: u64 = 0xc2b2_ae3d_27d4_eb4f;

/// xxh3-style string hash: per-8-byte-lane multiply-fold under a seed,
/// finished with an avalanche mix. Not the reference xxh3 (the workspace
/// vendors no hash crate) but the same construction: seeded lane reads,
/// wide multiplies, xor-shift finalization.
fn hash_seeded(seed: u64, data: &[u8]) -> u64 {
    const PRIME_1: u64 = 0x9e37_79b1_85eb_ca87;
    const PRIME_2: u64 = 0xc2b2_ae3d_27d4_eb4f;
    const PRIME_3: u64 = 0x1656_67b1_9e37_79f9;
    let mut acc = seed ^ (data.len() as u64).wrapping_mul(PRIME_1);
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        acc = acc
            .wrapping_add(lane.wrapping_mul(PRIME_2))
            .rotate_left(31)
            .wrapping_mul(PRIME_1);
    }
    for &byte in chunks.remainder() {
        acc = (acc ^ u64::from(byte).wrapping_mul(PRIME_3)).rotate_left(11);
        acc = acc.wrapping_mul(PRIME_1);
    }
    // Avalanche: fold the high bits down so modular reduction sees them.
    acc ^= acc >> 33;
    acc = acc.wrapping_mul(PRIME_2);
    acc ^= acc >> 29;
    acc = acc.wrapping_mul(PRIME_3);
    acc ^ (acc >> 32)
}

/// A concurrent, insert-only bloom filter keyed by model name.
///
/// Shared between the registry (which inserts on every registration)
/// and the store (which inserts on directory scan and WAL replay), so a
/// negative answer covers both resident models and cold catalog
/// entries.
pub struct NameBloom {
    words: Vec<AtomicU64>,
}

impl NameBloom {
    /// An empty filter.
    #[must_use]
    pub fn new() -> Self {
        let words = (0..N_BITS / 64).map(|_| AtomicU64::new(0)).collect();
        Self { words }
    }

    /// Bit positions probed for `name`.
    fn probes(name: &str) -> [u64; N_HASHES as usize] {
        let hash_a = hash_seeded(SEED_A, name.as_bytes());
        let hash_b = hash_seeded(SEED_B, name.as_bytes()) | 1; // odd stride
        let mut probes = [0u64; N_HASHES as usize];
        for (i, probe) in probes.iter_mut().enumerate() {
            *probe = hash_a.wrapping_add((i as u64).wrapping_mul(hash_b)) % N_BITS;
        }
        probes
    }

    /// Records `name` as present. Never blocks; concurrent inserts and
    /// queries interleave freely.
    pub fn insert(&self, name: &str) {
        for bit in Self::probes(name) {
            let word = &self.words[(bit / 64) as usize];
            word.fetch_or(1 << (bit % 64), Ordering::Relaxed);
        }
    }

    /// `false` means `name` was definitely never inserted; `true` means
    /// it probably was (false positives possible, false negatives not).
    #[must_use]
    pub fn may_contain(&self, name: &str) -> bool {
        Self::probes(name).into_iter().all(|bit| {
            let word = self.words[(bit / 64) as usize].load(Ordering::Relaxed);
            word & (1 << (bit % 64)) != 0
        })
    }
}

impl Default for NameBloom {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserted_names_are_found() {
        let bloom = NameBloom::new();
        for i in 0..1000 {
            bloom.insert(&format!("model-{i}"));
        }
        for i in 0..1000 {
            assert!(bloom.may_contain(&format!("model-{i}")));
        }
    }

    #[test]
    fn absent_names_are_mostly_rejected() {
        let bloom = NameBloom::new();
        for i in 0..1000 {
            bloom.insert(&format!("model-{i}"));
        }
        // With 4 k names' worth of bits set out of 65 536, the false
        // positive rate should be far below 5 %; assert a loose bound so
        // the test is hash-stable, not flaky.
        let false_positives = (0..1000)
            .filter(|i| bloom.may_contain(&format!("absent-{i}")))
            .count();
        assert!(
            false_positives < 50,
            "false positive rate too high: {false_positives}/1000"
        );
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let bloom = NameBloom::new();
        assert!(!bloom.may_contain("anything"));
        assert!(!bloom.may_contain(""));
    }

    #[test]
    fn distinct_names_probe_distinct_bits() {
        // Double hashing must not collapse: sibling names may not share
        // all four probe positions.
        let a = NameBloom::probes("model@1");
        let b = NameBloom::probes("model@2");
        assert_ne!(a, b);
    }

    #[test]
    fn concurrent_insert_and_query_are_safe() {
        let bloom = std::sync::Arc::new(NameBloom::new());
        let writer = {
            let bloom = std::sync::Arc::clone(&bloom);
            std::thread::spawn(move || {
                for i in 0..10_000 {
                    bloom.insert(&format!("c-{i}"));
                }
            })
        };
        // Queries race the writer; inserted names must never regress to
        // negative once observed positive (insert-only monotonicity).
        for i in 0..10_000 {
            let name = format!("c-{i}");
            if bloom.may_contain(&name) {
                assert!(bloom.may_contain(&name));
            }
        }
        writer.join().expect("writer");
        for i in 0..10_000 {
            assert!(bloom.may_contain(&format!("c-{i}")));
        }
    }
}
