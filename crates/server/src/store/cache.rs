//! Resident-bytes accounting and LRU victim selection for mapped
//! artifacts.
//!
//! The store maps artifacts lazily and must keep the total mapped bytes
//! under the operator's `--resident-bytes` budget. This module is pure
//! bookkeeping — names and byte sizes in, eviction victims out — so the
//! policy is unit-testable without touching files or the registry. The
//! actual unmap is the registry's `remove_resident` (drop the last `Arc`
//! and the mmap goes with it); the cache only decides *who*.
//!
//! Pinning: only directory-managed artifacts are ever inserted here.
//! Models registered in memory (boltd `--model` flags, tests) have no
//! artifact to reload from, never enter the cache, and therefore can
//! never be evicted.

use std::collections::BTreeMap;

/// Byte ledger of resident (mapped) artifacts with an optional budget.
pub(crate) struct ResidentCache {
    /// `None` = unbounded (no `--resident-bytes` flag).
    budget: Option<u64>,
    /// name → mapped bytes.
    resident: BTreeMap<String, u64>,
}

impl ResidentCache {
    /// An empty ledger under the given budget.
    pub(crate) fn new(budget: Option<u64>) -> Self {
        Self {
            budget,
            resident: BTreeMap::new(),
        }
    }

    /// Records `name` as resident at `bytes` (replacing a stale size on
    /// re-map).
    pub(crate) fn insert(&mut self, name: &str, bytes: u64) {
        self.resident.insert(name.to_owned(), bytes);
    }

    /// Forgets `name`; returns the bytes it held.
    pub(crate) fn remove(&mut self, name: &str) -> Option<u64> {
        self.resident.remove(name)
    }

    /// Mapped bytes of one resident name.
    pub(crate) fn bytes_of(&self, name: &str) -> Option<u64> {
        self.resident.get(name).copied()
    }

    /// Total mapped bytes right now.
    pub(crate) fn total_bytes(&self) -> u64 {
        self.resident
            .values()
            .fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Resident (mapped) artifact count.
    pub(crate) fn len(&self) -> usize {
        self.resident.len()
    }

    /// The next eviction victim, or `None` when the ledger fits the
    /// budget (or nothing but `protect` is left to evict).
    ///
    /// The victim is the least-recently-used resident name per
    /// `recency` (a name with no recency reading counts as oldest).
    /// `protect` — the name that just loaded — is never chosen, so a
    /// single artifact larger than the whole budget still serves: the
    /// budget bounds the *steady state*, not one model.
    pub(crate) fn victim(
        &self,
        protect: &str,
        mut recency: impl FnMut(&str) -> Option<u64>,
    ) -> Option<String> {
        let budget = self.budget?;
        if self.total_bytes() <= budget {
            return None;
        }
        self.resident
            .keys()
            .filter(|name| name.as_str() != protect)
            .map(|name| (recency(name).unwrap_or(0), name))
            .min()
            .map(|(_, name)| name.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_budget_evicts_nothing() {
        let mut cache = ResidentCache::new(Some(100));
        cache.insert("a", 40);
        cache.insert("b", 60);
        assert_eq!(cache.total_bytes(), 100);
        assert_eq!(cache.victim("b", |_| Some(1)), None);
    }

    #[test]
    fn no_budget_never_evicts() {
        let mut cache = ResidentCache::new(None);
        for i in 0..100 {
            cache.insert(&format!("m{i}"), u64::MAX / 128);
        }
        assert_eq!(cache.victim("m0", |_| Some(1)), None);
    }

    #[test]
    fn lru_order_picks_the_coldest() {
        let mut cache = ResidentCache::new(Some(100));
        cache.insert("a", 50);
        cache.insert("b", 50);
        cache.insert("c", 50); // 150 > 100
        let recency = |name: &str| match name {
            "a" => Some(7),
            "b" => Some(3), // coldest
            "c" => Some(9),
            _ => None,
        };
        assert_eq!(cache.victim("c", recency).as_deref(), Some("b"));
        cache.remove("b");
        // Still over: 100 < ... no, a+c = 100 <= 100 → done.
        assert_eq!(cache.victim("c", recency), None);
    }

    #[test]
    fn protected_name_survives_even_when_oversized() {
        let mut cache = ResidentCache::new(Some(10));
        cache.insert("huge", 1000);
        // The only resident entry is the one that just loaded: nothing
        // to evict, the request must still be served.
        assert_eq!(cache.victim("huge", |_| Some(1)), None);
        cache.insert("other", 5);
        // Now the other entry goes, huge stays.
        assert_eq!(cache.victim("huge", |_| Some(1)).as_deref(), Some("other"));
    }

    #[test]
    fn unstamped_entries_count_as_oldest() {
        let mut cache = ResidentCache::new(Some(10));
        cache.insert("warm", 8);
        cache.insert("never-touched", 8);
        let recency = |name: &str| (name == "warm").then_some(99);
        assert_eq!(cache.victim("x", recency).as_deref(), Some("never-touched"));
    }

    #[test]
    fn totals_saturate() {
        let mut cache = ResidentCache::new(Some(100));
        cache.insert("a", u64::MAX);
        cache.insert("b", u64::MAX);
        assert_eq!(cache.total_bytes(), u64::MAX);
    }
}
