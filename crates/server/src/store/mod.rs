//! The fleet-scale model store: one front door for model lifecycle.
//!
//! [`ModelStore`] subsumes the bare [`ModelRegistry`] for serving
//! deployments: on top of the registry's in-memory routing it adds
//!
//! * a **model directory** (`--model-dir`) of `NAME@VERSION.blt`
//!   artifacts, scanned at startup and **mapped lazily** — an artifact
//!   costs nothing until the first request names it;
//! * an **LRU eviction** policy keeping total mapped bytes under a
//!   `--resident-bytes` budget ([`cache`]); mmap makes eviction a
//!   pointer drop, and in-flight requests keep their `Arc` engine alive
//!   so eviction never races inference;
//! * a **write-ahead registry log** (`registry.wal`, [`wal`]) making
//!   activate/retire/set-default durable: kill −9 the process and the
//!   restart replays to the exact pre-crash lifecycle state, down to
//!   which version of each name was active;
//! * an **insert-only bloom filter** over every name the process has
//!   ever seen ([`bloom`]), shared with the registry, so unknown-model
//!   traffic is rejected O(1) without a lock or a directory probe;
//! * **compaction**: the WAL rewrites to the minimal record set for the
//!   live state, and superseded artifact versions beyond a
//!   `--keep-versions N` retention are deleted from the directory.
//!
//! Models registered *in memory* (boltd `--model` flags, tests,
//! [`crate::ServerBuilder::register`]) route through the same store but
//! are **not** WAL-logged and never evicted — only directory-backed
//! lifecycle is durable, because only it can be reloaded after a crash.

pub mod bloom;
pub(crate) mod cache;
pub mod wal;

pub use bloom::NameBloom;
pub use wal::{Wal, WalOp};

use crate::engine::ArtifactEngine;
use crate::proto::{ModelInfo, MAX_MODEL_NAME_BYTES};
use crate::registry::{ModelHandle, ModelRegistry, RouteError};
use bolt_baselines::InferenceEngine;
use cache::ResidentCache;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Why a lifecycle operation was refused. Every variant names the model
/// it refers to; callers match instead of parsing strings.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// The name is empty or longer than the wire protocol can address.
    InvalidName(String),
    /// `register` on a name that is already serving (use `swap`).
    Duplicate(String),
    /// `swap`/`retire`/`set_default` on a name never seen.
    Unknown(String),
    /// The name exists but has been retired.
    Retired(String),
    /// `retire` on the current default model; move the default first.
    DefaultInUse(String),
    /// `activate` named a version with no artifact file in the
    /// directory.
    MissingArtifact {
        /// Model name.
        name: String,
        /// Version whose `NAME@VERSION.blt` file is absent.
        version: u32,
    },
    /// The operation requires a model directory but the store was built
    /// without one.
    NoDirectory,
    /// Durability failure: the WAL append/compaction or an artifact
    /// file operation failed. The in-memory state was *not* changed.
    Io(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidName(name) => write!(
                f,
                "model name must be 1..={MAX_MODEL_NAME_BYTES} bytes, got {name:?}"
            ),
            Self::Duplicate(name) => {
                write!(f, "model {name:?} is already registered (swap to replace)")
            }
            Self::Unknown(name) => write!(f, "no model registered as {name:?}"),
            Self::Retired(name) => write!(f, "model {name:?} has been retired"),
            Self::DefaultInUse(name) => write!(
                f,
                "model {name:?} is the default route; move the default before retiring it"
            ),
            Self::MissingArtifact { name, version } => {
                write!(
                    f,
                    "no artifact file for {name}@{version} in the model directory"
                )
            }
            Self::NoDirectory => write!(f, "store has no model directory"),
            Self::Io(e) => write!(f, "store i/o: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

/// What [`ModelStore::compact`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// WAL bytes before the rewrite.
    pub wal_bytes_before: u64,
    /// WAL bytes after.
    pub wal_bytes_after: u64,
    /// Superseded artifact files deleted by the retention policy.
    pub files_deleted: usize,
}

/// What [`ModelStore::rescan`] found that the catalog did not have.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RescanStats {
    /// Names that entered the catalog for the first time.
    pub names_added: u32,
    /// `NAME@VERSION.blt` files newly cataloged (across all names).
    pub versions_added: u32,
}

/// Eviction-pressure counters for the resident-bytes budget, plus the
/// current residency footprint. All counters are cumulative since the
/// store opened; `resident_*` fields are the instantaneous state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreMetrics {
    /// Artifacts unmapped by the LRU policy since startup.
    pub evictions: u64,
    /// Artifacts re-mapped after a prior eviction — the thrash signal: a
    /// rising rate means the resident-bytes budget is too tight for the
    /// working set.
    pub thrash_reloads: u64,
    /// Mapped artifact bytes right now.
    pub resident_bytes: u64,
    /// High-water mark of mapped artifact bytes since startup.
    pub resident_bytes_hwm: u64,
    /// Directory artifacts mapped right now.
    pub resident_models: u64,
}

/// One name's footprint in the model directory.
#[derive(Debug, Default)]
struct CatalogEntry {
    /// Version → artifact path, every version present on disk.
    versions: BTreeMap<u32, PathBuf>,
    /// The version requests are served from; `None` falls back to the
    /// highest on disk.
    active: Option<u32>,
    /// Retired names stay cataloged (their files may still exist) so
    /// lookups answer *retired*, not *unknown*, and revival can find
    /// the files again.
    retired: bool,
}

impl CatalogEntry {
    /// The version a request for this name would serve.
    fn serving_version(&self) -> Option<u32> {
        self.active
            .filter(|v| self.versions.contains_key(v))
            .or_else(|| self.versions.keys().next_back().copied())
    }
}

/// Directory-backed state, under one mutex: the catalog, the WAL
/// handle, and the resident-bytes ledger. The mutex is **not** on the
/// hot path — resolve only takes it on a registry miss (cold load).
struct StoreInner {
    dir: PathBuf,
    wal: Wal,
    catalog: BTreeMap<String, CatalogEntry>,
    cache: ResidentCache,
    keep_versions: usize,
    /// Activation recency, oldest → newest, one entry per live name:
    /// rebuilt from WAL replay order at open, maintained by live commits.
    /// [`ModelStore::warm`] pre-maps from the tail.
    recency: Vec<String>,
    /// Names evicted by the LRU policy and not re-mapped since; a load of
    /// one of these counts as a thrash reload.
    evicted: BTreeSet<String>,
    /// Cumulative eviction counters (see [`StoreMetrics`]).
    evictions: u64,
    thrash_reloads: u64,
    resident_bytes_hwm: u64,
}

/// The unified model-lifecycle API: registry routing plus the durable,
/// budgeted model directory. Cheap to clone; all clones share state.
///
/// Construction: [`ModelStore::detached`] for registry-only serving
/// (the pre-store behavior, still what `ServerBuilder` gives by
/// default), [`ModelStore::open`] to attach a model directory.
#[derive(Clone)]
pub struct ModelStore {
    registry: ModelRegistry,
    inner: Option<Arc<Mutex<StoreInner>>>,
}

impl ModelStore {
    /// A store with no model directory: every model lives in memory via
    /// [`register`](Self::register)/[`swap`](Self::swap), nothing is
    /// WAL-logged, nothing is evicted.
    #[must_use]
    pub fn detached(registry: ModelRegistry) -> Self {
        Self {
            registry,
            inner: None,
        }
    }

    /// Opens the model directory `dir` (created if absent): scans it
    /// for `NAME@VERSION.blt` artifacts, replays `registry.wal` over
    /// the scan (truncating a torn tail), and seeds the name bloom
    /// filter. No artifact is mapped yet — first request does that.
    ///
    /// `resident_budget` bounds total mapped bytes (`None` =
    /// unbounded); `keep_versions` is the per-name retention for
    /// [`compact`](Self::compact) (0 = keep every version).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory or the WAL cannot be
    /// read.
    pub fn open(
        registry: ModelRegistry,
        dir: &Path,
        resident_budget: Option<u64>,
        keep_versions: usize,
    ) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let catalog = scan_dir(dir)?;
        let (wal, ops) = Wal::open(&dir.join("registry.wal"))?;
        let mut inner = StoreInner {
            dir: dir.to_owned(),
            wal,
            catalog,
            cache: ResidentCache::new(resident_budget),
            keep_versions,
            recency: Vec::new(),
            evicted: BTreeSet::new(),
            evictions: 0,
            thrash_reloads: 0,
            resident_bytes_hwm: 0,
        };
        let store = Self {
            registry,
            inner: None,
        };
        // Every scanned name must pass the bloom fast path before the
        // WAL has its say (replay may retire some again).
        for name in inner.catalog.keys() {
            store.registry.bloom().insert(name);
        }
        for op in ops {
            store.apply(&mut inner, &op);
        }
        Ok(Self {
            inner: Some(Arc::new(Mutex::new(inner))),
            ..store
        })
    }

    /// The routing registry behind this store. Stats, hot-swap of
    /// in-memory engines, and the serving hot path live here.
    #[must_use]
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Applies one (already validated / already durable) op to the
    /// catalog and the registry. Replay and live mutation share this so
    /// a replayed log reconstructs the exact same state the live ops
    /// produced.
    fn apply(&self, inner: &mut StoreInner, op: &WalOp) {
        match op {
            WalOp::Register { name, version } => {
                let entry = inner.catalog.entry(name.clone()).or_default();
                let path = artifact_path(&inner.dir, name, *version);
                if path.is_file() {
                    entry.versions.insert(*version, path);
                    entry.active = Some(*version);
                } else if entry.versions.contains_key(version) {
                    entry.active = Some(*version);
                } else {
                    // The activated version's file is gone (deleted
                    // between append and crash); serve the newest that
                    // survives rather than nothing.
                    entry.active = entry.versions.keys().next_back().copied();
                }
                entry.retired = false;
                self.registry.unretire(name);
                self.registry.bloom().insert(name);
                // Invalidate any resident mapping: the next request
                // loads the activated version.
                if self.registry.remove_resident(name) {
                    inner.cache.remove(name);
                }
                // Most recent activation moves to the recency tail, so a
                // replayed log reconstructs the same warm-up order the
                // live ops produced.
                inner.recency.retain(|n| n != name);
                inner.recency.push(name.clone());
            }
            WalOp::Retire { name } => {
                if let Some(entry) = inner.catalog.get_mut(name) {
                    entry.retired = true;
                }
                inner.cache.remove(name);
                inner.recency.retain(|n| n != name);
                self.registry.retire_unchecked(name);
            }
            WalOp::SetDefault { name } => {
                self.registry.set_default_unchecked(name);
            }
        }
    }

    /// Validates, logs, and applies one lifecycle op: the write-ahead
    /// discipline. The op mutates in-memory state only after the WAL
    /// append has fsync'd, so every applied op is durable and every
    /// durable op was valid when logged.
    fn commit(&self, inner: &mut StoreInner, op: WalOp) -> Result<(), StoreError> {
        inner.wal.append(&op)?;
        self.apply(inner, &op);
        Ok(())
    }

    /// Activates `name@version` from the model directory: the version
    /// becomes what requests for `name` serve, durably. A new name
    /// becomes registered (and revives a retired one); an existing name
    /// is hot-swapped — in-flight requests finish on the old mapping,
    /// the next request maps the new version lazily.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoDirectory`] without a model directory;
    /// [`StoreError::MissingArtifact`] if `NAME@VERSION.blt` is not in
    /// it; [`StoreError::Duplicate`] if `name@version` is already the
    /// active version; [`StoreError::InvalidName`] /
    /// [`StoreError::Io`] as usual.
    pub fn activate(&self, name: &str, version: u32) -> Result<(), StoreError> {
        if name.is_empty() || name.len() > MAX_MODEL_NAME_BYTES {
            return Err(StoreError::InvalidName(name.to_owned()));
        }
        let inner = self.inner.as_ref().ok_or(StoreError::NoDirectory)?;
        let mut inner = inner.lock();
        if !artifact_path(&inner.dir, name, version).is_file() {
            return Err(StoreError::MissingArtifact {
                name: name.to_owned(),
                version,
            });
        }
        if let Some(entry) = inner.catalog.get(name) {
            if !entry.retired && entry.active == Some(version) {
                return Err(StoreError::Duplicate(format!("{name}@{version}")));
            }
        }
        self.commit(
            &mut inner,
            WalOp::Register {
                name: name.to_owned(),
                version,
            },
        )
    }

    /// Retires a model, durably when it is directory-backed: requests
    /// get a structured *retired* error, the mapping (if any) drops,
    /// statistics stay conserved.
    ///
    /// # Errors
    ///
    /// [`StoreError::DefaultInUse`] for the current default,
    /// [`StoreError::Retired`] if already retired,
    /// [`StoreError::Unknown`] if never seen. In-memory models are
    /// retired through the registry with the same checks.
    pub fn retire(&self, name: &str) -> Result<(), StoreError> {
        if let Some(inner) = &self.inner {
            let mut inner = inner.lock();
            if inner.catalog.contains_key(name) {
                if self.registry.default_model().as_deref() == Some(name) {
                    return Err(StoreError::DefaultInUse(name.to_owned()));
                }
                let entry = inner.catalog.get(name).expect("checked");
                if entry.retired {
                    return Err(StoreError::Retired(name.to_owned()));
                }
                return self.commit(
                    &mut inner,
                    WalOp::Retire {
                        name: name.to_owned(),
                    },
                );
            }
        }
        self.registry.retire(name)
    }

    /// Makes `name` the default route, durably when directory-backed.
    /// The model need not be resident — a cold catalog name becomes
    /// default and is mapped on the first legacy frame.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unknown`] / [`StoreError::Retired`] if the name
    /// cannot serve.
    pub fn set_default(&self, name: &str) -> Result<(), StoreError> {
        if let Some(inner) = &self.inner {
            let mut inner = inner.lock();
            if let Some(entry) = inner.catalog.get(name) {
                if entry.retired {
                    return Err(StoreError::Retired(name.to_owned()));
                }
                if entry.serving_version().is_none() {
                    return Err(StoreError::Unknown(name.to_owned()));
                }
                return self.commit(
                    &mut inner,
                    WalOp::SetDefault {
                        name: name.to_owned(),
                    },
                );
            }
        }
        self.registry.set_default(name)
    }

    /// Registers an in-memory engine under a new name (not WAL-logged,
    /// never evicted — there is no artifact to reload it from). See
    /// [`ModelRegistry::register`] for the semantics.
    ///
    /// # Errors
    ///
    /// [`StoreError::Duplicate`] if the name is serving *or* cataloged
    /// in the model directory; registry errors as usual.
    pub fn register(
        &self,
        name: impl Into<String>,
        engine: Arc<dyn InferenceEngine>,
    ) -> Result<(), StoreError> {
        let name = name.into();
        if let Some(inner) = &self.inner {
            let inner = inner.lock();
            if let Some(entry) = inner.catalog.get(&name) {
                if !entry.retired {
                    return Err(StoreError::Duplicate(name));
                }
            }
        }
        self.registry.register(name, engine)
    }

    /// Hot-swaps the engine behind an in-memory name. See
    /// [`ModelRegistry::swap`]; directory-backed names should use
    /// [`activate`](Self::activate) so the change is durable.
    ///
    /// # Errors
    ///
    /// Registry errors ([`StoreError::Unknown`] / [`StoreError::Retired`]).
    pub fn swap(&self, name: &str, engine: Arc<dyn InferenceEngine>) -> Result<(), StoreError> {
        self.registry.swap(name, engine)
    }

    /// Resolves a model for serving, mapping its artifact on first use.
    ///
    /// Hot path: a resident name (or a bloom-rejected unknown) never
    /// touches the store lock — it is exactly
    /// [`ModelRegistry::resolve`]. Only a registry miss on a cataloged
    /// name pays for the lock and the mmap, and eviction then keeps the
    /// resident set under budget.
    ///
    /// # Errors
    ///
    /// The [`RouteError`] the protocol maps to structured error frames.
    pub fn resolve(&self, name: Option<&str>) -> Result<Arc<ModelHandle>, RouteError> {
        let miss = match self.registry.resolve(name) {
            Ok(handle) => return Ok(handle),
            Err(RouteError::UnknownModel(missing)) if self.inner.is_some() => missing,
            Err(e) => return Err(e),
        };
        let inner = self.inner.as_ref().expect("checked above");
        let mut inner = inner.lock();
        // Another thread may have loaded it while we waited.
        if let Ok(handle) = self.registry.resolve(name) {
            return Ok(handle);
        }
        self.load_locked(&mut inner, &miss)?;
        self.registry.resolve(name)
    }

    /// Maps the serving version of `miss` into the registry and evicts
    /// over-budget residents. Caller holds the store lock.
    fn load_locked(&self, inner: &mut StoreInner, miss: &str) -> Result<(), RouteError> {
        let entry = inner
            .catalog
            .get(miss)
            .ok_or_else(|| RouteError::UnknownModel(miss.to_owned()))?;
        if entry.retired {
            return Err(RouteError::RetiredModel(miss.to_owned()));
        }
        let version = entry
            .serving_version()
            .ok_or_else(|| RouteError::UnknownModel(miss.to_owned()))?;
        let path = entry
            .versions
            .get(&version)
            .expect("serving version is on disk");
        let engine = ArtifactEngine::open(path)
            .map_err(|e| RouteError::LoadFailed(format!("{miss}@{version}: {e}")))?;
        let bytes = engine.model().artifact().bytes().len() as u64;
        self.registry.insert_resident(miss, Arc::new(engine));
        if inner.evicted.remove(miss) {
            inner.thrash_reloads += 1;
        }
        inner.cache.insert(miss, bytes);
        inner.resident_bytes_hwm = inner.resident_bytes_hwm.max(inner.cache.total_bytes());
        while let Some(victim) = inner
            .cache
            .victim(miss, |name| self.registry.last_used(name))
        {
            self.registry.remove_resident(&victim);
            inner.cache.remove(&victim);
            inner.evictions += 1;
            inner.evicted.insert(victim);
        }
        Ok(())
    }

    /// Every model this store can serve, sorted by name: resident
    /// in-memory engines and resident *and cold* directory artifacts,
    /// with version, residency, and mapped/on-disk byte size — the
    /// extended `ListModels` payload.
    ///
    /// The rows are a *point-in-time snapshot*: the whole listing —
    /// registry residency, catalog versions, and cache byte sizes — is
    /// gathered under one store-lock acquisition. Residency only changes
    /// under that same lock ([`load_locked`](Self::load_locked) and WAL
    /// apply), so no row can reflect an eviction that another row
    /// predates.
    #[must_use]
    pub fn list(&self) -> Vec<ModelInfo> {
        let Some(inner) = &self.inner else {
            return self.registry.list();
        };
        let inner = inner.lock();
        let mut infos = self.registry.list();
        let default = self.registry.default_model();
        for (name, entry) in &inner.catalog {
            if entry.retired {
                continue;
            }
            let Some(version) = entry.serving_version() else {
                continue;
            };
            if let Some(info) = infos.iter_mut().find(|info| &info.name == name) {
                info.version = version;
                info.bytes = inner.cache.bytes_of(name).unwrap_or(0);
            } else {
                let path = entry.versions.get(&version).expect("on disk");
                infos.push(ModelInfo {
                    name: name.clone(),
                    engine: "BOLT-BLT".to_owned(),
                    requests: self.registry.stats(name).map_or(0, |stats| stats.requests),
                    is_default: default.as_deref() == Some(name.as_str()),
                    version,
                    resident: false,
                    bytes: std::fs::metadata(path).map_or(0, |meta| meta.len()),
                });
            }
        }
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    /// Total bytes of mapped directory artifacts right now.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.lock().cache.total_bytes())
    }

    /// Eviction-pressure counters and the current residency footprint.
    /// A detached store reports all zeros.
    #[must_use]
    pub fn metrics(&self) -> StoreMetrics {
        let Some(inner) = &self.inner else {
            return StoreMetrics::default();
        };
        let inner = inner.lock();
        StoreMetrics {
            evictions: inner.evictions,
            thrash_reloads: inner.thrash_reloads,
            resident_bytes: inner.cache.total_bytes(),
            resident_bytes_hwm: inner.resident_bytes_hwm,
            resident_models: inner.cache.len() as u64,
        }
    }

    /// Re-scans the model directory and merges what it finds into the
    /// live catalog: new `NAME@VERSION.blt` files become servable without
    /// a restart (mapped lazily, like the startup scan). Existing catalog
    /// state — active versions, retirement, residency — is untouched, and
    /// **nothing is journaled**: only explicit [`activate`](Self::activate)
    /// calls enter the WAL, so a half-written file that a later load
    /// rejects leaves no durable trace.
    ///
    /// A new name with no activation serves its highest version on disk;
    /// a new *version* of an explicitly activated name is cataloged but
    /// not served until activated.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoDirectory`] without a model directory;
    /// [`StoreError::Io`] if the directory cannot be read.
    pub fn rescan(&self) -> Result<RescanStats, StoreError> {
        let inner = self.inner.as_ref().ok_or(StoreError::NoDirectory)?;
        let mut inner = inner.lock();
        let scanned = scan_dir(&inner.dir)?;
        let mut stats = RescanStats::default();
        for (name, found) in scanned {
            let is_new = !inner.catalog.contains_key(&name);
            let entry = inner.catalog.entry(name.clone()).or_default();
            for (version, path) in found.versions {
                if entry.versions.insert(version, path).is_none() {
                    stats.versions_added += 1;
                }
            }
            if is_new {
                stats.names_added += 1;
                self.registry.bloom().insert(&name);
            }
        }
        Ok(stats)
    }

    /// Pre-maps the top-`k` most recently activated models (WAL-recovered
    /// recency, padded with cataloged names when fewer than `k` were ever
    /// journaled) so the first requests after a restart hit warm mappings
    /// instead of paying the mmap + validate cost inline. Loads run
    /// coldest-first so the LRU budget, if tighter than `k` artifacts,
    /// keeps the *most* recent ones resident.
    ///
    /// Returns the names actually mapped; artifacts that fail to load
    /// (half-written drops, validation failures) are skipped, not errors.
    /// A detached store warms nothing.
    pub fn warm(&self, k: usize) -> Vec<String> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let candidates: Vec<String> = {
            let inner = inner.lock();
            let mut names: Vec<String> = inner.recency.iter().rev().cloned().collect();
            for (name, entry) in &inner.catalog {
                if !entry.retired
                    && entry.serving_version().is_some()
                    && !names.iter().any(|n| n == name)
                {
                    names.push(name.clone());
                }
            }
            names.retain(|name| {
                inner
                    .catalog
                    .get(name)
                    .is_some_and(|e| !e.retired && e.serving_version().is_some())
            });
            names.truncate(k);
            names
        };
        let mut warmed = Vec::new();
        // Reverse: warm the coldest candidate first, the most recent
        // last, so its resolve stamp is the newest when eviction bites.
        for name in candidates.iter().rev() {
            if self.resolve(Some(name)).is_ok() {
                warmed.push(name.clone());
            }
        }
        warmed
    }

    /// Compacts the WAL to the minimal record set for the live state
    /// and — when a `keep_versions` retention is configured — deletes
    /// superseded artifact versions beyond the newest N per name (the
    /// serving version is always kept).
    ///
    /// # Errors
    ///
    /// [`StoreError::NoDirectory`] without a directory;
    /// [`StoreError::Io`] if the rewrite fails (the original log stays
    /// intact in that case).
    pub fn compact(&self) -> Result<CompactStats, StoreError> {
        let inner = self.inner.as_ref().ok_or(StoreError::NoDirectory)?;
        let mut inner = inner.lock();
        let mut stats = CompactStats {
            wal_bytes_before: inner.wal.len()?,
            ..CompactStats::default()
        };
        // Retention first, so the snapshot never references a file this
        // same call deletes.
        if inner.keep_versions > 0 {
            let keep = inner.keep_versions;
            let mut doomed: Vec<(String, u32, PathBuf)> = Vec::new();
            for (name, entry) in &inner.catalog {
                let serving = entry.serving_version();
                let mut kept = 0usize;
                for (&version, path) in entry.versions.iter().rev() {
                    if Some(version) == serving || kept < keep {
                        kept += 1;
                        continue;
                    }
                    doomed.push((name.clone(), version, path.clone()));
                }
            }
            for (name, version, path) in doomed {
                std::fs::remove_file(&path)?;
                stats.files_deleted += 1;
                if let Some(entry) = inner.catalog.get_mut(&name) {
                    entry.versions.remove(&version);
                }
            }
        }
        let mut ops = Vec::new();
        for (name, entry) in &inner.catalog {
            if entry.retired {
                ops.push(WalOp::Retire { name: name.clone() });
            } else if let Some(version) = entry.serving_version() {
                ops.push(WalOp::Register {
                    name: name.clone(),
                    version,
                });
            }
        }
        if let Some(default) = self.registry.default_model() {
            if inner.catalog.contains_key(&default) {
                ops.push(WalOp::SetDefault { name: default });
            }
        }
        inner.wal.compact(&ops)?;
        stats.wal_bytes_after = inner.wal.len()?;
        Ok(stats)
    }

    /// The model directory, if one is attached.
    #[must_use]
    pub fn model_dir(&self) -> Option<PathBuf> {
        self.inner.as_ref().map(|inner| inner.lock().dir.clone())
    }
}

impl std::fmt::Debug for ModelStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelStore")
            .field("registry", &self.registry)
            .field("model_dir", &self.model_dir())
            .finish()
    }
}

/// `DIR/NAME@VERSION.blt`.
fn artifact_path(dir: &Path, name: &str, version: u32) -> PathBuf {
    dir.join(format!("{name}@{version}.blt"))
}

/// Scans `dir` for `NAME@VERSION.blt` artifacts. Unparseable file names
/// (including `registry.wal` and temp files) are ignored, not errors —
/// operators drop files in and the store picks up what it understands.
fn scan_dir(dir: &Path) -> std::io::Result<BTreeMap<String, CatalogEntry>> {
    let mut catalog: BTreeMap<String, CatalogEntry> = BTreeMap::new();
    for dirent in std::fs::read_dir(dir)? {
        let dirent = dirent?;
        let file_name = dirent.file_name();
        let Some(file_name) = file_name.to_str() else {
            continue;
        };
        let Some(stem) = file_name.strip_suffix(".blt") else {
            continue;
        };
        let Some((name, version)) = stem.rsplit_once('@') else {
            continue;
        };
        let Ok(version) = version.parse::<u32>() else {
            continue;
        };
        if name.is_empty() || name.len() > MAX_MODEL_NAME_BYTES {
            continue;
        }
        catalog
            .entry(name.to_owned())
            .or_default()
            .versions
            .insert(version, dirent.path());
    }
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_baselines::ScikitLikeForest;
    use bolt_forest::{Dataset, ForestConfig, RandomForest};

    fn forest() -> RandomForest {
        let rows: Vec<Vec<f32>> = (0..40).map(|i| vec![(i % 4) as f32]).collect();
        let labels: Vec<u32> = (0..40).map(|i| u32::from(i % 4 > 1)).collect();
        let data = Dataset::from_rows(rows, labels, 2).expect("valid");
        RandomForest::train(&data, &ForestConfig::new(3).with_seed(5))
    }

    #[test]
    fn detached_store_is_a_registry_passthrough() {
        let store = ModelStore::detached(ModelRegistry::new());
        store
            .register("m", Arc::new(ScikitLikeForest::from_forest(&forest())))
            .expect("registers");
        assert_eq!(
            store
                .register("m", Arc::new(ScikitLikeForest::from_forest(&forest())))
                .expect_err("duplicate"),
            StoreError::Duplicate("m".into())
        );
        store.resolve(Some("m")).expect("resolves");
        store.resolve(None).expect("first registration is default");
        assert_eq!(
            store.resolve(Some("ghost")).expect_err("unknown"),
            RouteError::UnknownModel("ghost".into())
        );
        assert_eq!(
            store.activate("m", 1).expect_err("no directory"),
            StoreError::NoDirectory
        );
        assert_eq!(
            store.compact().expect_err("no directory"),
            StoreError::NoDirectory
        );
        let listed = store.list();
        assert_eq!(listed.len(), 1);
        assert!(listed[0].resident);
    }

    #[test]
    fn scan_parses_only_well_formed_artifact_names() {
        let dir = std::env::temp_dir().join(format!("bolt-store-scan-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        for file in [
            "fraud@1.blt",
            "fraud@2.blt",
            "spam@7.blt",
            "registry.wal",
            "notes.txt",
            "noversion.blt",
            "bad@version.blt",
            "@3.blt",
            "tricky@name@5.blt", // name may itself contain '@'
        ] {
            std::fs::write(dir.join(file), b"x").expect("touch");
        }
        let catalog = scan_dir(&dir).expect("scan");
        assert_eq!(
            catalog.keys().map(String::as_str).collect::<Vec<_>>(),
            ["fraud", "spam", "tricky@name"]
        );
        assert_eq!(
            catalog["fraud"]
                .versions
                .keys()
                .copied()
                .collect::<Vec<_>>(),
            [1, 2]
        );
        assert_eq!(catalog["fraud"].serving_version(), Some(2), "highest wins");
        assert_eq!(catalog["tricky@name"].serving_version(), Some(5));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
