//! Write-ahead registry log: crash-durable model lifecycle.
//!
//! Registry mutations (register a version, retire a name, move the
//! default) die with the process unless they are logged first. The WAL
//! makes them durable with the classic discipline: validate the op
//! against current state, **append + fsync**, then apply in memory. On
//! restart, replaying the log over the directory scan reconstructs the
//! exact pre-crash registry — including which version of each model was
//! active.
//!
//! ## Record format
//!
//! ```text
//! ┌──────────┬────────────┬─────────────────────────────┐
//! │ len: u32 │ crc32: u32 │ payload (len bytes)         │
//! └──────────┴────────────┴─────────────────────────────┘
//! payload = op: u8, then per-op body (names are u8-length-prefixed):
//!   1 Register   { name_len: u8, name, version: u32 }
//!   2 Retire     { name_len: u8, name }
//!   3 SetDefault { name_len: u8, name }
//! ```
//!
//! All integers little-endian. The CRC is `bolt_artifact`'s table-driven
//! IEEE crc32 over the payload, so a torn or bit-flipped tail is
//! detected; replay truncates the file at the first bad record (a crash
//! mid-append loses only the op that never finished committing, which
//! `append` correctly reported as failed).
//!
//! ## Compaction
//!
//! The log grows with every lifecycle op; most records are superseded
//! (re-registrations of the same name, moved defaults). [`Wal::compact`]
//! rewrites the log as the minimal record sequence for the live state —
//! one `Register` per active name, one `Retire` per retired name that
//! still has artifact versions on disk, one final `SetDefault` — using
//! the same write-temp-then-rename discipline as artifact writes.

use bolt_artifact::format::crc32;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Byte budget for one record payload; a name is ≤ 255 bytes and every
/// body is a few more, so anything larger is corruption.
const MAX_PAYLOAD: u32 = 512;

/// One durable lifecycle operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalOp {
    /// `name` now serves artifact `version` (registration or swap; the
    /// newest record for a name wins).
    Register {
        /// Model name.
        name: String,
        /// Artifact version made active.
        version: u32,
    },
    /// `name` stopped serving.
    Retire {
        /// Model name.
        name: String,
    },
    /// `name` became the default route.
    SetDefault {
        /// Model name.
        name: String,
    },
}

impl WalOp {
    /// Serializes the op payload (everything after len+crc).
    fn encode(&self) -> Vec<u8> {
        fn put_name(buf: &mut Vec<u8>, name: &str) {
            debug_assert!(name.len() <= u8::MAX as usize);
            buf.push(name.len() as u8);
            buf.extend_from_slice(name.as_bytes());
        }
        let mut buf = Vec::with_capacity(2 + 255 + 4);
        match self {
            Self::Register { name, version } => {
                buf.push(1);
                put_name(&mut buf, name);
                buf.extend_from_slice(&version.to_le_bytes());
            }
            Self::Retire { name } => {
                buf.push(2);
                put_name(&mut buf, name);
            }
            Self::SetDefault { name } => {
                buf.push(3);
                put_name(&mut buf, name);
            }
        }
        buf
    }

    /// Parses one payload; `None` on any structural violation (replay
    /// treats that the same as a bad CRC: stop and truncate).
    fn decode(payload: &[u8]) -> Option<Self> {
        fn get_name(body: &[u8]) -> Option<(String, &[u8])> {
            let (&len, rest) = body.split_first()?;
            if rest.len() < len as usize {
                return None;
            }
            let (name, rest) = rest.split_at(len as usize);
            let name = std::str::from_utf8(name).ok()?;
            (!name.is_empty()).then(|| (name.to_owned(), rest))
        }
        let (&op, body) = payload.split_first()?;
        match op {
            1 => {
                let (name, rest) = get_name(body)?;
                let version = u32::from_le_bytes(rest.try_into().ok()?);
                Some(Self::Register { name, version })
            }
            2 => {
                let (name, rest) = get_name(body)?;
                rest.is_empty().then_some(Self::Retire { name })
            }
            3 => {
                let (name, rest) = get_name(body)?;
                rest.is_empty().then_some(Self::SetDefault { name })
            }
            _ => None,
        }
    }
}

/// An open, append-only registry log.
pub struct Wal {
    file: File,
    path: PathBuf,
}

impl Wal {
    /// Opens (creating if absent) the log at `path` and replays it.
    ///
    /// Returns the handle positioned for appending plus every valid
    /// record in order. A torn or corrupt tail is **truncated away** so
    /// subsequent appends never land after garbage.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be opened, read, or
    /// truncated.
    pub fn open(path: &Path) -> std::io::Result<(Self, Vec<WalOp>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;
        let (ops, valid_len) = replay(&bytes);
        if (valid_len as u64) < file.metadata()?.len() {
            file.set_len(valid_len as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((
            Self {
                file,
                path: path.to_owned(),
            },
            ops,
        ))
    }

    /// Appends one record and fsyncs it. The op is durable — it will
    /// survive a crash — exactly when this returns `Ok`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error from the write or the fsync; on error the
    /// record must be considered not written (replay's CRC check
    /// discards a torn partial append).
    pub fn append(&mut self, op: &WalOp) -> std::io::Result<()> {
        let payload = op.encode();
        let mut record = Vec::with_capacity(8 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        self.file.write_all(&record)?;
        self.file.sync_data()
    }

    /// Rewrites the log to exactly `ops` (the minimal sequence for the
    /// live state), atomically: write a temp file, fsync, rename over
    /// the log, then reopen the handle.
    ///
    /// # Errors
    ///
    /// Returns the I/O error on failure; the original log is intact
    /// unless the rename itself succeeded.
    pub fn compact(&mut self, ops: &[WalOp]) -> std::io::Result<()> {
        let tmp = self.path.with_extension("wal.tmp");
        let mut out = File::create(&tmp)?;
        for op in ops {
            let payload = op.encode();
            out.write_all(&(payload.len() as u32).to_le_bytes())?;
            out.write_all(&crc32(&payload).to_le_bytes())?;
            out.write_all(&payload)?;
        }
        out.sync_all()?;
        drop(out);
        std::fs::rename(&tmp, &self.path)?;
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = file;
        Ok(())
    }

    /// Current log size in bytes.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the metadata read fails.
    pub fn len(&self) -> std::io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    /// Whether the log holds no records.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the metadata read fails.
    pub fn is_empty(&self) -> std::io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// Walks `bytes` record by record, returning every valid op and the
/// byte offset where validity ends (torn-tail truncation point).
fn replay(bytes: &[u8]) -> (Vec<WalOp>, usize) {
    let mut ops = Vec::new();
    let mut offset = 0usize;
    while bytes.len() - offset >= 8 {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_PAYLOAD {
            break;
        }
        let end = offset + 8 + len as usize;
        if end > bytes.len() {
            break; // torn tail: record promised more bytes than exist
        }
        let payload = &bytes[offset + 8..end];
        if crc32(payload) != crc {
            break;
        }
        let Some(op) = WalOp::decode(payload) else {
            break;
        };
        ops.push(op);
        offset = end;
    }
    (ops, offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bolt-wal-{tag}-{}.wal", std::process::id()))
    }

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::Register {
                name: "fraud".into(),
                version: 1,
            },
            WalOp::Register {
                name: "spam".into(),
                version: 3,
            },
            WalOp::SetDefault {
                name: "fraud".into(),
            },
            WalOp::Retire {
                name: "spam".into(),
            },
            WalOp::Register {
                name: "spam".into(),
                version: 4,
            },
        ]
    }

    #[test]
    fn append_then_replay_round_trips() {
        let path = temp_wal("roundtrip");
        let _ = std::fs::remove_file(&path);
        let (mut wal, replayed) = Wal::open(&path).expect("open");
        assert!(replayed.is_empty());
        for op in sample_ops() {
            wal.append(&op).expect("append");
        }
        drop(wal); // no clean shutdown step exists: reopen IS crash recovery
        let (_, replayed) = Wal::open(&path).expect("reopen");
        assert_eq!(replayed, sample_ops());
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = temp_wal("torn");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path).expect("open");
        for op in sample_ops() {
            wal.append(&op).expect("append");
        }
        drop(wal);
        // Simulate a crash mid-append: chop bytes off the last record.
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 3]).expect("truncate");
        let (wal, replayed) = Wal::open(&path).expect("reopen");
        assert_eq!(replayed, sample_ops()[..4]);
        // The torn record is physically gone: the file ends at the last
        // valid record, so future appends are replayable.
        assert_eq!(
            wal.len().expect("len") as usize,
            bytes.len() - record_len(&sample_ops()[4])
        );
        std::fs::remove_file(&path).expect("cleanup");
    }

    fn record_len(op: &WalOp) -> usize {
        8 + op.encode().len()
    }

    #[test]
    fn bitflip_stops_replay_at_the_flip() {
        let path = temp_wal("bitflip");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path).expect("open");
        for op in sample_ops() {
            wal.append(&op).expect("append");
        }
        drop(wal);
        let mut bytes = std::fs::read(&path).expect("read");
        // Flip a payload bit in the third record.
        let offset: usize = sample_ops()[..2].iter().map(record_len).sum();
        bytes[offset + 9] ^= 0x40;
        std::fs::write(&path, &bytes).expect("write");
        let (_, replayed) = Wal::open(&path).expect("reopen");
        assert_eq!(replayed, sample_ops()[..2]);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn append_after_torn_tail_recovery_is_clean() {
        let path = temp_wal("append-after");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path).expect("open");
        wal.append(&sample_ops()[0]).expect("append");
        wal.append(&sample_ops()[1]).expect("append");
        drop(wal);
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 1]).expect("tear");
        let (mut wal, replayed) = Wal::open(&path).expect("reopen");
        assert_eq!(replayed.len(), 1);
        wal.append(&sample_ops()[2]).expect("append after tear");
        drop(wal);
        let (_, replayed) = Wal::open(&path).expect("final open");
        assert_eq!(
            replayed,
            vec![sample_ops()[0].clone(), sample_ops()[2].clone()]
        );
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn compaction_preserves_replay_state_and_shrinks() {
        let path = temp_wal("compact");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path).expect("open");
        // Many superseded records for one name.
        for version in 1..=50 {
            wal.append(&WalOp::Register {
                name: "hot".into(),
                version,
            })
            .expect("append");
        }
        let before = wal.len().expect("len");
        let minimal = vec![WalOp::Register {
            name: "hot".into(),
            version: 50,
        }];
        wal.compact(&minimal).expect("compact");
        let after = wal.len().expect("len");
        assert!(after < before / 10, "{after} vs {before}");
        // Appends after compaction land after the snapshot records.
        wal.append(&WalOp::SetDefault { name: "hot".into() })
            .expect("append");
        drop(wal);
        let (_, replayed) = Wal::open(&path).expect("reopen");
        assert_eq!(
            replayed,
            vec![
                WalOp::Register {
                    name: "hot".into(),
                    version: 50
                },
                WalOp::SetDefault { name: "hot".into() },
            ]
        );
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn hostile_length_field_does_not_allocate_or_loop() {
        let path = temp_wal("hostile");
        let _ = std::fs::remove_file(&path);
        // A record claiming a 4 GiB payload.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(b"garbage");
        std::fs::write(&path, &bytes).expect("write");
        let (wal, replayed) = Wal::open(&path).expect("open");
        assert!(replayed.is_empty());
        assert_eq!(wal.len().expect("len"), 0); // truncated to nothing
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn decode_rejects_structural_garbage() {
        assert_eq!(WalOp::decode(&[]), None);
        assert_eq!(WalOp::decode(&[99, 1, b'x']), None); // unknown op
        assert_eq!(WalOp::decode(&[1, 5, b'a']), None); // short name
        assert_eq!(WalOp::decode(&[1, 0]), None); // empty name
        assert_eq!(WalOp::decode(&[2, 1, b'a', 0xFF]), None); // trailing junk
        assert_eq!(WalOp::decode(&[1, 1, b'a', 1, 0, 0]), None); // short version
                                                                 // Valid ones for contrast.
        assert_eq!(
            WalOp::decode(&[1, 1, b'a', 7, 0, 0, 0]),
            Some(WalOp::Register {
                name: "a".into(),
                version: 7
            })
        );
        assert_eq!(
            WalOp::decode(&[3, 1, b'a']),
            Some(WalOp::SetDefault { name: "a".into() })
        );
    }
}
