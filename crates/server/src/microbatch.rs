//! Adaptive micro-batching: coalesce concurrent *independent* single-sample
//! requests into one entry-major `classify_batch` call.
//!
//! The batch kernel gives 2.2–3× single-thread throughput at batch 64–512,
//! but only clients that already hold many samples can use `ClassifyBatch`
//! frames. Under concurrent single-sample traffic the server itself holds
//! the batch: requests admitted by the event loop queue here and are
//! flushed to the worker pool when either threshold trips —
//!
//! * **size**: `flush_samples` samples are pending, or
//! * **time**: `flush_wait` has elapsed since the oldest pending sample
//!   was enqueued (the latency budget a lone request pays waiting for
//!   company).
//!
//! A flush groups pending samples by *resolved model handle* — requests
//! routed to different models (or to the same name across a hot-swap)
//! never share a kernel call, so every response is produced by exactly the
//! engine that request resolved, bit-identical to a per-request
//! `classify`. Admission is bounded: `queue_depth` caps samples that are
//! queued or in flight, and the event loop answers everything beyond it
//! with a structured overload error instead of queueing without bound.
//!
//! This type is pure policy — no I/O, no threads — so the flush edge cases
//! (timer firing with an empty queue, size trip exactly at the threshold,
//! admission exhaustion and release) are unit-tested deterministically
//! below.

use crate::registry::ModelHandle;
use bytes::Bytes;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for the event loop's micro-batcher (the `boltd`
/// `--mb-*` flags).
#[derive(Clone, Debug)]
pub struct MicroBatchConfig {
    /// Coalesce at all? `false` dispatches every request to the worker
    /// pool immediately (the event loop stays non-blocking either way).
    pub enabled: bool,
    /// Flush when this many samples are pending.
    pub flush_samples: usize,
    /// Flush when the oldest pending sample has waited this long.
    pub flush_wait: Duration,
    /// Most samples admitted at once (pending + in flight); everything
    /// beyond answers a structured overload error.
    pub queue_depth: usize,
}

impl Default for MicroBatchConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            // The batch kernel's measured sweet spot starts around 64.
            flush_samples: 64,
            // Sub-millisecond latency budget; the poller's millisecond
            // timer granularity rounds the effective wait up to ~1 ms
            // under trickle traffic.
            flush_wait: Duration::from_micros(200),
            queue_depth: 8192,
        }
    }
}

/// One admitted single-sample request, waiting for a flush.
pub(crate) struct QueuedSample {
    /// Connection token (slab index + generation) the response goes to.
    pub token: u64,
    /// Response slot on that connection, for in-order delivery.
    pub slot: u64,
    /// Whether the response must use v2 framing.
    pub v2: bool,
    /// The sample.
    pub features: Vec<f32>,
}

/// A flushed group: samples that resolved to one model handle, classified
/// by one `classify_batch` call in enqueue order.
pub(crate) struct FlushGroup {
    /// The resolved model (engine + stats slot).
    pub model: Arc<ModelHandle>,
    /// The samples, in enqueue order.
    pub items: Vec<QueuedSample>,
}

/// A finished unit of work headed back to the event loop.
pub(crate) struct Completion {
    /// Connection token the frame belongs to.
    pub token: u64,
    /// Response slot on that connection.
    pub slot: u64,
    /// The encoded response frame.
    pub frame: Bytes,
    /// How many admitted samples this completion releases.
    pub samples: usize,
}

/// The flush-policy state machine. Owned by the event-loop thread;
/// everything here is plain sequential code.
pub(crate) struct MicroBatcher {
    cfg: MicroBatchConfig,
    /// Pending samples, each with its resolved handle.
    pending: Vec<(Arc<ModelHandle>, QueuedSample)>,
    /// When the oldest pending sample was enqueued; `None` when empty, so
    /// an expired timer with nothing queued is a no-op by construction.
    since: Option<Instant>,
    /// Samples admitted (pending + in flight), bounded by `queue_depth`.
    admitted: usize,
}

impl MicroBatcher {
    pub(crate) fn new(cfg: MicroBatchConfig) -> Self {
        let cfg = MicroBatchConfig {
            flush_samples: cfg.flush_samples.max(1),
            queue_depth: cfg.queue_depth.max(1),
            ..cfg
        };
        Self {
            cfg,
            pending: Vec::new(),
            since: None,
            admitted: 0,
        }
    }

    /// Tries to reserve room for `n` more samples. `false` means the
    /// caller must shed the request with an overload error.
    pub(crate) fn admit(&mut self, n: usize) -> bool {
        if self.admitted.saturating_add(n) > self.cfg.queue_depth {
            return false;
        }
        self.admitted += n;
        true
    }

    /// Releases `n` admitted samples (their completions were delivered,
    /// or their flush group could not be dispatched).
    pub(crate) fn release(&mut self, n: usize) {
        self.admitted = self.admitted.saturating_sub(n);
    }

    /// Samples currently admitted (pending + in flight).
    #[cfg(test)]
    pub(crate) fn admitted(&self) -> usize {
        self.admitted
    }

    /// The size threshold that trips a flush — also the bar a
    /// client-submitted batch must clear to count as "already
    /// kernel-sized" for the event loop's same-thread fast path.
    pub(crate) fn flush_samples(&self) -> usize {
        self.cfg.flush_samples
    }

    /// Queues one *admitted* sample. Returns flush groups to dispatch when
    /// the size threshold trips (or immediately when coalescing is
    /// disabled); an empty vec means the sample is waiting on the timer.
    pub(crate) fn enqueue(
        &mut self,
        model: Arc<ModelHandle>,
        sample: QueuedSample,
        now: Instant,
    ) -> Vec<FlushGroup> {
        if !self.cfg.enabled {
            return vec![FlushGroup {
                model,
                items: vec![sample],
            }];
        }
        if self.pending.is_empty() {
            self.since = Some(now);
        }
        self.pending.push((model, sample));
        if self.pending.len() >= self.cfg.flush_samples {
            self.flush_all()
        } else {
            Vec::new()
        }
    }

    /// When the pending queue must be flushed at the latest, or `None`
    /// when nothing is pending (no timer armed — the empty-queue case).
    pub(crate) fn deadline(&self) -> Option<Instant> {
        self.since.map(|since| since + self.cfg.flush_wait)
    }

    /// Flushes if the time threshold has expired. With an empty queue this
    /// is always a no-op, so a stray timer wakeup costs nothing and sends
    /// nothing.
    pub(crate) fn flush_due(&mut self, now: Instant) -> Vec<FlushGroup> {
        match self.deadline() {
            Some(deadline) if now >= deadline => self.flush_all(),
            _ => Vec::new(),
        }
    }

    /// Unconditionally flushes everything pending, grouped by resolved
    /// model handle with enqueue order preserved inside each group.
    pub(crate) fn flush_all(&mut self) -> Vec<FlushGroup> {
        self.since = None;
        let mut groups: Vec<FlushGroup> = Vec::new();
        for (model, sample) in self.pending.drain(..) {
            match groups.iter_mut().find(|g| Arc::ptr_eq(&g.model, &model)) {
                Some(group) => group.items.push(sample),
                None => groups.push(FlushGroup {
                    model,
                    items: vec![sample],
                }),
            }
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelRegistry;
    use bolt_baselines::InferenceEngine;

    struct FixedEngine(u32);
    impl InferenceEngine for FixedEngine {
        fn name(&self) -> &'static str {
            "Fixed"
        }
        fn classify(&self, _sample: &[f32]) -> u32 {
            self.0
        }
    }

    fn handle(registry: &ModelRegistry, name: &str, class: u32) -> Arc<ModelHandle> {
        // Register the first time, hot-swap thereafter.
        if registry
            .register(name, Arc::new(FixedEngine(class)))
            .is_err()
        {
            registry
                .swap(name, Arc::new(FixedEngine(class)))
                .expect("swaps");
        }
        registry.resolve(Some(name)).expect("registered")
    }

    fn sample(slot: u64) -> QueuedSample {
        QueuedSample {
            token: 1,
            slot,
            v2: false,
            features: vec![slot as f32],
        }
    }

    #[test]
    fn timer_with_empty_queue_is_a_noop() {
        let mut b = MicroBatcher::new(MicroBatchConfig::default());
        // No samples ⇒ no deadline armed, and a (stray) flush attempt at
        // any time produces no groups and panics nothing.
        assert!(b.deadline().is_none());
        assert!(b.flush_due(Instant::now()).is_empty());
        assert!(b
            .flush_due(Instant::now() + Duration::from_secs(3600))
            .is_empty());
        assert!(b.flush_all().is_empty());
    }

    #[test]
    fn size_threshold_flushes_exactly_at_n() {
        let registry = ModelRegistry::new();
        let model = handle(&registry, "m", 0);
        let mut b = MicroBatcher::new(MicroBatchConfig {
            flush_samples: 3,
            flush_wait: Duration::from_secs(3600), // timer can't fire
            ..MicroBatchConfig::default()
        });
        let now = Instant::now();
        assert!(b.admit(3));
        assert!(b.enqueue(Arc::clone(&model), sample(0), now).is_empty());
        assert!(b.enqueue(Arc::clone(&model), sample(1), now).is_empty());
        let groups = b.enqueue(Arc::clone(&model), sample(2), now);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].items.len(), 3);
        // Order preserved within the group.
        let slots: Vec<u64> = groups[0].items.iter().map(|s| s.slot).collect();
        assert_eq!(slots, [0, 1, 2]);
        // Queue drained; timer disarmed.
        assert!(b.deadline().is_none());
    }

    #[test]
    fn time_threshold_flushes_after_the_wait() {
        let registry = ModelRegistry::new();
        let model = handle(&registry, "m", 0);
        let mut b = MicroBatcher::new(MicroBatchConfig {
            flush_samples: 1000,
            flush_wait: Duration::from_millis(5),
            ..MicroBatchConfig::default()
        });
        let t0 = Instant::now();
        assert!(b.admit(1));
        assert!(b.enqueue(Arc::clone(&model), sample(0), t0).is_empty());
        let deadline = b.deadline().expect("timer armed");
        assert_eq!(deadline, t0 + Duration::from_millis(5));
        // Before the deadline: nothing.
        assert!(b.flush_due(t0 + Duration::from_millis(4)).is_empty());
        // At/after the deadline: the group comes out and the timer clears.
        let groups = b.flush_due(t0 + Duration::from_millis(5));
        assert_eq!(groups.len(), 1);
        assert!(b.deadline().is_none());
        assert!(b.flush_due(t0 + Duration::from_secs(1)).is_empty());
    }

    #[test]
    fn deadline_tracks_the_oldest_sample_not_the_newest() {
        let registry = ModelRegistry::new();
        let model = handle(&registry, "m", 0);
        let mut b = MicroBatcher::new(MicroBatchConfig {
            flush_samples: 1000,
            flush_wait: Duration::from_millis(10),
            ..MicroBatchConfig::default()
        });
        let t0 = Instant::now();
        assert!(b.admit(2));
        let _ = b.enqueue(Arc::clone(&model), sample(0), t0);
        // A later enqueue must not push the deadline out.
        let _ = b.enqueue(Arc::clone(&model), sample(1), t0 + Duration::from_millis(8));
        assert_eq!(b.deadline(), Some(t0 + Duration::from_millis(10)));
    }

    #[test]
    fn disabled_coalescing_dispatches_singletons_immediately() {
        let registry = ModelRegistry::new();
        let model = handle(&registry, "m", 0);
        let mut b = MicroBatcher::new(MicroBatchConfig {
            enabled: false,
            ..MicroBatchConfig::default()
        });
        assert!(b.admit(1));
        let groups = b.enqueue(Arc::clone(&model), sample(0), Instant::now());
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].items.len(), 1);
        assert!(b.deadline().is_none());
    }

    #[test]
    fn admission_is_bounded_and_released() {
        let mut b = MicroBatcher::new(MicroBatchConfig {
            queue_depth: 4,
            ..MicroBatchConfig::default()
        });
        assert!(b.admit(3));
        assert!(b.admit(1));
        // Full: both a single and a batch bounce.
        assert!(!b.admit(1));
        assert!(!b.admit(100));
        assert_eq!(b.admitted(), 4);
        b.release(2);
        assert!(b.admit(2));
        // Release never underflows.
        b.release(1000);
        assert_eq!(b.admitted(), 0);
    }

    #[test]
    fn flush_groups_by_resolved_handle_preserving_order() {
        let registry = ModelRegistry::new();
        let a = handle(&registry, "a", 0);
        let b_model = handle(&registry, "b", 1);
        let mut b = MicroBatcher::new(MicroBatchConfig {
            flush_samples: 1000,
            ..MicroBatchConfig::default()
        });
        let now = Instant::now();
        assert!(b.admit(5));
        let _ = b.enqueue(Arc::clone(&a), sample(0), now);
        let _ = b.enqueue(Arc::clone(&b_model), sample(1), now);
        let _ = b.enqueue(Arc::clone(&a), sample(2), now);
        let _ = b.enqueue(Arc::clone(&b_model), sample(3), now);
        let _ = b.enqueue(Arc::clone(&a), sample(4), now);
        let groups = b.flush_all();
        assert_eq!(groups.len(), 2);
        let slots = |g: &FlushGroup| g.items.iter().map(|s| s.slot).collect::<Vec<_>>();
        assert!(Arc::ptr_eq(&groups[0].model, &a));
        assert_eq!(slots(&groups[0]), [0, 2, 4]);
        assert!(Arc::ptr_eq(&groups[1].model, &b_model));
        assert_eq!(slots(&groups[1]), [1, 3]);
    }

    #[test]
    fn hot_swap_mid_queue_splits_the_group() {
        // Two resolves of one *name* across a swap yield different handles;
        // each request must be classified by the engine it resolved.
        let registry = ModelRegistry::new();
        let before = handle(&registry, "m", 0);
        let after = handle(&registry, "m", 1); // re-register = hot swap
        assert!(!Arc::ptr_eq(&before, &after));
        let mut b = MicroBatcher::new(MicroBatchConfig {
            flush_samples: 1000,
            ..MicroBatchConfig::default()
        });
        let now = Instant::now();
        assert!(b.admit(2));
        let _ = b.enqueue(before, sample(0), now);
        let _ = b.enqueue(after, sample(1), now);
        let groups = b.flush_all();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].model.engine().classify(&[0.0]), 0);
        assert_eq!(groups[1].model.engine().classify(&[0.0]), 1);
    }
}
