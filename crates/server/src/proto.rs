//! Length-prefixed binary wire protocol.
//!
//! Frames are `u32` little-endian length followed by the payload. A request
//! payload is a feature vector (`u32` count + IEEE-754 `f32` values); a
//! response payload is the class plus the service-side latency in
//! nanoseconds.
//!
//! Batch frames ([`ClassifyBatchRequest`]/[`ClassifyBatchResponse`]) carry
//! many samples in one round trip and start with [`BATCH_MAGIC`]. The magic
//! doubles as a version gate: a single-sample request would need a
//! `BATCH_MAGIC`-sized feature count (~2.9 billion features, an ~11 GiB
//! payload) to collide, which [`MAX_FRAME_BYTES`] rejects long before
//! decoding, so old decoders fail batch frames as malformed instead of
//! misparsing them.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::io::{Read, Write};

/// Largest accepted frame (1 MiB), bounding memory per connection.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// First payload word of every batch frame. Chosen far above any feature
/// count a [`MAX_FRAME_BYTES`]-sized single request could declare.
pub const BATCH_MAGIC: u32 = 0xB017_BA7C;

/// Most samples accepted in one batch frame. Sized so both the densest
/// request (one `f32` per sample) and its response (one `u32` class per
/// sample after the 16-byte header) fit in [`MAX_FRAME_BYTES`]. The decoder
/// enforces it *before* allocating: the byte-length shape check alone would
/// let a zero-feature header declare billions of samples in a 12-byte frame
/// and stampede the allocator.
pub const MAX_BATCH_SAMPLES: usize = (MAX_FRAME_BYTES - 16) / 4;

/// Protocol-level failures.
#[derive(Debug)]
#[non_exhaustive]
pub enum ProtoError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// A frame declared a length beyond [`MAX_FRAME_BYTES`].
    FrameTooLarge {
        /// Declared length.
        declared: usize,
    },
    /// The payload did not decode as the expected message.
    Malformed {
        /// Description of the decoding failure.
        detail: String,
    },
    /// The peer closed the connection mid-frame.
    UnexpectedEof,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "socket error: {e}"),
            Self::FrameTooLarge { declared } => {
                write!(
                    f,
                    "frame of {declared} bytes exceeds limit {MAX_FRAME_BYTES}"
                )
            }
            Self::Malformed { detail } => write!(f, "malformed payload: {detail}"),
            Self::UnexpectedEof => write!(f, "connection closed mid-frame"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// A classification request: one feature vector.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassifyRequest {
    /// The sample's features.
    pub features: Vec<f32>,
}

impl ClassifyRequest {
    /// Serializes into a framed byte buffer.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let payload_len = 4 + self.features.len() * 4;
        let mut buf = BytesMut::with_capacity(4 + payload_len);
        buf.put_u32_le(payload_len as u32);
        buf.put_u32_le(self.features.len() as u32);
        for &f in &self.features {
            buf.put_f32_le(f);
        }
        buf.freeze()
    }

    /// Decodes a request payload (frame length already stripped).
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] if the count and byte length
    /// disagree.
    pub fn decode(mut payload: &[u8]) -> Result<Self, ProtoError> {
        if payload.len() < 4 {
            return Err(ProtoError::Malformed {
                detail: "payload shorter than feature count".into(),
            });
        }
        let n = payload.get_u32_le() as usize;
        if payload.len() != n * 4 {
            return Err(ProtoError::Malformed {
                detail: format!("{n} features declared but {} bytes remain", payload.len()),
            });
        }
        let features = (0..n).map(|_| payload.get_f32_le()).collect();
        Ok(Self { features })
    }
}

/// A batched classification request: many feature vectors, one frame.
///
/// Payload layout: [`BATCH_MAGIC`], sample count, per-sample feature count,
/// then the samples' features back to back (all `u32`/`f32` little-endian).
/// The [`MAX_FRAME_BYTES`] cap bounds `samples × features` to roughly 262k
/// floats per frame and [`MAX_BATCH_SAMPLES`] bounds the sample count;
/// larger batches are split by the caller.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassifyBatchRequest {
    /// The samples' features; every sample has the same length.
    pub samples: Vec<Vec<f32>>,
}

impl ClassifyBatchRequest {
    /// Serializes into a framed byte buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::FrameTooLarge`] when the batch exceeds
    /// [`MAX_FRAME_BYTES`] or [`MAX_BATCH_SAMPLES`] — the server would
    /// reject (or, past `u32::MAX` bytes, misframe) such a payload, so the
    /// caller must split the batch instead of sending it.
    ///
    /// # Panics
    ///
    /// Panics if the samples do not all share one feature count — the wire
    /// layout is a dense matrix.
    pub fn encode(&self) -> Result<Bytes, ProtoError> {
        let n_features = self.samples.first().map_or(0, Vec::len);
        for (i, s) in self.samples.iter().enumerate() {
            assert_eq!(
                s.len(),
                n_features,
                "sample {i} has {} features, batch expects {n_features}",
                s.len()
            );
        }
        let payload_len = 12 + self.samples.len() * n_features * 4;
        if payload_len > MAX_FRAME_BYTES || self.samples.len() > MAX_BATCH_SAMPLES {
            return Err(ProtoError::FrameTooLarge {
                declared: payload_len,
            });
        }
        let mut buf = BytesMut::with_capacity(4 + payload_len);
        buf.put_u32_le(payload_len as u32);
        buf.put_u32_le(BATCH_MAGIC);
        buf.put_u32_le(self.samples.len() as u32);
        buf.put_u32_le(n_features as u32);
        for sample in &self.samples {
            for &f in sample {
                buf.put_f32_le(f);
            }
        }
        Ok(buf.freeze())
    }

    /// Decodes a batch request payload (frame length already stripped).
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] if the magic is absent or the
    /// declared shape disagrees with the byte length.
    pub fn decode(mut payload: &[u8]) -> Result<Self, ProtoError> {
        if payload.len() < 12 {
            return Err(ProtoError::Malformed {
                detail: "batch payload shorter than its header".into(),
            });
        }
        let magic = payload.get_u32_le();
        if magic != BATCH_MAGIC {
            return Err(ProtoError::Malformed {
                detail: format!("batch magic expected, got {magic:#010x}"),
            });
        }
        let n_samples = payload.get_u32_le() as usize;
        let n_features = payload.get_u32_le() as usize;
        // Bound the sample count before anything is allocated: with
        // n_features == 0 the byte-length check below is vacuous (need == 0
        // for any count), so a 12-byte frame could otherwise declare
        // u32::MAX samples and abort the process on the Vec allocations.
        if n_samples > MAX_BATCH_SAMPLES {
            return Err(ProtoError::Malformed {
                detail: format!("{n_samples} samples declared, limit {MAX_BATCH_SAMPLES}"),
            });
        }
        let need = (n_samples as u64) * (n_features as u64) * 4;
        if payload.len() as u64 != need {
            return Err(ProtoError::Malformed {
                detail: format!(
                    "{n_samples}×{n_features} batch declared but {} bytes remain",
                    payload.len()
                ),
            });
        }
        let samples = (0..n_samples)
            .map(|_| (0..n_features).map(|_| payload.get_f32_le()).collect())
            .collect();
        Ok(Self { samples })
    }
}

/// Either kind of request a server connection accepts.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// One sample ([`ClassifyRequest`]).
    Single(ClassifyRequest),
    /// Many samples in one frame ([`ClassifyBatchRequest`]).
    Batch(ClassifyBatchRequest),
}

impl Request {
    /// Decodes a request payload, dispatching on [`BATCH_MAGIC`].
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] if the payload decodes as neither
    /// message.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtoError> {
        if payload.len() >= 4 && payload[..4] == BATCH_MAGIC.to_le_bytes() {
            Ok(Self::Batch(ClassifyBatchRequest::decode(payload)?))
        } else {
            Ok(Self::Single(ClassifyRequest::decode(payload)?))
        }
    }
}

/// A classification response: class plus service-side latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassifyResponse {
    /// Predicted class index.
    pub class: u32,
    /// Nanoseconds from request receipt to aggregation output.
    pub latency_ns: u64,
}

impl ClassifyResponse {
    /// Serializes into a framed byte buffer.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(4 + 12);
        buf.put_u32_le(12);
        buf.put_u32_le(self.class);
        buf.put_u64_le(self.latency_ns);
        buf.freeze()
    }

    /// Decodes a response payload (frame length already stripped).
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] on a size mismatch.
    pub fn decode(mut payload: &[u8]) -> Result<Self, ProtoError> {
        if payload.len() != 12 {
            return Err(ProtoError::Malformed {
                detail: format!("response payload must be 12 bytes, got {}", payload.len()),
            });
        }
        Ok(Self {
            class: payload.get_u32_le(),
            latency_ns: payload.get_u64_le(),
        })
    }
}

/// A batched classification response: one class per sample plus the
/// service-side latency for the whole batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassifyBatchResponse {
    /// Predicted class per sample, in request order.
    pub classes: Vec<u32>,
    /// Nanoseconds spent classifying the whole batch.
    pub latency_ns: u64,
}

impl ClassifyBatchResponse {
    /// Serializes into a framed byte buffer.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let payload_len = 8 + self.classes.len() * 4 + 8;
        let mut buf = BytesMut::with_capacity(4 + payload_len);
        buf.put_u32_le(payload_len as u32);
        buf.put_u32_le(BATCH_MAGIC);
        buf.put_u32_le(self.classes.len() as u32);
        for &c in &self.classes {
            buf.put_u32_le(c);
        }
        buf.put_u64_le(self.latency_ns);
        buf.freeze()
    }

    /// Decodes a batch response payload (frame length already stripped).
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] if the magic is absent or the
    /// count and byte length disagree.
    pub fn decode(mut payload: &[u8]) -> Result<Self, ProtoError> {
        if payload.len() < 16 {
            return Err(ProtoError::Malformed {
                detail: "batch response shorter than its header".into(),
            });
        }
        let magic = payload.get_u32_le();
        if magic != BATCH_MAGIC {
            return Err(ProtoError::Malformed {
                detail: format!("batch magic expected, got {magic:#010x}"),
            });
        }
        let n = payload.get_u32_le() as usize;
        if payload.len() as u64 != (n as u64) * 4 + 8 {
            return Err(ProtoError::Malformed {
                detail: format!("{n} classes declared but {} bytes remain", payload.len()),
            });
        }
        let classes = (0..n).map(|_| payload.get_u32_le()).collect();
        Ok(Self {
            classes,
            latency_ns: payload.get_u64_le(),
        })
    }
}

/// Reads one length-prefixed frame from `reader`. Returns `Ok(None)` on a
/// clean EOF at a frame boundary.
///
/// # Errors
///
/// Returns [`ProtoError::FrameTooLarge`] for oversized declarations,
/// [`ProtoError::UnexpectedEof`] for mid-frame closes, and
/// [`ProtoError::Io`] for socket failures.
pub fn read_frame<R: Read>(reader: &mut R) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut len_buf = [0u8; 4];
    match reader.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ProtoError::FrameTooLarge { declared: len });
    }
    let mut payload = vec![0u8; len];
    reader
        .read_exact(&mut payload)
        .map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => ProtoError::UnexpectedEof,
            _ => ProtoError::Io(e),
        })?;
    Ok(Some(payload))
}

/// Writes a pre-framed buffer (as produced by the `encode` methods).
///
/// # Errors
///
/// Returns [`ProtoError::Io`] on socket failure.
pub fn write_frame<W: Write>(writer: &mut W, framed: &[u8]) -> Result<(), ProtoError> {
    writer.write_all(framed)?;
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = ClassifyRequest {
            features: vec![1.5, -2.0, 0.0, f32::MAX],
        };
        let framed = req.encode();
        let mut cursor = std::io::Cursor::new(framed.to_vec());
        let payload = read_frame(&mut cursor).expect("read").expect("frame");
        assert_eq!(ClassifyRequest::decode(&payload).expect("decode"), req);
    }

    #[test]
    fn response_roundtrip() {
        let resp = ClassifyResponse {
            class: 7,
            latency_ns: 123_456,
        };
        let framed = resp.encode();
        let mut cursor = std::io::Cursor::new(framed.to_vec());
        let payload = read_frame(&mut cursor).expect("read").expect("frame");
        assert_eq!(ClassifyResponse::decode(&payload).expect("decode"), resp);
    }

    #[test]
    fn batch_request_roundtrip() {
        let req = ClassifyBatchRequest {
            samples: vec![vec![1.0, 2.0], vec![-3.5, 0.0], vec![7.25, f32::MIN]],
        };
        let framed = req.encode().expect("encodes");
        let mut cursor = std::io::Cursor::new(framed.to_vec());
        let payload = read_frame(&mut cursor).expect("read").expect("frame");
        assert_eq!(ClassifyBatchRequest::decode(&payload).expect("decode"), req);
        // The dispatching decoder routes it to the batch arm.
        assert_eq!(
            Request::decode(&payload).expect("decode"),
            Request::Batch(req)
        );
    }

    #[test]
    fn batch_response_roundtrip() {
        let resp = ClassifyBatchResponse {
            classes: vec![0, 3, 1, 1],
            latency_ns: 987_654,
        };
        let framed = resp.encode();
        let mut cursor = std::io::Cursor::new(framed.to_vec());
        let payload = read_frame(&mut cursor).expect("read").expect("frame");
        assert_eq!(
            ClassifyBatchResponse::decode(&payload).expect("decode"),
            resp
        );
    }

    #[test]
    fn single_requests_still_dispatch_as_single() {
        let req = ClassifyRequest {
            features: vec![1.5, -2.0],
        };
        let framed = req.encode();
        assert_eq!(
            Request::decode(&framed[4..]).expect("decode"),
            Request::Single(req)
        );
    }

    #[test]
    fn empty_batch_allowed() {
        let req = ClassifyBatchRequest { samples: vec![] };
        let framed = req.encode().expect("encodes");
        assert_eq!(
            ClassifyBatchRequest::decode(&framed[4..]).expect("decode"),
            req
        );
        let resp = ClassifyBatchResponse {
            classes: vec![],
            latency_ns: 1,
        };
        let framed = resp.encode();
        assert_eq!(
            ClassifyBatchResponse::decode(&framed[4..]).expect("decode"),
            resp
        );
    }

    #[test]
    fn hostile_sample_count_rejected_before_allocating() {
        // A 12-byte frame declaring u32::MAX × 0 passes the byte-length
        // shape check (need == 0 == remaining); the sample-count cap must
        // reject it before ~4.3 billion Vecs are allocated.
        let mut bad = Vec::new();
        bad.extend_from_slice(&BATCH_MAGIC.to_le_bytes());
        bad.extend_from_slice(&u32::MAX.to_le_bytes());
        bad.extend_from_slice(&0u32.to_le_bytes());
        let err = ClassifyBatchRequest::decode(&bad).expect_err("rejected");
        assert!(err.to_string().contains("limit"));
        // The largest permitted zero-feature batch still decodes.
        let mut ok = Vec::new();
        ok.extend_from_slice(&BATCH_MAGIC.to_le_bytes());
        ok.extend_from_slice(&(MAX_BATCH_SAMPLES as u32).to_le_bytes());
        ok.extend_from_slice(&0u32.to_le_bytes());
        let decoded = ClassifyBatchRequest::decode(&ok).expect("decodes");
        assert_eq!(decoded.samples.len(), MAX_BATCH_SAMPLES);
    }

    #[test]
    fn oversized_batch_fails_encode() {
        // Over the sample-count cap, and over the byte cap in one sample.
        let req = ClassifyBatchRequest {
            samples: vec![vec![0.0]; MAX_BATCH_SAMPLES + 1],
        };
        assert!(matches!(
            req.encode(),
            Err(ProtoError::FrameTooLarge { .. })
        ));
        let req = ClassifyBatchRequest {
            samples: vec![vec![0.0; (MAX_FRAME_BYTES - 12) / 4 + 1]],
        };
        assert!(matches!(
            req.encode(),
            Err(ProtoError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn max_batch_response_fits_in_a_frame() {
        // Any batch the decoder accepts must yield an encodable response.
        let resp = ClassifyBatchResponse {
            classes: vec![0; MAX_BATCH_SAMPLES],
            latency_ns: 1,
        };
        let framed = resp.encode();
        assert!(framed.len() - 4 <= MAX_FRAME_BYTES);
        let mut cursor = std::io::Cursor::new(framed.to_vec());
        let payload = read_frame(&mut cursor).expect("read").expect("frame");
        assert_eq!(
            ClassifyBatchResponse::decode(&payload)
                .expect("decode")
                .classes
                .len(),
            MAX_BATCH_SAMPLES
        );
    }

    #[test]
    fn batch_shape_mismatch_rejected() {
        // Header says 3×2 but only one sample's bytes follow.
        let mut bad = Vec::new();
        bad.extend_from_slice(&BATCH_MAGIC.to_le_bytes());
        bad.extend_from_slice(&3u32.to_le_bytes());
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            ClassifyBatchRequest::decode(&bad),
            Err(ProtoError::Malformed { .. })
        ));
        // Legacy decoder also rejects rather than misparsing.
        assert!(matches!(
            ClassifyRequest::decode(&bad),
            Err(ProtoError::Malformed { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "batch expects")]
    fn ragged_batch_panics_on_encode() {
        let req = ClassifyBatchRequest {
            samples: vec![vec![1.0, 2.0], vec![3.0]],
        };
        let _ = req.encode();
    }

    #[test]
    fn batch_decoders_are_total() {
        use proptest::prelude::*;
        proptest!(|(bytes in proptest::collection::vec(any::<u8>(), 0..600))| {
            let _ = ClassifyBatchRequest::decode(&bytes);
            let _ = ClassifyBatchResponse::decode(&bytes);
            let _ = Request::decode(&bytes);
        });
    }

    #[test]
    fn empty_features_allowed() {
        let req = ClassifyRequest { features: vec![] };
        let framed = req.encode();
        let payload = &framed[4..];
        assert_eq!(ClassifyRequest::decode(payload).expect("decode"), req);
    }

    #[test]
    fn truncated_payload_rejected() {
        let err = ClassifyRequest::decode(&[1, 0, 0, 0, 0, 0]).expect_err("short");
        assert!(matches!(err, ProtoError::Malformed { .. }));
        let err = ClassifyResponse::decode(&[0u8; 5]).expect_err("short");
        assert!(err.to_string().contains("12 bytes"));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut bad = Vec::new();
        bad.extend_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_le_bytes());
        let mut cursor = std::io::Cursor::new(bad);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtoError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn clean_eof_is_none() {
        let mut cursor = std::io::Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut cursor).expect("clean eof").is_none());
    }

    #[test]
    fn arbitrary_bytes_never_panic() {
        use proptest::prelude::*;
        proptest!(|(bytes in proptest::collection::vec(any::<u8>(), 0..600))| {
            // Framing layer: any byte soup either yields frames or errors,
            // never panics or loops.
            let mut cursor = std::io::Cursor::new(bytes.clone());
            for _ in 0..8 {
                match read_frame(&mut cursor) {
                    Ok(Some(payload)) => {
                        // Decoders must also be total.
                        let _ = ClassifyRequest::decode(&payload);
                        let _ = ClassifyResponse::decode(&payload);
                    }
                    Ok(None) | Err(_) => break,
                }
            }
        });
    }

    #[test]
    fn request_roundtrip_is_total_over_feature_vectors() {
        use proptest::prelude::*;
        proptest!(|(features in proptest::collection::vec(any::<f32>(), 0..300))| {
            let req = ClassifyRequest { features: features.clone() };
            let framed = req.encode();
            let mut cursor = std::io::Cursor::new(framed.to_vec());
            let payload = read_frame(&mut cursor).expect("read").expect("frame");
            let decoded = ClassifyRequest::decode(&payload).expect("decode");
            // Bit-exact round trip (NaN-safe comparison).
            prop_assert_eq!(decoded.features.len(), features.len());
            for (a, b) in decoded.features.iter().zip(&features) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        });
    }

    #[test]
    fn midframe_eof_is_error() {
        let mut bad = Vec::new();
        bad.extend_from_slice(&8u32.to_le_bytes());
        bad.extend_from_slice(&[1, 2, 3]); // only 3 of 8 payload bytes
        let mut cursor = std::io::Cursor::new(bad);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtoError::UnexpectedEof)
        ));
    }
}
