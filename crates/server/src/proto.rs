//! Length-prefixed binary wire protocol.
//!
//! Frames are `u32` little-endian length followed by the payload. A request
//! payload is a feature vector (`u32` count + IEEE-754 `f32` values); a
//! response payload is the class plus the service-side latency in
//! nanoseconds.
//!
//! Batch frames ([`ClassifyBatchRequest`]/[`ClassifyBatchResponse`]) carry
//! many samples in one round trip and start with [`BATCH_MAGIC`]. The magic
//! doubles as a version gate: a single-sample request would need a
//! `BATCH_MAGIC`-sized feature count (~2.9 billion features, an ~11 GiB
//! payload) to collide, which [`MAX_FRAME_BYTES`] rejects long before
//! decoding, so old decoders fail batch frames as malformed instead of
//! misparsing them.
//!
//! # Protocol v2 — model-routed operations
//!
//! Registry-aware operations travel in *versioned* frames. A v2 payload
//! starts with [`V2_MAGIC`] (collision-proof against legacy frames by the
//! same argument as [`BATCH_MAGIC`]), then a protocol-version byte
//! ([`PROTOCOL_VERSION`]), then an opcode byte:
//!
//! ```text
//! ┌─────────────┬──────────────┬────────────┬───────────┬──────────────┐
//! │ u32 len     │ u32 V2_MAGIC │ u8 version │ u8 opcode │ body …       │
//! └─────────────┴──────────────┴────────────┴───────────┴──────────────┘
//! ```
//!
//! Requests: [`ClassifyWithRequest`] (`OP_CLASSIFY_WITH`, routes one sample
//! to a named model), [`ClassifyBatchWithRequest`] (`OP_CLASSIFY_BATCH_WITH`),
//! and `OP_LIST_MODELS`. Responses reuse the classify/batch payloads under
//! v2 framing, plus [`ListModelsResponse`] and structured [`ErrorFrame`]s
//! (`OP_ERROR`) carrying an error code ([`ERR_UNKNOWN_MODEL`],
//! [`ERR_RETIRED_MODEL`], …) and a human-readable detail string.
//!
//! Version negotiation is one-sided and per-frame: a server answers any
//! frame whose version byte exceeds [`PROTOCOL_VERSION`] with an
//! [`ERR_UNSUPPORTED_VERSION`] error frame naming its own maximum, and the
//! connection stays up, so a newer client can downgrade and continue.
//! Legacy (magic-less) `Classify`/`ClassifyBatch` frames remain valid
//! forever and route to the server's *default* model.
//!
//! # Protocol v3 — store-aware model listing
//!
//! Version 3 changes nothing about classification. Its one addition is an
//! *extended* `ListModels` shape: when the request frame carries version 3,
//! each [`ModelInfo`] record in the response grows three trailing fields —
//! `u32` artifact version, `u8` residency flag, and `u64` artifact bytes —
//! so store-backed servers can report which models are mapped and at what
//! cost. Responses always echo the *request's* version byte, so a v2
//! client's strict decoder keeps working and never sees the v3 fields.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::io::{Read, Write};

/// Largest accepted frame (1 MiB), bounding memory per connection.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// First payload word of every batch frame. Chosen far above any feature
/// count a [`MAX_FRAME_BYTES`]-sized single request could declare.
pub const BATCH_MAGIC: u32 = 0xB017_BA7C;

/// Most samples accepted in one batch frame. Sized so both the densest
/// request (one `f32` per sample) and its response (one `u32` class per
/// sample after the 16-byte header) fit in [`MAX_FRAME_BYTES`]. The decoder
/// enforces it *before* allocating: the byte-length shape check alone would
/// let a zero-feature header declare billions of samples in a 12-byte frame
/// and stampede the allocator.
pub const MAX_BATCH_SAMPLES: usize = (MAX_FRAME_BYTES - 16) / 4;

/// First payload word of every protocol-v2 (model-routed) frame. Like
/// [`BATCH_MAGIC`], it sits far above any feature count a
/// [`MAX_FRAME_BYTES`]-sized legacy request could declare, so legacy
/// decoders reject v2 frames as malformed instead of misparsing them.
pub const V2_MAGIC: u32 = 0xB017_C0DE;

/// Highest protocol version this build speaks. Frames carrying a higher
/// version byte are answered with [`ERR_UNSUPPORTED_VERSION`].
pub const PROTOCOL_VERSION: u8 = 3;

/// Lowest versioned-frame protocol this build speaks. No v2-framed message
/// was ever issued under a lower version, so anything below is corruption,
/// not an old peer.
pub const MIN_PROTOCOL_VERSION: u8 = 2;

/// Longest model name accepted on the wire, in bytes.
pub const MAX_MODEL_NAME_BYTES: usize = 64;

/// Most samples accepted in one *v2* batch frame. Tighter than
/// [`MAX_BATCH_SAMPLES`] because the v2 response spends 6 more header bytes
/// (magic is shared, version/opcode are new) and must still fit in
/// [`MAX_FRAME_BYTES`].
pub const MAX_BATCH_SAMPLES_V2: usize = (MAX_FRAME_BYTES - 32) / 4;

/// Opcode: classify one sample with a named model.
pub const OP_CLASSIFY_WITH: u8 = 0x01;
/// Opcode: classify a batch with a named model.
pub const OP_CLASSIFY_BATCH_WITH: u8 = 0x02;
/// Opcode: list registered models.
pub const OP_LIST_MODELS: u8 = 0x03;
/// Opcode: single-classification response.
pub const OP_CLASSIFY_RESP: u8 = 0x81;
/// Opcode: batch-classification response.
pub const OP_CLASSIFY_BATCH_RESP: u8 = 0x82;
/// Opcode: model-list response.
pub const OP_LIST_MODELS_RESP: u8 = 0x83;
/// Opcode: structured error response.
pub const OP_ERROR: u8 = 0xEE;

/// Error code: the named model has never been registered.
pub const ERR_UNKNOWN_MODEL: u8 = 1;
/// Error code: the named model was registered once but has been retired.
pub const ERR_RETIRED_MODEL: u8 = 2;
/// Error code: a legacy (unrouted) request arrived but the server has no
/// default model configured.
pub const ERR_NO_DEFAULT_MODEL: u8 = 3;
/// Error code: the frame's version byte exceeds the server's
/// [`PROTOCOL_VERSION`].
pub const ERR_UNSUPPORTED_VERSION: u8 = 4;
/// Error code: the frame was well-delimited but its payload decoded as no
/// known message. Only the offending request fails; the connection (and
/// any other requests in flight on it) survives.
pub const ERR_MALFORMED_REQUEST: u8 = 5;
/// Error code: the server's bounded request queue is full; the request was
/// shed instead of queued. Retry after a backoff — the connection stays
/// open.
pub const ERR_OVERLOADED: u8 = 6;
/// Error code: the server could not build a well-formed response (e.g. a
/// model list too large for one frame).
pub const ERR_INTERNAL: u8 = 255;

/// Protocol-level failures.
#[derive(Debug)]
#[non_exhaustive]
pub enum ProtoError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// A frame declared a length beyond [`MAX_FRAME_BYTES`].
    FrameTooLarge {
        /// Declared length.
        declared: usize,
    },
    /// The payload did not decode as the expected message.
    Malformed {
        /// Description of the decoding failure.
        detail: String,
    },
    /// The peer closed the connection mid-frame.
    UnexpectedEof,
    /// The server answered with a structured [`ErrorFrame`] instead of a
    /// result (unknown model, retired model, unsupported version, …).
    Rejected {
        /// Machine-readable code ([`ERR_UNKNOWN_MODEL`] and friends).
        code: u8,
        /// Human-readable description from the server.
        detail: String,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "socket error: {e}"),
            Self::FrameTooLarge { declared } => {
                write!(
                    f,
                    "frame of {declared} bytes exceeds limit {MAX_FRAME_BYTES}"
                )
            }
            Self::Malformed { detail } => write!(f, "malformed payload: {detail}"),
            Self::UnexpectedEof => write!(f, "connection closed mid-frame"),
            Self::Rejected { code, detail } => {
                write!(f, "server rejected request (code {code}): {detail}")
            }
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// A classification request: one feature vector.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassifyRequest {
    /// The sample's features.
    pub features: Vec<f32>,
}

impl ClassifyRequest {
    /// Serializes into a framed byte buffer.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let payload_len = 4 + self.features.len() * 4;
        let mut buf = BytesMut::with_capacity(4 + payload_len);
        buf.put_u32_le(payload_len as u32);
        buf.put_u32_le(self.features.len() as u32);
        for &f in &self.features {
            buf.put_f32_le(f);
        }
        buf.freeze()
    }

    /// Decodes a request payload (frame length already stripped).
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] if the count and byte length
    /// disagree.
    pub fn decode(mut payload: &[u8]) -> Result<Self, ProtoError> {
        if payload.len() < 4 {
            return Err(ProtoError::Malformed {
                detail: "payload shorter than feature count".into(),
            });
        }
        let n = payload.get_u32_le() as usize;
        if payload.len() != n * 4 {
            return Err(ProtoError::Malformed {
                detail: format!("{n} features declared but {} bytes remain", payload.len()),
            });
        }
        let features = (0..n).map(|_| payload.get_f32_le()).collect();
        Ok(Self { features })
    }
}

/// A batched classification request: many feature vectors, one frame.
///
/// Payload layout: [`BATCH_MAGIC`], sample count, per-sample feature count,
/// then the samples' features back to back (all `u32`/`f32` little-endian).
/// The [`MAX_FRAME_BYTES`] cap bounds `samples × features` to roughly 262k
/// floats per frame and [`MAX_BATCH_SAMPLES`] bounds the sample count;
/// larger batches are split by the caller.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassifyBatchRequest {
    /// The samples' features; every sample has the same length.
    pub samples: Vec<Vec<f32>>,
}

impl ClassifyBatchRequest {
    /// Serializes into a framed byte buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::FrameTooLarge`] when the batch exceeds
    /// [`MAX_FRAME_BYTES`] or [`MAX_BATCH_SAMPLES`] — the server would
    /// reject (or, past `u32::MAX` bytes, misframe) such a payload, so the
    /// caller must split the batch instead of sending it.
    ///
    /// # Panics
    ///
    /// Panics if the samples do not all share one feature count — the wire
    /// layout is a dense matrix.
    pub fn encode(&self) -> Result<Bytes, ProtoError> {
        let n_features = self.samples.first().map_or(0, Vec::len);
        for (i, s) in self.samples.iter().enumerate() {
            assert_eq!(
                s.len(),
                n_features,
                "sample {i} has {} features, batch expects {n_features}",
                s.len()
            );
        }
        let payload_len = 12 + self.samples.len() * n_features * 4;
        if payload_len > MAX_FRAME_BYTES || self.samples.len() > MAX_BATCH_SAMPLES {
            return Err(ProtoError::FrameTooLarge {
                declared: payload_len,
            });
        }
        let mut buf = BytesMut::with_capacity(4 + payload_len);
        buf.put_u32_le(payload_len as u32);
        buf.put_u32_le(BATCH_MAGIC);
        buf.put_u32_le(self.samples.len() as u32);
        buf.put_u32_le(n_features as u32);
        for sample in &self.samples {
            for &f in sample {
                buf.put_f32_le(f);
            }
        }
        Ok(buf.freeze())
    }

    /// Decodes a batch request payload (frame length already stripped).
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] if the magic is absent or the
    /// declared shape disagrees with the byte length.
    pub fn decode(mut payload: &[u8]) -> Result<Self, ProtoError> {
        if payload.len() < 12 {
            return Err(ProtoError::Malformed {
                detail: "batch payload shorter than its header".into(),
            });
        }
        let magic = payload.get_u32_le();
        if magic != BATCH_MAGIC {
            return Err(ProtoError::Malformed {
                detail: format!("batch magic expected, got {magic:#010x}"),
            });
        }
        let n_samples = payload.get_u32_le() as usize;
        let n_features = payload.get_u32_le() as usize;
        // Bound the sample count before anything is allocated: with
        // n_features == 0 the byte-length check below is vacuous (need == 0
        // for any count), so a 12-byte frame could otherwise declare
        // u32::MAX samples and abort the process on the Vec allocations.
        if n_samples > MAX_BATCH_SAMPLES {
            return Err(ProtoError::Malformed {
                detail: format!("{n_samples} samples declared, limit {MAX_BATCH_SAMPLES}"),
            });
        }
        let need = (n_samples as u64) * (n_features as u64) * 4;
        if payload.len() as u64 != need {
            return Err(ProtoError::Malformed {
                detail: format!(
                    "{n_samples}×{n_features} batch declared but {} bytes remain",
                    payload.len()
                ),
            });
        }
        let samples = (0..n_samples)
            .map(|_| (0..n_features).map(|_| payload.get_f32_le()).collect())
            .collect();
        Ok(Self { samples })
    }
}

/// Appends a length-prefixed model name (u8 length + UTF-8 bytes).
fn put_name(buf: &mut BytesMut, name: &str) {
    buf.put_u8(name.len() as u8);
    buf.put_slice(name.as_bytes());
}

/// Validates a model name for the wire: non-empty, at most
/// [`MAX_MODEL_NAME_BYTES`] UTF-8 bytes.
fn check_name(name: &str) -> Result<(), ProtoError> {
    if name.is_empty() || name.len() > MAX_MODEL_NAME_BYTES {
        return Err(ProtoError::Malformed {
            detail: format!(
                "model name must be 1..={MAX_MODEL_NAME_BYTES} bytes, got {}",
                name.len()
            ),
        });
    }
    Ok(())
}

/// Reads a length-prefixed model name written by [`put_name`].
fn get_name(payload: &mut &[u8]) -> Result<String, ProtoError> {
    if payload.remaining() < 1 {
        return Err(ProtoError::Malformed {
            detail: "payload ends before model-name length".into(),
        });
    }
    let len = payload.get_u8() as usize;
    if len == 0 || len > MAX_MODEL_NAME_BYTES {
        return Err(ProtoError::Malformed {
            detail: format!("model name of {len} bytes outside 1..={MAX_MODEL_NAME_BYTES}"),
        });
    }
    if payload.remaining() < len {
        return Err(ProtoError::Malformed {
            detail: "payload ends inside model name".into(),
        });
    }
    let mut bytes = vec![0u8; len];
    payload.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| ProtoError::Malformed {
        detail: "model name is not UTF-8".into(),
    })
}

/// Starts a framed v2 payload: length placeholder is handled by the caller
/// computing `payload_len`; this writes magic, version, and opcode.
///
/// Responses pass the *request's* version so a strict older decoder on the
/// peer keeps parsing; requests pass the lowest version whose shape they
/// use.
fn v2_header(buf: &mut BytesMut, payload_len: usize, opcode: u8, version: u8) {
    buf.put_u32_le(payload_len as u32);
    buf.put_u32_le(V2_MAGIC);
    buf.put_u8(version);
    buf.put_u8(opcode);
}

/// True when a payload is a protocol-v2 frame (leads with [`V2_MAGIC`]).
#[must_use]
pub fn is_v2(payload: &[u8]) -> bool {
    payload.len() >= 4 && payload[..4] == V2_MAGIC.to_le_bytes()
}

/// Serializes a framed `ListModels` request (bare v2 opcode, no body).
/// The answer uses the legacy (version-2) record shape.
#[must_use]
pub fn encode_list_models() -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + 6);
    v2_header(&mut buf, 6, OP_LIST_MODELS, 2);
    buf.freeze()
}

/// Serializes a framed *extended* `ListModels` request (version 3). The
/// answer carries per-model artifact version, residency, and byte size.
/// Servers older than v3 reject it with [`ERR_UNSUPPORTED_VERSION`]; fall
/// back to [`encode_list_models`] on that error.
#[must_use]
pub fn encode_list_models_extended() -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + 6);
    v2_header(&mut buf, 6, OP_LIST_MODELS, 3);
    buf.freeze()
}

/// A model-routed classification request: one sample for a named model.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassifyWithRequest {
    /// Registered model to classify with.
    pub model: String,
    /// The sample's features.
    pub features: Vec<f32>,
}

impl ClassifyWithRequest {
    /// Serializes into a framed v2 byte buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] for an empty or over-long model
    /// name and [`ProtoError::FrameTooLarge`] when the features overflow
    /// [`MAX_FRAME_BYTES`].
    pub fn encode(&self) -> Result<Bytes, ProtoError> {
        check_name(&self.model)?;
        let payload_len = 6 + 1 + self.model.len() + 4 + self.features.len() * 4;
        if payload_len > MAX_FRAME_BYTES {
            return Err(ProtoError::FrameTooLarge {
                declared: payload_len,
            });
        }
        let mut buf = BytesMut::with_capacity(4 + payload_len);
        v2_header(&mut buf, payload_len, OP_CLASSIFY_WITH, 2);
        put_name(&mut buf, &self.model);
        buf.put_u32_le(self.features.len() as u32);
        for &f in &self.features {
            buf.put_f32_le(f);
        }
        Ok(buf.freeze())
    }

    /// Decodes the body (everything after the opcode byte).
    fn decode_body(mut payload: &[u8]) -> Result<Self, ProtoError> {
        let model = get_name(&mut payload)?;
        if payload.remaining() < 4 {
            return Err(ProtoError::Malformed {
                detail: "payload ends before feature count".into(),
            });
        }
        let n = payload.get_u32_le() as usize;
        if payload.len() != n * 4 {
            return Err(ProtoError::Malformed {
                detail: format!("{n} features declared but {} bytes remain", payload.len()),
            });
        }
        let features = (0..n).map(|_| payload.get_f32_le()).collect();
        Ok(Self { model, features })
    }
}

/// A model-routed batch request: many samples for a named model.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassifyBatchWithRequest {
    /// Registered model to classify with.
    pub model: String,
    /// The samples' features; every sample has the same length.
    pub samples: Vec<Vec<f32>>,
}

impl ClassifyBatchWithRequest {
    /// Serializes into a framed v2 byte buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] for a bad model name and
    /// [`ProtoError::FrameTooLarge`] when the batch exceeds
    /// [`MAX_FRAME_BYTES`] or [`MAX_BATCH_SAMPLES_V2`].
    ///
    /// # Panics
    ///
    /// Panics if the samples do not all share one feature count — the wire
    /// layout is a dense matrix.
    pub fn encode(&self) -> Result<Bytes, ProtoError> {
        check_name(&self.model)?;
        let n_features = self.samples.first().map_or(0, Vec::len);
        for (i, s) in self.samples.iter().enumerate() {
            assert_eq!(
                s.len(),
                n_features,
                "sample {i} has {} features, batch expects {n_features}",
                s.len()
            );
        }
        let payload_len = 6 + 1 + self.model.len() + 8 + self.samples.len() * n_features * 4;
        if payload_len > MAX_FRAME_BYTES || self.samples.len() > MAX_BATCH_SAMPLES_V2 {
            return Err(ProtoError::FrameTooLarge {
                declared: payload_len,
            });
        }
        let mut buf = BytesMut::with_capacity(4 + payload_len);
        v2_header(&mut buf, payload_len, OP_CLASSIFY_BATCH_WITH, 2);
        put_name(&mut buf, &self.model);
        buf.put_u32_le(self.samples.len() as u32);
        buf.put_u32_le(n_features as u32);
        for sample in &self.samples {
            for &f in sample {
                buf.put_f32_le(f);
            }
        }
        Ok(buf.freeze())
    }

    /// Decodes the body (everything after the opcode byte).
    fn decode_body(mut payload: &[u8]) -> Result<Self, ProtoError> {
        let model = get_name(&mut payload)?;
        if payload.remaining() < 8 {
            return Err(ProtoError::Malformed {
                detail: "batch payload shorter than its shape header".into(),
            });
        }
        let n_samples = payload.get_u32_le() as usize;
        let n_features = payload.get_u32_le() as usize;
        // Same allocation-stampede guard as the legacy batch decoder: cap
        // the count before any Vec is sized from it.
        if n_samples > MAX_BATCH_SAMPLES_V2 {
            return Err(ProtoError::Malformed {
                detail: format!("{n_samples} samples declared, limit {MAX_BATCH_SAMPLES_V2}"),
            });
        }
        let need = (n_samples as u64) * (n_features as u64) * 4;
        if payload.len() as u64 != need {
            return Err(ProtoError::Malformed {
                detail: format!(
                    "{n_samples}×{n_features} batch declared but {} bytes remain",
                    payload.len()
                ),
            });
        }
        let samples = (0..n_samples)
            .map(|_| (0..n_features).map(|_| payload.get_f32_le()).collect())
            .collect();
        Ok(Self { model, samples })
    }
}

/// One registered model, as reported by `ListModels`.
///
/// The trailing three fields travel only in the *extended* (version-3)
/// record shape; a legacy (version-2) listing decodes them to their
/// in-memory defaults (`version: 0`, `resident: true`, `bytes: 0`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelInfo {
    /// Name the model is registered under.
    pub name: String,
    /// The engine's platform name (`InferenceEngine::name`).
    pub engine: String,
    /// Requests this model has answered so far.
    pub requests: u64,
    /// Whether legacy (unrouted) frames fall back to this model.
    pub is_default: bool,
    /// Artifact version serving the name (`0` = registered in memory, no
    /// versioned artifact behind it). v3 only.
    pub version: u32,
    /// Whether the model is currently mapped and ready to serve without a
    /// load. In-memory models are always resident. v3 only.
    pub resident: bool,
    /// Artifact size in bytes (mapped size when resident, on-disk size
    /// when not; `0` for in-memory models). v3 only.
    pub bytes: u64,
}

/// Response to `ListModels`: every registered model, sorted by name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ListModelsResponse {
    /// The registered models.
    pub models: Vec<ModelInfo>,
}

impl ListModelsResponse {
    /// Serializes into a framed v2 byte buffer, echoing the request's
    /// `version`: version 3 writes the extended per-model record (artifact
    /// version, residency, bytes), version 2 the legacy shape.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::FrameTooLarge`] if the model list overflows
    /// [`MAX_FRAME_BYTES`] and [`ProtoError::Malformed`] if a name is
    /// wire-invalid.
    pub fn encode(&self, version: u8) -> Result<Bytes, ProtoError> {
        let extended = version >= 3;
        let mut payload_len = 6 + 2;
        for m in &self.models {
            check_name(&m.name)?;
            if m.engine.len() > MAX_MODEL_NAME_BYTES {
                return Err(ProtoError::Malformed {
                    detail: format!("engine name {} too long for the wire", m.engine),
                });
            }
            payload_len += 1 + m.name.len() + 1 + m.engine.len() + 8 + 1;
            if extended {
                payload_len += 4 + 1 + 8;
            }
        }
        if payload_len > MAX_FRAME_BYTES || self.models.len() > usize::from(u16::MAX) {
            return Err(ProtoError::FrameTooLarge {
                declared: payload_len,
            });
        }
        let mut buf = BytesMut::with_capacity(4 + payload_len);
        v2_header(&mut buf, payload_len, OP_LIST_MODELS_RESP, version);
        buf.put_u16_le(self.models.len() as u16);
        for m in &self.models {
            put_name(&mut buf, &m.name);
            buf.put_u8(m.engine.len() as u8);
            buf.put_slice(m.engine.as_bytes());
            buf.put_u64_le(m.requests);
            buf.put_u8(u8::from(m.is_default));
            if extended {
                buf.put_u32_le(m.version);
                buf.put_u8(u8::from(m.resident));
                buf.put_u64_le(m.bytes);
            }
        }
        Ok(buf.freeze())
    }

    /// Decodes the body (everything after the opcode byte). `version` is
    /// the frame's version byte and selects the record shape.
    fn decode_body(mut payload: &[u8], version: u8) -> Result<Self, ProtoError> {
        let extended = version >= 3;
        if payload.remaining() < 2 {
            return Err(ProtoError::Malformed {
                detail: "model list shorter than its count".into(),
            });
        }
        let n = payload.get_u16_le() as usize;
        let mut models = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let name = get_name(&mut payload)?;
            if payload.remaining() < 1 {
                return Err(ProtoError::Malformed {
                    detail: "model list ends before engine name".into(),
                });
            }
            let engine_len = payload.get_u8() as usize;
            let tail = if extended { 9 + 13 } else { 9 };
            if payload.remaining() < engine_len + tail {
                return Err(ProtoError::Malformed {
                    detail: "model list ends inside a model record".into(),
                });
            }
            let mut engine_bytes = vec![0u8; engine_len];
            payload.copy_to_slice(&mut engine_bytes);
            let engine = String::from_utf8(engine_bytes).map_err(|_| ProtoError::Malformed {
                detail: "engine name is not UTF-8".into(),
            })?;
            let requests = payload.get_u64_le();
            let is_default = payload.get_u8() != 0;
            let (model_version, resident, bytes) = if extended {
                (
                    payload.get_u32_le(),
                    payload.get_u8() != 0,
                    payload.get_u64_le(),
                )
            } else {
                (0, true, 0)
            };
            models.push(ModelInfo {
                name,
                engine,
                requests,
                is_default,
                version: model_version,
                resident,
                bytes,
            });
        }
        if payload.remaining() != 0 {
            return Err(ProtoError::Malformed {
                detail: format!("{} trailing bytes after model list", payload.remaining()),
            });
        }
        Ok(Self { models })
    }
}

/// A structured server-side error (unknown model, retired model, …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorFrame {
    /// Machine-readable code ([`ERR_UNKNOWN_MODEL`] and friends).
    pub code: u8,
    /// Human-readable description.
    pub detail: String,
}

impl ErrorFrame {
    /// Serializes into a framed v2 byte buffer. The detail string is
    /// truncated (on a char boundary) so the frame always encodes.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut detail = self.detail.as_str();
        while detail.len() > 1024 {
            let mut cut = 1024;
            while !detail.is_char_boundary(cut) {
                cut -= 1;
            }
            detail = &detail[..cut];
        }
        let payload_len = 6 + 1 + 2 + detail.len();
        let mut buf = BytesMut::with_capacity(4 + payload_len);
        // Error frames keep the version-2 stamp: the shape never changed
        // and the lowest stamp is the one every peer can parse.
        v2_header(&mut buf, payload_len, OP_ERROR, 2);
        buf.put_u8(self.code);
        buf.put_u16_le(detail.len() as u16);
        buf.put_slice(detail.as_bytes());
        buf.freeze()
    }

    /// Decodes the body (everything after the opcode byte).
    fn decode_body(mut payload: &[u8]) -> Result<Self, ProtoError> {
        if payload.remaining() < 3 {
            return Err(ProtoError::Malformed {
                detail: "error frame shorter than its header".into(),
            });
        }
        let code = payload.get_u8();
        let len = payload.get_u16_le() as usize;
        if payload.remaining() != len {
            return Err(ProtoError::Malformed {
                detail: format!(
                    "error detail of {len} bytes declared but {} remain",
                    payload.remaining()
                ),
            });
        }
        let mut bytes = vec![0u8; len];
        payload.copy_to_slice(&mut bytes);
        let detail = String::from_utf8(bytes).map_err(|_| ProtoError::Malformed {
            detail: "error detail is not UTF-8".into(),
        })?;
        Ok(Self { code, detail })
    }

    /// Converts into the client-facing [`ProtoError::Rejected`].
    #[must_use]
    pub fn into_error(self) -> ProtoError {
        ProtoError::Rejected {
            code: self.code,
            detail: self.detail,
        }
    }
}

/// Either kind of request a server connection accepts.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// One sample ([`ClassifyRequest`]), legacy framing → default model.
    Single(ClassifyRequest),
    /// Many samples ([`ClassifyBatchRequest`]), legacy framing → default
    /// model.
    Batch(ClassifyBatchRequest),
    /// One sample routed to a named model (v2).
    SingleWith(ClassifyWithRequest),
    /// Many samples routed to a named model (v2).
    BatchWith(ClassifyBatchWithRequest),
    /// Enumerate registered models (v2). `extended` is set when the frame
    /// carried version 3: the response must use the extended record shape
    /// (artifact version, residency, bytes) and echo version 3.
    ListModels {
        /// Whether the peer asked for the extended (v3) record shape.
        extended: bool,
    },
    /// A v2 frame whose version byte this build does not speak; the server
    /// answers with [`ERR_UNSUPPORTED_VERSION`] and keeps the connection.
    UnsupportedVersion {
        /// The version the peer asked for.
        requested: u8,
    },
}

impl Request {
    /// Decodes a request payload, dispatching on [`V2_MAGIC`] then
    /// [`BATCH_MAGIC`].
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] if the payload decodes as no known
    /// message.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtoError> {
        if is_v2(payload) {
            if payload.len() < 6 {
                return Err(ProtoError::Malformed {
                    detail: "v2 frame shorter than its header".into(),
                });
            }
            let version = payload[4];
            if version > PROTOCOL_VERSION {
                return Ok(Self::UnsupportedVersion { requested: version });
            }
            if version < MIN_PROTOCOL_VERSION {
                // No v2-framed message was ever issued under a lower
                // version; this is a corrupt frame, not an old peer.
                return Err(ProtoError::Malformed {
                    detail: format!("v2 frame carries impossible version {version}"),
                });
            }
            let opcode = payload[5];
            let body = &payload[6..];
            return match opcode {
                OP_CLASSIFY_WITH => Ok(Self::SingleWith(ClassifyWithRequest::decode_body(body)?)),
                OP_CLASSIFY_BATCH_WITH => Ok(Self::BatchWith(
                    ClassifyBatchWithRequest::decode_body(body)?,
                )),
                OP_LIST_MODELS => {
                    if body.is_empty() {
                        Ok(Self::ListModels {
                            extended: version >= 3,
                        })
                    } else {
                        Err(ProtoError::Malformed {
                            detail: format!("{} unexpected bytes in ListModels", body.len()),
                        })
                    }
                }
                other => Err(ProtoError::Malformed {
                    detail: format!("unknown v2 request opcode {other:#04x}"),
                }),
            };
        }
        if payload.len() >= 4 && payload[..4] == BATCH_MAGIC.to_le_bytes() {
            Ok(Self::Batch(ClassifyBatchRequest::decode(payload)?))
        } else {
            Ok(Self::Single(ClassifyRequest::decode(payload)?))
        }
    }
}

/// Any message a v2-aware client can receive.
#[derive(Clone, Debug, PartialEq)]
pub enum V2Response {
    /// Single-classification result.
    Classify(ClassifyResponse),
    /// Batch-classification result.
    Batch(ClassifyBatchResponse),
    /// Model list.
    Models(ListModelsResponse),
    /// Structured error.
    Error(ErrorFrame),
}

impl V2Response {
    /// Decodes a v2 response payload.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] if the payload is not a v2 frame
    /// or its body does not decode.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtoError> {
        if !is_v2(payload) || payload.len() < 6 {
            return Err(ProtoError::Malformed {
                detail: "expected a v2 response frame".into(),
            });
        }
        let version = payload[4];
        if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
            return Err(ProtoError::Malformed {
                detail: format!("v2 response carries unsupported version {version}"),
            });
        }
        let opcode = payload[5];
        let body = &payload[6..];
        match opcode {
            OP_CLASSIFY_RESP => Ok(Self::Classify(ClassifyResponse::decode_body(body)?)),
            OP_CLASSIFY_BATCH_RESP => Ok(Self::Batch(ClassifyBatchResponse::decode_body(body)?)),
            OP_LIST_MODELS_RESP => Ok(Self::Models(ListModelsResponse::decode_body(
                body, version,
            )?)),
            OP_ERROR => Ok(Self::Error(ErrorFrame::decode_body(body)?)),
            other => Err(ProtoError::Malformed {
                detail: format!("unknown v2 response opcode {other:#04x}"),
            }),
        }
    }
}

/// A classification response: class plus service-side latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassifyResponse {
    /// Predicted class index.
    pub class: u32,
    /// Nanoseconds from request receipt to aggregation output.
    pub latency_ns: u64,
}

impl ClassifyResponse {
    /// Serializes into a framed byte buffer.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(4 + 12);
        buf.put_u32_le(12);
        buf.put_u32_le(self.class);
        buf.put_u64_le(self.latency_ns);
        buf.freeze()
    }

    /// Decodes a response payload (frame length already stripped).
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] on a size mismatch.
    pub fn decode(mut payload: &[u8]) -> Result<Self, ProtoError> {
        if payload.len() != 12 {
            return Err(ProtoError::Malformed {
                detail: format!("response payload must be 12 bytes, got {}", payload.len()),
            });
        }
        Ok(Self {
            class: payload.get_u32_le(),
            latency_ns: payload.get_u64_le(),
        })
    }

    /// Serializes into a framed *v2* byte buffer (answering a
    /// [`ClassifyWithRequest`]).
    #[must_use]
    pub fn encode_v2(&self) -> Bytes {
        let payload_len = 6 + 12;
        let mut buf = BytesMut::with_capacity(4 + payload_len);
        v2_header(&mut buf, payload_len, OP_CLASSIFY_RESP, 2);
        buf.put_u32_le(self.class);
        buf.put_u64_le(self.latency_ns);
        buf.freeze()
    }

    /// Decodes a v2 body (everything after the opcode byte).
    fn decode_body(payload: &[u8]) -> Result<Self, ProtoError> {
        // The v2 body is laid out exactly like the legacy payload.
        Self::decode(payload)
    }
}

/// A batched classification response: one class per sample plus the
/// service-side latency for the whole batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassifyBatchResponse {
    /// Predicted class per sample, in request order.
    pub classes: Vec<u32>,
    /// Nanoseconds spent classifying the whole batch.
    pub latency_ns: u64,
}

impl ClassifyBatchResponse {
    /// Serializes into a framed byte buffer.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let payload_len = 8 + self.classes.len() * 4 + 8;
        let mut buf = BytesMut::with_capacity(4 + payload_len);
        buf.put_u32_le(payload_len as u32);
        buf.put_u32_le(BATCH_MAGIC);
        buf.put_u32_le(self.classes.len() as u32);
        for &c in &self.classes {
            buf.put_u32_le(c);
        }
        buf.put_u64_le(self.latency_ns);
        buf.freeze()
    }

    /// Decodes a batch response payload (frame length already stripped).
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] if the magic is absent or the
    /// count and byte length disagree.
    pub fn decode(mut payload: &[u8]) -> Result<Self, ProtoError> {
        if payload.len() < 16 {
            return Err(ProtoError::Malformed {
                detail: "batch response shorter than its header".into(),
            });
        }
        let magic = payload.get_u32_le();
        if magic != BATCH_MAGIC {
            return Err(ProtoError::Malformed {
                detail: format!("batch magic expected, got {magic:#010x}"),
            });
        }
        let n = payload.get_u32_le() as usize;
        if payload.len() as u64 != (n as u64) * 4 + 8 {
            return Err(ProtoError::Malformed {
                detail: format!("{n} classes declared but {} bytes remain", payload.len()),
            });
        }
        let classes = (0..n).map(|_| payload.get_u32_le()).collect();
        Ok(Self {
            classes,
            latency_ns: payload.get_u64_le(),
        })
    }

    /// Serializes into a framed *v2* byte buffer (answering a
    /// [`ClassifyBatchWithRequest`]).
    #[must_use]
    pub fn encode_v2(&self) -> Bytes {
        let payload_len = 6 + 4 + self.classes.len() * 4 + 8;
        let mut buf = BytesMut::with_capacity(4 + payload_len);
        v2_header(&mut buf, payload_len, OP_CLASSIFY_BATCH_RESP, 2);
        buf.put_u32_le(self.classes.len() as u32);
        for &c in &self.classes {
            buf.put_u32_le(c);
        }
        buf.put_u64_le(self.latency_ns);
        buf.freeze()
    }

    /// Decodes a v2 body (everything after the opcode byte).
    fn decode_body(mut payload: &[u8]) -> Result<Self, ProtoError> {
        if payload.remaining() < 4 {
            return Err(ProtoError::Malformed {
                detail: "v2 batch response shorter than its count".into(),
            });
        }
        let n = payload.get_u32_le() as usize;
        if payload.len() as u64 != (n as u64) * 4 + 8 {
            return Err(ProtoError::Malformed {
                detail: format!("{n} classes declared but {} bytes remain", payload.len()),
            });
        }
        let classes = (0..n).map(|_| payload.get_u32_le()).collect();
        Ok(Self {
            classes,
            latency_ns: payload.get_u64_le(),
        })
    }
}

/// Reads one length-prefixed frame from `reader`. Returns `Ok(None)` on a
/// clean EOF at a frame boundary.
///
/// This is the one-shot form for *blocking* streams with no read timeout
/// (the client side, tests, tools). On a stream with a read timeout
/// configured, a timeout firing mid-frame loses whatever bytes were
/// already consumed — use a per-connection [`FrameReader`] there, which
/// buffers partial frames across timeouts and resumes instead of
/// restarting.
///
/// # Errors
///
/// Returns [`ProtoError::FrameTooLarge`] for oversized declarations,
/// [`ProtoError::UnexpectedEof`] for mid-frame closes, and
/// [`ProtoError::Io`] for socket failures.
pub fn read_frame<R: Read>(reader: &mut R) -> Result<Option<Vec<u8>>, ProtoError> {
    FrameReader::new().read_frame(reader)
}

/// Incremental frame reader that survives read timeouts mid-frame.
///
/// `read_exact`-style reading discards partially consumed bytes when a
/// timed read fails with `WouldBlock`/`TimedOut`, so a slow client
/// dribbling a frame across the timeout boundary desyncs the stream: the
/// next read treats mid-frame bytes as a fresh length header. A
/// `FrameReader` keeps the partial header/payload buffered across calls
/// and resumes exactly where it stopped, so timeout errors returned to the
/// caller are pure idle notifications and never lose data.
#[derive(Debug, Default)]
pub struct FrameReader {
    /// Length-header bytes collected so far.
    len_buf: [u8; 4],
    /// How many of `len_buf`'s bytes are valid.
    len_filled: usize,
    /// Payload buffer, allocated once the header is complete.
    payload: Vec<u8>,
    /// How many payload bytes are valid.
    payload_filled: usize,
    /// Whether the length header has been fully read for the current frame.
    have_len: bool,
}

impl FrameReader {
    /// A reader with no buffered frame state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// True when part of a frame (header or payload) is buffered — i.e. a
    /// timeout returned now would be *mid-frame*, not between frames.
    #[must_use]
    pub fn mid_frame(&self) -> bool {
        self.len_filled > 0 || self.have_len
    }

    /// Reads one length-prefixed frame, resuming any partially buffered
    /// frame from a previous call. Returns `Ok(None)` on a clean EOF at a
    /// frame boundary.
    ///
    /// When the underlying read fails with `WouldBlock`/`TimedOut`, the
    /// error is returned but all bytes consumed so far stay buffered; call
    /// again with the same reader to continue the frame.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::FrameTooLarge`] for oversized declarations,
    /// [`ProtoError::UnexpectedEof`] for mid-frame closes, and
    /// [`ProtoError::Io`] for socket failures (including timeouts, which
    /// are resumable as described above).
    pub fn read_frame<R: Read>(&mut self, reader: &mut R) -> Result<Option<Vec<u8>>, ProtoError> {
        if !self.have_len {
            while self.len_filled < 4 {
                match reader.read(&mut self.len_buf[self.len_filled..]) {
                    Ok(0) => {
                        return if self.len_filled == 0 {
                            Ok(None) // clean EOF at a frame boundary
                        } else {
                            Err(ProtoError::UnexpectedEof)
                        };
                    }
                    Ok(n) => self.len_filled += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e.into()),
                }
            }
            let len = u32::from_le_bytes(self.len_buf) as usize;
            if len > MAX_FRAME_BYTES {
                return Err(ProtoError::FrameTooLarge { declared: len });
            }
            self.have_len = true;
            self.payload = vec![0u8; len];
            self.payload_filled = 0;
        }
        while self.payload_filled < self.payload.len() {
            match reader.read(&mut self.payload[self.payload_filled..]) {
                Ok(0) => return Err(ProtoError::UnexpectedEof),
                Ok(n) => self.payload_filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        self.have_len = false;
        self.len_filled = 0;
        self.payload_filled = 0;
        Ok(Some(std::mem::take(&mut self.payload)))
    }
}

/// Writes a pre-framed buffer (as produced by the `encode` methods).
///
/// # Errors
///
/// Returns [`ProtoError::Io`] on socket failure.
pub fn write_frame<W: Write>(writer: &mut W, framed: &[u8]) -> Result<(), ProtoError> {
    writer.write_all(framed)?;
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn request_roundtrip() {
        let req = ClassifyRequest {
            features: vec![1.5, -2.0, 0.0, f32::MAX],
        };
        let framed = req.encode();
        let mut cursor = std::io::Cursor::new(framed.to_vec());
        let payload = read_frame(&mut cursor).expect("read").expect("frame");
        assert_eq!(ClassifyRequest::decode(&payload).expect("decode"), req);
    }

    #[test]
    fn response_roundtrip() {
        let resp = ClassifyResponse {
            class: 7,
            latency_ns: 123_456,
        };
        let framed = resp.encode();
        let mut cursor = std::io::Cursor::new(framed.to_vec());
        let payload = read_frame(&mut cursor).expect("read").expect("frame");
        assert_eq!(ClassifyResponse::decode(&payload).expect("decode"), resp);
    }

    #[test]
    fn batch_request_roundtrip() {
        let req = ClassifyBatchRequest {
            samples: vec![vec![1.0, 2.0], vec![-3.5, 0.0], vec![7.25, f32::MIN]],
        };
        let framed = req.encode().expect("encodes");
        let mut cursor = std::io::Cursor::new(framed.to_vec());
        let payload = read_frame(&mut cursor).expect("read").expect("frame");
        assert_eq!(ClassifyBatchRequest::decode(&payload).expect("decode"), req);
        // The dispatching decoder routes it to the batch arm.
        assert_eq!(
            Request::decode(&payload).expect("decode"),
            Request::Batch(req)
        );
    }

    #[test]
    fn batch_response_roundtrip() {
        let resp = ClassifyBatchResponse {
            classes: vec![0, 3, 1, 1],
            latency_ns: 987_654,
        };
        let framed = resp.encode();
        let mut cursor = std::io::Cursor::new(framed.to_vec());
        let payload = read_frame(&mut cursor).expect("read").expect("frame");
        assert_eq!(
            ClassifyBatchResponse::decode(&payload).expect("decode"),
            resp
        );
    }

    #[test]
    fn single_requests_still_dispatch_as_single() {
        let req = ClassifyRequest {
            features: vec![1.5, -2.0],
        };
        let framed = req.encode();
        assert_eq!(
            Request::decode(&framed[4..]).expect("decode"),
            Request::Single(req)
        );
    }

    #[test]
    fn empty_batch_allowed() {
        let req = ClassifyBatchRequest { samples: vec![] };
        let framed = req.encode().expect("encodes");
        assert_eq!(
            ClassifyBatchRequest::decode(&framed[4..]).expect("decode"),
            req
        );
        let resp = ClassifyBatchResponse {
            classes: vec![],
            latency_ns: 1,
        };
        let framed = resp.encode();
        assert_eq!(
            ClassifyBatchResponse::decode(&framed[4..]).expect("decode"),
            resp
        );
    }

    #[test]
    fn hostile_sample_count_rejected_before_allocating() {
        // A 12-byte frame declaring u32::MAX × 0 passes the byte-length
        // shape check (need == 0 == remaining); the sample-count cap must
        // reject it before ~4.3 billion Vecs are allocated.
        let mut bad = Vec::new();
        bad.extend_from_slice(&BATCH_MAGIC.to_le_bytes());
        bad.extend_from_slice(&u32::MAX.to_le_bytes());
        bad.extend_from_slice(&0u32.to_le_bytes());
        let err = ClassifyBatchRequest::decode(&bad).expect_err("rejected");
        assert!(err.to_string().contains("limit"));
        // The largest permitted zero-feature batch still decodes.
        let mut ok = Vec::new();
        ok.extend_from_slice(&BATCH_MAGIC.to_le_bytes());
        ok.extend_from_slice(&(MAX_BATCH_SAMPLES as u32).to_le_bytes());
        ok.extend_from_slice(&0u32.to_le_bytes());
        let decoded = ClassifyBatchRequest::decode(&ok).expect("decodes");
        assert_eq!(decoded.samples.len(), MAX_BATCH_SAMPLES);
    }

    #[test]
    fn oversized_batch_fails_encode() {
        // Over the sample-count cap, and over the byte cap in one sample.
        let req = ClassifyBatchRequest {
            samples: vec![vec![0.0]; MAX_BATCH_SAMPLES + 1],
        };
        assert!(matches!(
            req.encode(),
            Err(ProtoError::FrameTooLarge { .. })
        ));
        let req = ClassifyBatchRequest {
            samples: vec![vec![0.0; (MAX_FRAME_BYTES - 12) / 4 + 1]],
        };
        assert!(matches!(
            req.encode(),
            Err(ProtoError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn max_batch_response_fits_in_a_frame() {
        // Any batch the decoder accepts must yield an encodable response.
        let resp = ClassifyBatchResponse {
            classes: vec![0; MAX_BATCH_SAMPLES],
            latency_ns: 1,
        };
        let framed = resp.encode();
        assert!(framed.len() - 4 <= MAX_FRAME_BYTES);
        let mut cursor = std::io::Cursor::new(framed.to_vec());
        let payload = read_frame(&mut cursor).expect("read").expect("frame");
        assert_eq!(
            ClassifyBatchResponse::decode(&payload)
                .expect("decode")
                .classes
                .len(),
            MAX_BATCH_SAMPLES
        );
    }

    #[test]
    fn batch_shape_mismatch_rejected() {
        // Header says 3×2 but only one sample's bytes follow.
        let mut bad = Vec::new();
        bad.extend_from_slice(&BATCH_MAGIC.to_le_bytes());
        bad.extend_from_slice(&3u32.to_le_bytes());
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            ClassifyBatchRequest::decode(&bad),
            Err(ProtoError::Malformed { .. })
        ));
        // Legacy decoder also rejects rather than misparsing.
        assert!(matches!(
            ClassifyRequest::decode(&bad),
            Err(ProtoError::Malformed { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "batch expects")]
    fn ragged_batch_panics_on_encode() {
        let req = ClassifyBatchRequest {
            samples: vec![vec![1.0, 2.0], vec![3.0]],
        };
        let _ = req.encode();
    }

    #[test]
    fn batch_decoders_are_total() {
        use proptest::prelude::*;
        proptest!(|(bytes in proptest::collection::vec(any::<u8>(), 0..600))| {
            let _ = ClassifyBatchRequest::decode(&bytes);
            let _ = ClassifyBatchResponse::decode(&bytes);
            let _ = Request::decode(&bytes);
        });
    }

    #[test]
    fn empty_features_allowed() {
        let req = ClassifyRequest { features: vec![] };
        let framed = req.encode();
        let payload = &framed[4..];
        assert_eq!(ClassifyRequest::decode(payload).expect("decode"), req);
    }

    #[test]
    fn truncated_payload_rejected() {
        let err = ClassifyRequest::decode(&[1, 0, 0, 0, 0, 0]).expect_err("short");
        assert!(matches!(err, ProtoError::Malformed { .. }));
        let err = ClassifyResponse::decode(&[0u8; 5]).expect_err("short");
        assert!(err.to_string().contains("12 bytes"));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut bad = Vec::new();
        bad.extend_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_le_bytes());
        let mut cursor = std::io::Cursor::new(bad);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtoError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn clean_eof_is_none() {
        let mut cursor = std::io::Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut cursor).expect("clean eof").is_none());
    }

    #[test]
    fn arbitrary_bytes_never_panic() {
        use proptest::prelude::*;
        proptest!(|(bytes in proptest::collection::vec(any::<u8>(), 0..600))| {
            // Framing layer: any byte soup either yields frames or errors,
            // never panics or loops.
            let mut cursor = std::io::Cursor::new(bytes.clone());
            for _ in 0..8 {
                match read_frame(&mut cursor) {
                    Ok(Some(payload)) => {
                        // Decoders must also be total.
                        let _ = ClassifyRequest::decode(&payload);
                        let _ = ClassifyResponse::decode(&payload);
                    }
                    Ok(None) | Err(_) => break,
                }
            }
        });
    }

    #[test]
    fn request_roundtrip_is_total_over_feature_vectors() {
        use proptest::prelude::*;
        proptest!(|(features in proptest::collection::vec(any::<f32>(), 0..300))| {
            let req = ClassifyRequest { features: features.clone() };
            let framed = req.encode();
            let mut cursor = std::io::Cursor::new(framed.to_vec());
            let payload = read_frame(&mut cursor).expect("read").expect("frame");
            let decoded = ClassifyRequest::decode(&payload).expect("decode");
            // Bit-exact round trip (NaN-safe comparison).
            prop_assert_eq!(decoded.features.len(), features.len());
            for (a, b) in decoded.features.iter().zip(&features) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        });
    }

    #[test]
    fn classify_with_roundtrip() {
        let req = ClassifyWithRequest {
            model: "bolt".into(),
            features: vec![1.5, -2.0, f32::NAN, f32::INFINITY],
        };
        let framed = req.encode().expect("encodes");
        let mut cursor = std::io::Cursor::new(framed.to_vec());
        let payload = read_frame(&mut cursor).expect("read").expect("frame");
        match Request::decode(&payload).expect("decode") {
            Request::SingleWith(decoded) => {
                assert_eq!(decoded.model, "bolt");
                assert_eq!(decoded.features.len(), 4);
                for (a, b) in decoded.features.iter().zip(&req.features) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            other => panic!("wrong dispatch: {other:?}"),
        }
    }

    #[test]
    fn classify_batch_with_roundtrip() {
        let req = ClassifyBatchWithRequest {
            model: "ranger".into(),
            samples: vec![vec![1.0, 2.0], vec![-3.5, 0.0]],
        };
        let framed = req.encode().expect("encodes");
        let mut cursor = std::io::Cursor::new(framed.to_vec());
        let payload = read_frame(&mut cursor).expect("read").expect("frame");
        assert_eq!(
            Request::decode(&payload).expect("decode"),
            Request::BatchWith(req)
        );
    }

    #[test]
    fn list_models_roundtrip() {
        // Legacy (v2) request: bare opcode, extended flag off.
        let framed = encode_list_models();
        assert_eq!(
            Request::decode(&framed[4..]).expect("decode"),
            Request::ListModels { extended: false }
        );
        // Extended (v3) request sets the flag.
        let framed = encode_list_models_extended();
        assert_eq!(
            Request::decode(&framed[4..]).expect("decode"),
            Request::ListModels { extended: true }
        );
        // Response, extended shape: every field survives.
        let resp = ListModelsResponse {
            models: vec![
                ModelInfo {
                    name: "bolt".into(),
                    engine: "BOLT".into(),
                    requests: 41,
                    is_default: true,
                    version: 7,
                    resident: true,
                    bytes: 4096,
                },
                ModelInfo {
                    name: "rf".into(),
                    engine: "Ranger".into(),
                    requests: 0,
                    is_default: false,
                    version: 2,
                    resident: false,
                    bytes: 123_456,
                },
            ],
        };
        let framed = resp.encode(3).expect("encodes");
        match V2Response::decode(&framed[4..]).expect("decode") {
            V2Response::Models(decoded) => assert_eq!(decoded, resp),
            other => panic!("wrong dispatch: {other:?}"),
        }
    }

    #[test]
    fn legacy_list_models_shape_drops_extended_fields() {
        // A version-2 listing must byte-compatibly match what a v2-only
        // peer expects: the extended fields are absent from the wire and
        // decode back as their in-memory defaults.
        let resp = ListModelsResponse {
            models: vec![ModelInfo {
                name: "bolt".into(),
                engine: "BOLT".into(),
                requests: 41,
                is_default: true,
                version: 7,
                resident: false,
                bytes: 4096,
            }],
        };
        let v2 = resp.encode(2).expect("encodes");
        let v3 = resp.encode(3).expect("encodes");
        assert_eq!(v3.len() - v2.len(), 13, "extended record adds 13 bytes");
        assert_eq!(v2[4 + 4], 2, "version byte echoes the request");
        assert_eq!(v3[4 + 4], 3);
        match V2Response::decode(&v2[4..]).expect("decode") {
            V2Response::Models(decoded) => {
                let m = &decoded.models[0];
                assert_eq!(m.name, "bolt");
                assert_eq!(m.requests, 41);
                assert!(m.is_default);
                // Extended fields fall back to in-memory defaults.
                assert_eq!(m.version, 0);
                assert!(m.resident);
                assert_eq!(m.bytes, 0);
            }
            other => panic!("wrong dispatch: {other:?}"),
        }
    }

    #[test]
    fn v2_responses_roundtrip() {
        let single = ClassifyResponse {
            class: 3,
            latency_ns: 42,
        };
        let framed = single.encode_v2();
        assert_eq!(
            V2Response::decode(&framed[4..]).expect("decode"),
            V2Response::Classify(single)
        );
        let batch = ClassifyBatchResponse {
            classes: vec![1, 0, 2],
            latency_ns: 7,
        };
        let framed = batch.encode_v2();
        assert_eq!(
            V2Response::decode(&framed[4..]).expect("decode"),
            V2Response::Batch(batch)
        );
    }

    #[test]
    fn error_frame_roundtrip() {
        let err = ErrorFrame {
            code: ERR_UNKNOWN_MODEL,
            detail: "no model named \"x\"".into(),
        };
        let framed = err.encode();
        match V2Response::decode(&framed[4..]).expect("decode") {
            V2Response::Error(decoded) => {
                assert_eq!(decoded, err);
                let as_err = decoded.into_error();
                assert!(matches!(
                    as_err,
                    ProtoError::Rejected {
                        code: ERR_UNKNOWN_MODEL,
                        ..
                    }
                ));
            }
            other => panic!("wrong dispatch: {other:?}"),
        }
        // Oversized details truncate rather than overflow the frame.
        let huge = ErrorFrame {
            code: ERR_RETIRED_MODEL,
            detail: "x".repeat(100_000),
        };
        let framed = huge.encode();
        assert!(framed.len() <= 4 + 6 + 3 + 1024);
        assert!(V2Response::decode(&framed[4..]).is_ok());
    }

    #[test]
    fn future_version_is_negotiable_not_fatal() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(V2_MAGIC);
        buf.put_u8(PROTOCOL_VERSION + 1);
        buf.put_u8(OP_CLASSIFY_WITH);
        let payload = buf.freeze();
        assert_eq!(
            Request::decode(&payload).expect("decode"),
            Request::UnsupportedVersion {
                requested: PROTOCOL_VERSION + 1
            }
        );
        // A version below 2 under the v2 magic never existed: corrupt.
        let mut buf = BytesMut::new();
        buf.put_u32_le(V2_MAGIC);
        buf.put_u8(1);
        buf.put_u8(OP_CLASSIFY_WITH);
        assert!(matches!(
            Request::decode(&buf.freeze()),
            Err(ProtoError::Malformed { .. })
        ));
    }

    #[test]
    fn wire_invalid_model_names_rejected() {
        let empty = ClassifyWithRequest {
            model: String::new(),
            features: vec![1.0],
        };
        assert!(matches!(empty.encode(), Err(ProtoError::Malformed { .. })));
        let long = ClassifyWithRequest {
            model: "m".repeat(MAX_MODEL_NAME_BYTES + 1),
            features: vec![1.0],
        };
        assert!(matches!(long.encode(), Err(ProtoError::Malformed { .. })));
        // Zero-length name on the wire is rejected by the decoder too.
        let mut buf = BytesMut::new();
        v2_header(&mut buf, 6 + 1 + 4, OP_CLASSIFY_WITH, 2);
        buf.put_u8(0);
        buf.put_u32_le(0);
        assert!(matches!(
            Request::decode(&buf.freeze()[4..]),
            Err(ProtoError::Malformed { .. })
        ));
    }

    #[test]
    fn hostile_v2_sample_count_rejected_before_allocating() {
        let mut bad = BytesMut::new();
        bad.put_u32_le(V2_MAGIC);
        bad.put_u8(PROTOCOL_VERSION);
        bad.put_u8(OP_CLASSIFY_BATCH_WITH);
        put_name(&mut bad, "m");
        bad.put_u32_le(u32::MAX);
        bad.put_u32_le(0);
        let err = Request::decode(&bad.freeze()).expect_err("rejected");
        assert!(err.to_string().contains("limit"));
    }

    #[test]
    fn max_v2_batch_response_fits_in_a_frame() {
        // Any v2 batch the decoder accepts must yield an encodable
        // response under the same frame cap.
        let resp = ClassifyBatchResponse {
            classes: vec![0; MAX_BATCH_SAMPLES_V2],
            latency_ns: 1,
        };
        let framed = resp.encode_v2();
        assert!(framed.len() - 4 <= MAX_FRAME_BYTES);
        match V2Response::decode(&framed[4..]).expect("decode") {
            V2Response::Batch(decoded) => {
                assert_eq!(decoded.classes.len(), MAX_BATCH_SAMPLES_V2);
            }
            other => panic!("wrong dispatch: {other:?}"),
        }
    }

    #[test]
    fn v2_decoders_are_total() {
        use proptest::prelude::*;
        proptest!(|(bytes in proptest::collection::vec(any::<u8>(), 0..600))| {
            let _ = Request::decode(&bytes);
            let _ = V2Response::decode(&bytes);
            // And with a valid magic prefix grafted on, the bodies are
            // still total.
            let mut prefixed = V2_MAGIC.to_le_bytes().to_vec();
            prefixed.extend_from_slice(&bytes);
            let _ = Request::decode(&prefixed);
            let _ = V2Response::decode(&prefixed);
        });
    }

    #[test]
    fn frame_reader_resumes_across_read_timeouts() {
        use std::io::Write as _;
        use std::os::unix::net::UnixStream;
        // A reader with a timeout far shorter than the writer's dribble
        // cadence: every frame byte arrives in its own timeout window.
        let (mut tx, mut rx) = UnixStream::pair().expect("socketpair");
        rx.set_read_timeout(Some(Duration::from_millis(10)))
            .expect("timeout");
        let req = ClassifyRequest {
            features: vec![1.5, -2.0, 42.0],
        };
        let framed = req.encode();
        let writer = std::thread::spawn(move || {
            for chunk in framed.chunks(1) {
                tx.write_all(chunk).expect("write");
                std::thread::sleep(Duration::from_millis(25));
            }
            tx // keep the stream open until the frame is fully written
        });
        let mut reader = FrameReader::new();
        let mut timeouts = 0u32;
        let payload = loop {
            match reader.read_frame(&mut rx) {
                Ok(Some(payload)) => break payload,
                Ok(None) => panic!("EOF before the frame completed"),
                Err(ProtoError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    timeouts += 1;
                    assert!(timeouts < 10_000, "reader livelocked");
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        };
        assert!(
            timeouts > 0,
            "the dribble must actually cross timeout boundaries"
        );
        assert_eq!(ClassifyRequest::decode(&payload).expect("decode"), req);
        drop(writer.join().expect("writer"));
    }

    #[test]
    fn frame_reader_mid_frame_tracks_partial_state() {
        use std::io::Write as _;
        use std::os::unix::net::UnixStream;
        let (mut tx, mut rx) = UnixStream::pair().expect("socketpair");
        rx.set_read_timeout(Some(Duration::from_millis(5)))
            .expect("timeout");
        let mut reader = FrameReader::new();
        assert!(!reader.mid_frame());
        // Two header bytes, then silence: the reader times out mid-header
        // and must remember both bytes.
        tx.write_all(&[8, 0]).expect("write");
        assert!(matches!(reader.read_frame(&mut rx), Err(ProtoError::Io(_))));
        assert!(reader.mid_frame());
        // Finish the header and payload; the frame completes with the
        // early bytes intact.
        tx.write_all(&[0, 0]).expect("write");
        tx.write_all(&[1, 2, 3, 4, 5, 6, 7, 8]).expect("write");
        let payload = reader
            .read_frame(&mut rx)
            .expect("read")
            .expect("complete frame");
        assert_eq!(payload, [1, 2, 3, 4, 5, 6, 7, 8]);
        assert!(!reader.mid_frame());
    }

    #[test]
    fn frame_reader_back_to_back_frames() {
        // Several frames through one reader, state fully reset between.
        let a = ClassifyRequest {
            features: vec![1.0],
        };
        let b = ClassifyRequest {
            features: vec![2.0, 3.0],
        };
        let mut bytes = a.encode().to_vec();
        bytes.extend_from_slice(&b.encode());
        let mut cursor = std::io::Cursor::new(bytes);
        let mut reader = FrameReader::new();
        let first = reader.read_frame(&mut cursor).expect("read").expect("a");
        assert_eq!(ClassifyRequest::decode(&first).expect("decode"), a);
        let second = reader.read_frame(&mut cursor).expect("read").expect("b");
        assert_eq!(ClassifyRequest::decode(&second).expect("decode"), b);
        assert!(reader.read_frame(&mut cursor).expect("eof").is_none());
    }

    #[test]
    fn frame_reader_eof_mid_header_is_error() {
        // 2 of 4 header bytes then EOF: not a clean boundary.
        let mut cursor = std::io::Cursor::new(vec![7u8, 0]);
        let mut reader = FrameReader::new();
        assert!(matches!(
            reader.read_frame(&mut cursor),
            Err(ProtoError::UnexpectedEof)
        ));
    }

    #[test]
    fn midframe_eof_is_error() {
        let mut bad = Vec::new();
        bad.extend_from_slice(&8u32.to_le_bytes());
        bad.extend_from_slice(&[1, 2, 3]); // only 3 of 8 payload bytes
        let mut cursor = std::io::Cursor::new(bad);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtoError::UnexpectedEof)
        ));
    }
}
