//! Engine adapters for the service.

use bolt_artifact::MappedForest;
use bolt_baselines::InferenceEngine;
use bolt_core::BoltForest;
use std::sync::Arc;

/// Adapts a compiled [`BoltForest`] to the [`InferenceEngine`] interface so
/// the front-end can host Bolt and the baselines interchangeably (§4.5:
/// "the front-end can connect to other forest implementations").
///
/// Register it in a [`ModelRegistry`](crate::ModelRegistry) as
/// `Arc<BoltEngine>` (via [`ServerBuilder`](crate::ServerBuilder)); the
/// adapter itself holds the forest behind an `Arc`, so cloning the engine
/// — or registering one `Arc<BoltEngine>` under several model names —
/// shares a single compiled forest rather than duplicating it.
#[derive(Clone, Debug)]
pub struct BoltEngine {
    bolt: Arc<BoltForest>,
}

impl BoltEngine {
    /// Wraps a compiled forest.
    #[must_use]
    pub fn new(bolt: Arc<BoltForest>) -> Self {
        Self { bolt }
    }

    /// The wrapped forest.
    #[must_use]
    pub fn bolt(&self) -> &BoltForest {
        &self.bolt
    }
}

impl InferenceEngine for BoltEngine {
    fn name(&self) -> &'static str {
        "BOLT"
    }

    fn classify(&self, sample: &[f32]) -> u32 {
        self.bolt.classify(sample)
    }

    fn classify_batch(&self, samples: &[&[f32]]) -> Vec<u32> {
        let shards = std::thread::available_parallelism().map_or(1, usize::from);
        self.bolt.classify_batch_sharded(samples, shards)
    }
}

/// Adapts a memory-mapped `.blt` artifact ([`MappedForest`]) to the
/// [`InferenceEngine`] interface, so `boltd` can serve a model straight off
/// disk — zero heap copy of the structures — and hot-swap it for a freshly
/// mapped file under live traffic via
/// [`ModelRegistry::register`](crate::ModelRegistry::register).
#[derive(Clone)]
pub struct ArtifactEngine {
    model: Arc<MappedForest>,
}

impl ArtifactEngine {
    /// Wraps an already-mapped artifact.
    #[must_use]
    pub fn new(model: Arc<MappedForest>) -> Self {
        Self { model }
    }

    /// Maps and validates the artifact at `path`.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self, bolt_artifact::ArtifactError> {
        Ok(Self::new(Arc::new(MappedForest::open(path)?)))
    }

    /// The wrapped mapped model.
    #[must_use]
    pub fn model(&self) -> &MappedForest {
        &self.model
    }
}

impl InferenceEngine for ArtifactEngine {
    fn name(&self) -> &'static str {
        "BOLT-BLT"
    }

    fn classify(&self, sample: &[f32]) -> u32 {
        self.model.classify(sample)
    }

    fn classify_batch(&self, samples: &[&[f32]]) -> Vec<u32> {
        let shards = std::thread::available_parallelism().map_or(1, usize::from);
        self.model.classify_batch_sharded(samples, shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_core::BoltConfig;
    use bolt_forest::{Dataset, ForestConfig, RandomForest};

    #[test]
    fn adapter_batches_match_forest() {
        let rows: Vec<Vec<f32>> = (0..40).map(|i| vec![(i % 4) as f32]).collect();
        let labels: Vec<u32> = (0..40).map(|i| u32::from(i % 4 > 1)).collect();
        let data = Dataset::from_rows(rows, labels, 2).expect("valid");
        let forest = RandomForest::train(&data, &ForestConfig::new(3).with_seed(5));
        let bolt =
            Arc::new(BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles"));
        let engine = BoltEngine::new(bolt);
        let samples: Vec<&[f32]> = (0..data.len()).map(|i| data.sample(i)).collect();
        let classes = engine.classify_batch(&samples);
        for (i, &class) in classes.iter().enumerate() {
            assert_eq!(class, forest.predict(samples[i]));
        }
    }

    #[test]
    fn adapter_matches_forest() {
        let rows: Vec<Vec<f32>> = (0..40).map(|i| vec![(i % 4) as f32]).collect();
        let labels: Vec<u32> = (0..40).map(|i| u32::from(i % 4 > 1)).collect();
        let data = Dataset::from_rows(rows, labels, 2).expect("valid");
        let forest = RandomForest::train(&data, &ForestConfig::new(3).with_seed(5));
        let bolt =
            Arc::new(BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles"));
        let engine = BoltEngine::new(bolt);
        assert_eq!(engine.name(), "BOLT");
        for (sample, _) in data.iter() {
            assert_eq!(engine.classify(sample), forest.predict(sample));
        }
    }
}
