//! The model registry: one serving process, many engines.
//!
//! §4.5 frames the classification front-end as engine-agnostic ("the
//! front-end can connect to other forest implementations"). The
//! [`ModelRegistry`] makes that first-class: a concurrent map from model
//! name to a shared [`InferenceEngine`], with per-model statistics,
//! atomic hot-swap under live traffic, and a *default* model that legacy
//! (unrouted) protocol frames fall back to.
//!
//! Concurrency model: the registry holds one `RwLock` over its whole
//! state. Request threads take a read lock only long enough to clone the
//! resolved model's `Arc` handle, then classify and book statistics with
//! no registry lock held — so a [`swap`](ModelRegistry::register) or
//! [`retire`](ModelRegistry::retire) never waits on in-flight inference,
//! and in-flight requests hold the *old* engine alive until they finish.
//! Statistics are keyed by model *name* and survive engine swaps, so a
//! name's request count is the sum over every engine that ever served it.

use crate::proto::{ModelInfo, MAX_MODEL_NAME_BYTES};
use crate::server::ServerStats;
use bolt_baselines::InferenceEngine;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Why a model lookup failed; maps 1:1 onto the protocol's structured
/// error codes.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteError {
    /// The name has never been registered.
    UnknownModel(String),
    /// The name was registered once but has since been retired.
    RetiredModel(String),
    /// A default-model lookup was made but no default is configured.
    NoDefaultModel,
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownModel(name) => write!(f, "no model registered as {name:?}"),
            Self::RetiredModel(name) => write!(f, "model {name:?} has been retired"),
            Self::NoDefaultModel => write!(f, "no default model configured"),
        }
    }
}

impl std::error::Error for RouteError {}

/// A registered model: the engine plus the name's statistics slot.
///
/// The stats slot is shared *across* hot-swaps of the same name, so
/// booking into a handle resolved before a swap still lands in the name's
/// totals.
pub struct ModelHandle {
    engine: Arc<dyn InferenceEngine>,
    stats: Arc<Mutex<ServerStats>>,
}

impl ModelHandle {
    /// The engine backing this model right now.
    #[must_use]
    pub fn engine(&self) -> &Arc<dyn InferenceEngine> {
        &self.engine
    }

    /// Snapshot of the model's statistics.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        *self.stats.lock()
    }

    /// Books `requests` answered in `latency_ns` total into the model's
    /// statistics.
    ///
    /// Both counters saturate at `u64::MAX` instead of wrapping: a
    /// long-lived server (or a load harness hammering one) accumulates
    /// latency without bound, and an unchecked `+` would panic in debug
    /// builds and silently wrap — corrupting the mean — in release.
    pub fn book(&self, requests: u64, latency_ns: u64) {
        let mut stats = self.stats.lock();
        stats.requests = stats.requests.saturating_add(requests);
        stats.total_latency_ns = stats.total_latency_ns.saturating_add(latency_ns);
    }
}

impl std::fmt::Debug for ModelHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelHandle")
            .field("engine", &self.engine.name())
            .finish()
    }
}

struct RegistryState {
    models: BTreeMap<String, Arc<ModelHandle>>,
    /// Names that were registered once and later retired, with their
    /// accumulated statistics, so (a) lookups can distinguish "retired"
    /// from "never existed" and (b) totals stay conserved across retire.
    retired: BTreeMap<String, Arc<Mutex<ServerStats>>>,
    default_model: Option<String>,
}

/// A concurrent map from model name to inference engine, shared by every
/// connection of a server. Cheap to clone (all clones view one state), so
/// it can be handed to an operator thread for live reconfiguration while
/// the server routes traffic through it.
///
/// # Examples
///
/// ```
/// use bolt_server::ModelRegistry;
/// use bolt_baselines::{InferenceEngine, ScikitLikeForest};
/// use bolt_forest::{Dataset, ForestConfig, RandomForest};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rows: Vec<Vec<f32>> = (0..40).map(|i| vec![(i % 4) as f32]).collect();
/// let labels: Vec<u32> = (0..40).map(|i| u32::from(i % 4 > 1)).collect();
/// let data = Dataset::from_rows(rows, labels, 2)?;
/// let forest = RandomForest::train(&data, &ForestConfig::new(3).with_seed(1));
/// let engine: Arc<dyn InferenceEngine> = Arc::new(ScikitLikeForest::from_forest(&forest));
///
/// let registry = ModelRegistry::new();
/// registry.register("scikit", Arc::clone(&engine));
/// // One engine can back many names without re-compilation:
/// registry.register("scikit-alias", engine);
/// registry.set_default("scikit")?;
/// let model = registry.resolve(Some("scikit-alias"))?;
/// assert!(model.engine().classify(&[3.0]) < 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct ModelRegistry {
    state: Arc<RwLock<RegistryState>>,
}

impl ModelRegistry {
    /// An empty registry with no default model.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: Arc::new(RwLock::new(RegistryState {
                models: BTreeMap::new(),
                retired: BTreeMap::new(),
                default_model: None,
            })),
        }
    }

    /// Registers `engine` under `name`, hot-swapping atomically if the
    /// name is already taken: requests resolved after this call see the
    /// new engine, requests already in flight finish on the old one, and
    /// the name's statistics carry over. The first registration becomes
    /// the default model if none is configured yet. Re-registering a
    /// retired name revives it (with its historical statistics).
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty or longer than [`MAX_MODEL_NAME_BYTES`]
    /// bytes — such a name could never be addressed over the wire.
    pub fn register(&self, name: impl Into<String>, engine: Arc<dyn InferenceEngine>) {
        let name = name.into();
        assert!(
            !name.is_empty() && name.len() <= MAX_MODEL_NAME_BYTES,
            "model name must be 1..={MAX_MODEL_NAME_BYTES} bytes, got {:?}",
            name
        );
        let mut state = self.state.write();
        let stats = state
            .retired
            .remove(&name)
            .or_else(|| {
                state
                    .models
                    .get(&name)
                    .map(|handle| Arc::clone(&handle.stats))
            })
            .unwrap_or_else(|| Arc::new(Mutex::new(ServerStats::default())));
        state
            .models
            .insert(name.clone(), Arc::new(ModelHandle { engine, stats }));
        if state.default_model.is_none() {
            state.default_model = Some(name);
        }
    }

    /// Retires `name`: the model disappears from routing and listing, but
    /// requests that already resolved it finish unharmed, its statistics
    /// keep counting toward [`total_stats`](Self::total_stats), and later
    /// lookups get the *retired* (not *unknown*) error. Retiring the
    /// default model leaves the server with no default until
    /// [`set_default`](Self::set_default) is called again.
    ///
    /// Returns `false` if no such model is registered.
    pub fn retire(&self, name: &str) -> bool {
        let mut state = self.state.write();
        let Some(handle) = state.models.remove(name) else {
            return false;
        };
        state
            .retired
            .insert(name.to_owned(), Arc::clone(&handle.stats));
        if state.default_model.as_deref() == Some(name) {
            state.default_model = None;
        }
        true
    }

    /// Makes `name` the model legacy (unrouted) frames fall back to.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::UnknownModel`] / [`RouteError::RetiredModel`]
    /// if the name is not currently registered.
    pub fn set_default(&self, name: &str) -> Result<(), RouteError> {
        let mut state = self.state.write();
        if !state.models.contains_key(name) {
            return Err(if state.retired.contains_key(name) {
                RouteError::RetiredModel(name.to_owned())
            } else {
                RouteError::UnknownModel(name.to_owned())
            });
        }
        state.default_model = Some(name.to_owned());
        Ok(())
    }

    /// The current default model's name, if one is configured.
    #[must_use]
    pub fn default_model(&self) -> Option<String> {
        self.state.read().default_model.clone()
    }

    /// Resolves a model by name (`None` → the default model) to a handle
    /// that stays valid — engine alive, statistics attached — even if the
    /// model is swapped or retired while the request is in flight.
    ///
    /// # Errors
    ///
    /// Returns the [`RouteError`] matching the protocol's structured
    /// error codes.
    pub fn resolve(&self, name: Option<&str>) -> Result<Arc<ModelHandle>, RouteError> {
        let state = self.state.read();
        let name = match name {
            Some(name) => name,
            None => state
                .default_model
                .as_deref()
                .ok_or(RouteError::NoDefaultModel)?,
        };
        state.models.get(name).map(Arc::clone).ok_or_else(|| {
            if state.retired.contains_key(name) {
                RouteError::RetiredModel(name.to_owned())
            } else {
                RouteError::UnknownModel(name.to_owned())
            }
        })
    }

    /// Every registered model, sorted by name, with live request counts —
    /// the payload of the protocol's `ListModels` op.
    #[must_use]
    pub fn list(&self) -> Vec<ModelInfo> {
        let state = self.state.read();
        state
            .models
            .iter()
            .map(|(name, handle)| ModelInfo {
                name: name.clone(),
                engine: handle.engine.name().to_owned(),
                requests: handle.stats.lock().requests,
                is_default: state.default_model.as_deref() == Some(name),
            })
            .collect()
    }

    /// Snapshot of one model's statistics (active or retired).
    #[must_use]
    pub fn stats(&self, name: &str) -> Option<ServerStats> {
        let state = self.state.read();
        state
            .models
            .get(name)
            .map(|handle| *handle.stats.lock())
            .or_else(|| state.retired.get(name).map(|stats| *stats.lock()))
    }

    /// Aggregate statistics across every model, including retired ones —
    /// total requests here always equals the sum of every request the
    /// server ever booked.
    #[must_use]
    pub fn total_stats(&self) -> ServerStats {
        let state = self.state.read();
        let mut total = ServerStats::default();
        for stats in state
            .models
            .values()
            .map(|handle| &handle.stats)
            .chain(state.retired.values())
        {
            let stats = stats.lock();
            total.requests = total.requests.saturating_add(stats.requests);
            // Saturate like `ModelHandle::book`: summing many models'
            // accumulated latencies must never overflow the aggregate.
            total.total_latency_ns = total
                .total_latency_ns
                .saturating_add(stats.total_latency_ns);
        }
        total
    }
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.read();
        f.debug_struct("ModelRegistry")
            .field("models", &state.models.keys().collect::<Vec<_>>())
            .field("default_model", &state.default_model)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_baselines::{RangerLikeForest, ScikitLikeForest};
    use bolt_forest::{Dataset, ForestConfig, RandomForest};

    fn forest() -> RandomForest {
        let rows: Vec<Vec<f32>> = (0..40).map(|i| vec![(i % 4) as f32]).collect();
        let labels: Vec<u32> = (0..40).map(|i| u32::from(i % 4 > 1)).collect();
        let data = Dataset::from_rows(rows, labels, 2).expect("valid");
        RandomForest::train(&data, &ForestConfig::new(3).with_seed(5))
    }

    #[test]
    fn first_registration_becomes_default() {
        let registry = ModelRegistry::new();
        assert_eq!(
            registry.resolve(None).expect_err("empty"),
            RouteError::NoDefaultModel
        );
        let f = forest();
        registry.register("a", Arc::new(ScikitLikeForest::from_forest(&f)));
        registry.register("b", Arc::new(RangerLikeForest::from_forest(&f)));
        assert_eq!(registry.default_model().as_deref(), Some("a"));
        assert_eq!(
            registry.resolve(None).expect("default").engine().name(),
            "Scikit"
        );
        registry.set_default("b").expect("exists");
        assert_eq!(
            registry.resolve(None).expect("default").engine().name(),
            "Ranger"
        );
    }

    #[test]
    fn unknown_vs_retired_are_distinct_errors() {
        let registry = ModelRegistry::new();
        let f = forest();
        registry.register("m", Arc::new(ScikitLikeForest::from_forest(&f)));
        assert_eq!(
            registry.resolve(Some("ghost")).expect_err("unknown"),
            RouteError::UnknownModel("ghost".into())
        );
        assert!(registry.retire("m"));
        assert!(!registry.retire("m"), "double retire is a no-op");
        assert_eq!(
            registry.resolve(Some("m")).expect_err("retired"),
            RouteError::RetiredModel("m".into())
        );
        // Retiring the default leaves no default configured.
        assert_eq!(
            registry.resolve(None).expect_err("no default"),
            RouteError::NoDefaultModel
        );
    }

    #[test]
    fn stats_survive_swap_and_retire() {
        let registry = ModelRegistry::new();
        let f = forest();
        registry.register("m", Arc::new(ScikitLikeForest::from_forest(&f)));
        let before_swap = registry.resolve(Some("m")).expect("resolves");
        before_swap.book(3, 300);
        // Hot-swap the engine behind the name.
        registry.register("m", Arc::new(RangerLikeForest::from_forest(&f)));
        // A handle resolved before the swap still books into the name.
        before_swap.book(2, 200);
        assert_eq!(registry.stats("m").expect("stats").requests, 5);
        assert_eq!(
            registry
                .resolve(Some("m"))
                .expect("resolves")
                .engine()
                .name(),
            "Ranger"
        );
        // Retire: stats stay visible and conserved in the total.
        assert!(registry.retire("m"));
        assert_eq!(registry.stats("m").expect("retired stats").requests, 5);
        assert_eq!(registry.total_stats().requests, 5);
        // Revival restores the historical counts.
        registry.register("m", Arc::new(ScikitLikeForest::from_forest(&f)));
        assert_eq!(registry.stats("m").expect("revived stats").requests, 5);
        assert_eq!(registry.total_stats().requests, 5);
    }

    #[test]
    fn list_is_sorted_and_flags_default() {
        let registry = ModelRegistry::new();
        let f = forest();
        registry.register("zeta", Arc::new(ScikitLikeForest::from_forest(&f)));
        registry.register("alpha", Arc::new(RangerLikeForest::from_forest(&f)));
        let listed = registry.list();
        assert_eq!(
            listed.iter().map(|m| m.name.as_str()).collect::<Vec<_>>(),
            ["alpha", "zeta"]
        );
        assert!(listed[1].is_default, "first registration is default");
        assert!(!listed[0].is_default);
        assert_eq!(listed[0].engine, "Ranger");
    }

    #[test]
    fn one_engine_backs_many_names() {
        let registry = ModelRegistry::new();
        let f = forest();
        let engine: Arc<dyn InferenceEngine> = Arc::new(ScikitLikeForest::from_forest(&f));
        registry.register("a", Arc::clone(&engine));
        registry.register("b", engine);
        let a = registry.resolve(Some("a")).expect("a");
        let b = registry.resolve(Some("b")).expect("b");
        assert!(Arc::ptr_eq(a.engine(), b.engine()), "no re-compilation");
        // ...but statistics are per *name*.
        a.book(1, 10);
        assert_eq!(registry.stats("a").expect("a").requests, 1);
        assert_eq!(registry.stats("b").expect("b").requests, 0);
    }

    #[test]
    fn booking_saturates_instead_of_overflowing() {
        let registry = ModelRegistry::new();
        let f = forest();
        registry.register("m", Arc::new(ScikitLikeForest::from_forest(&f)));
        registry.register("n", Arc::new(ScikitLikeForest::from_forest(&f)));
        let handle = registry.resolve(Some("m")).expect("resolves");
        // Drive the latency accumulator to the boundary, then past it:
        // pre-fix this panics in debug builds and wraps in release.
        handle.book(1, u64::MAX - 5);
        handle.book(1, 100);
        let stats = registry.stats("m").expect("stats");
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.total_latency_ns, u64::MAX);
        // The mean stays finite and sane rather than collapsing to ~0 as
        // a wrapped sum would.
        assert!(stats.mean_latency_ns() > 1e18);
        // The aggregate across models saturates too instead of wrapping
        // when two saturated counters are summed.
        registry
            .resolve(Some("n"))
            .expect("resolves")
            .book(3, u64::MAX);
        let total = registry.total_stats();
        assert_eq!(total.requests, 5);
        assert_eq!(total.total_latency_ns, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "model name must be")]
    fn unaddressable_name_is_rejected() {
        let registry = ModelRegistry::new();
        registry.register("", Arc::new(ScikitLikeForest::from_forest(&forest())));
    }
}
