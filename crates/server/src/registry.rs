//! The model registry: one serving process, many engines.
//!
//! §4.5 frames the classification front-end as engine-agnostic ("the
//! front-end can connect to other forest implementations"). The
//! [`ModelRegistry`] makes that first-class: a concurrent map from model
//! name to a shared [`InferenceEngine`], with per-model statistics,
//! atomic hot-swap under live traffic, and a *default* model that legacy
//! (unrouted) protocol frames fall back to.
//!
//! Lifecycle mutations are fallible and say why: [`register`]
//! (ModelRegistry::register) refuses to silently overwrite an active
//! name, [`swap`](ModelRegistry::swap) refuses to invent one, and
//! [`retire`](ModelRegistry::retire) refuses to strand the default
//! route — each failure is a typed [`StoreError`] the caller (boltd, the
//! [`crate::store::ModelStore`], tests) can match on instead of
//! re-deriving the check.
//!
//! Concurrency model: the registry holds one `RwLock` over its whole
//! state. Request threads take a read lock only long enough to clone the
//! resolved model's `Arc` handle, then classify and book statistics with
//! no registry lock held — so a [`swap`](ModelRegistry::swap) or
//! [`retire`](ModelRegistry::retire) never waits on in-flight inference,
//! and in-flight requests hold the *old* engine alive until they finish.
//! In front of the lock sits a shared, insert-only
//! [`NameBloom`](crate::store::NameBloom): a name that was never
//! registered (and is not in the model directory) is rejected from
//! atomic reads alone, so unknown-model traffic costs O(1) and no lock.
//! Statistics are keyed by model *name* and survive engine swaps, so a
//! name's request count is the sum over every engine that ever served it.

use crate::proto::{ModelInfo, MAX_MODEL_NAME_BYTES};
use crate::server::ServerStats;
use crate::store::{NameBloom, StoreError};
use bolt_baselines::InferenceEngine;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Why a model lookup failed; maps 1:1 onto the protocol's structured
/// error codes.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteError {
    /// The name has never been registered.
    UnknownModel(String),
    /// The name was registered once but has since been retired.
    RetiredModel(String),
    /// A default-model lookup was made but no default is configured.
    NoDefaultModel,
    /// The model is cataloged but its artifact failed to map (I/O
    /// error or corruption) — the server's fault, not the client's.
    LoadFailed(String),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownModel(name) => write!(f, "no model registered as {name:?}"),
            Self::RetiredModel(name) => write!(f, "model {name:?} has been retired"),
            Self::NoDefaultModel => write!(f, "no default model configured"),
            Self::LoadFailed(detail) => write!(f, "model failed to load: {detail}"),
        }
    }
}

impl std::error::Error for RouteError {}

/// A registered model: the engine plus the name's statistics slot.
///
/// The stats slot is shared *across* hot-swaps of the same name, so
/// booking into a handle resolved before a swap still lands in the name's
/// totals.
pub struct ModelHandle {
    engine: Arc<dyn InferenceEngine>,
    stats: Arc<Mutex<ServerStats>>,
    /// Logical timestamp of the last resolve that returned this handle,
    /// from the registry's [`ModelRegistry`] clock — the LRU recency the
    /// store's eviction policy orders by.
    last_used: AtomicU64,
}

impl ModelHandle {
    /// The engine backing this model right now.
    #[must_use]
    pub fn engine(&self) -> &Arc<dyn InferenceEngine> {
        &self.engine
    }

    /// Snapshot of the model's statistics.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        *self.stats.lock()
    }

    /// Books `requests` answered in `latency_ns` total into the model's
    /// statistics.
    ///
    /// Both counters saturate at `u64::MAX` instead of wrapping: a
    /// long-lived server (or a load harness hammering one) accumulates
    /// latency without bound, and an unchecked `+` would panic in debug
    /// builds and silently wrap — corrupting the mean — in release.
    pub fn book(&self, requests: u64, latency_ns: u64) {
        let mut stats = self.stats.lock();
        stats.requests = stats.requests.saturating_add(requests);
        stats.total_latency_ns = stats.total_latency_ns.saturating_add(latency_ns);
    }
}

impl std::fmt::Debug for ModelHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelHandle")
            .field("engine", &self.engine.name())
            .finish()
    }
}

struct RegistryState {
    models: BTreeMap<String, Arc<ModelHandle>>,
    /// Names that were registered once and later retired, with their
    /// accumulated statistics, so (a) lookups can distinguish "retired"
    /// from "never existed" and (b) totals stay conserved across retire.
    retired: BTreeMap<String, Arc<Mutex<ServerStats>>>,
    /// Names the store evicted to reclaim resident bytes. Unlike
    /// `retired`, a parked name is still routable — the store reloads it
    /// from its artifact on the next request — so lookups report it as
    /// *unknown* here (the store intercepts that), while its statistics
    /// stay conserved and reattach on reload.
    parked: BTreeMap<String, Arc<Mutex<ServerStats>>>,
    default_model: Option<String>,
}

/// A concurrent map from model name to inference engine, shared by every
/// connection of a server. Cheap to clone (all clones view one state), so
/// it can be handed to an operator thread for live reconfiguration while
/// the server routes traffic through it.
///
/// # Examples
///
/// ```
/// use bolt_server::ModelRegistry;
/// use bolt_baselines::{InferenceEngine, ScikitLikeForest};
/// use bolt_forest::{Dataset, ForestConfig, RandomForest};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rows: Vec<Vec<f32>> = (0..40).map(|i| vec![(i % 4) as f32]).collect();
/// let labels: Vec<u32> = (0..40).map(|i| u32::from(i % 4 > 1)).collect();
/// let data = Dataset::from_rows(rows, labels, 2)?;
/// let forest = RandomForest::train(&data, &ForestConfig::new(3).with_seed(1));
/// let engine: Arc<dyn InferenceEngine> = Arc::new(ScikitLikeForest::from_forest(&forest));
///
/// let registry = ModelRegistry::new();
/// registry.register("scikit", Arc::clone(&engine))?;
/// // One engine can back many names without re-compilation:
/// registry.register("scikit-alias", engine)?;
/// registry.set_default("scikit")?;
/// let model = registry.resolve(Some("scikit-alias"))?;
/// assert!(model.engine().classify(&[3.0]) < 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct ModelRegistry {
    state: Arc<RwLock<RegistryState>>,
    /// Insert-only filter over every name this process has ever known
    /// (registered here or discovered in the store's model directory).
    bloom: Arc<NameBloom>,
    /// Monotone logical clock stamped into handles on resolve.
    clock: Arc<AtomicU64>,
}

impl ModelRegistry {
    /// An empty registry with no default model.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: Arc::new(RwLock::new(RegistryState {
                models: BTreeMap::new(),
                retired: BTreeMap::new(),
                parked: BTreeMap::new(),
                default_model: None,
            })),
            bloom: Arc::new(NameBloom::new()),
            clock: Arc::new(AtomicU64::new(1)),
        }
    }

    fn check_name(name: &str) -> Result<(), StoreError> {
        if name.is_empty() || name.len() > MAX_MODEL_NAME_BYTES {
            return Err(StoreError::InvalidName(name.to_owned()));
        }
        Ok(())
    }

    /// Registers `engine` under a **new** (or previously retired) name.
    /// The first registration becomes the default model if none is
    /// configured yet. Re-registering a retired name revives it with its
    /// historical statistics.
    ///
    /// # Errors
    ///
    /// [`StoreError::Duplicate`] if the name is already serving (use
    /// [`swap`](Self::swap) to replace a live model — the distinction is
    /// the point: deploy tooling that *meant* to create must not
    /// silently clobber), [`StoreError::InvalidName`] if the name is
    /// empty or longer than [`MAX_MODEL_NAME_BYTES`] bytes — such a name
    /// could never be addressed over the wire.
    pub fn register(
        &self,
        name: impl Into<String>,
        engine: Arc<dyn InferenceEngine>,
    ) -> Result<(), StoreError> {
        let name = name.into();
        Self::check_name(&name)?;
        let mut state = self.state.write();
        if state.models.contains_key(&name) {
            return Err(StoreError::Duplicate(name));
        }
        let stats = state
            .retired
            .remove(&name)
            .or_else(|| state.parked.remove(&name))
            .unwrap_or_else(|| Arc::new(Mutex::new(ServerStats::default())));
        self.bloom.insert(&name);
        state.models.insert(
            name.clone(),
            Arc::new(ModelHandle {
                engine,
                stats,
                last_used: AtomicU64::new(0),
            }),
        );
        if state.default_model.is_none() {
            state.default_model = Some(name);
        }
        Ok(())
    }

    /// Hot-swaps the engine behind an **existing** name, atomically:
    /// requests resolved after this call see the new engine, requests
    /// already in flight finish on the old one, and the name's
    /// statistics carry over.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unknown`] if the name was never registered,
    /// [`StoreError::Retired`] if it has been retired (revive it with
    /// [`register`](Self::register) instead).
    pub fn swap(&self, name: &str, engine: Arc<dyn InferenceEngine>) -> Result<(), StoreError> {
        let mut state = self.state.write();
        let Some(current) = state.models.get(name) else {
            return Err(if state.retired.contains_key(name) {
                StoreError::Retired(name.to_owned())
            } else {
                StoreError::Unknown(name.to_owned())
            });
        };
        let stats = Arc::clone(&current.stats);
        let last_used = current.last_used.load(Ordering::Relaxed);
        state.models.insert(
            name.to_owned(),
            Arc::new(ModelHandle {
                engine,
                stats,
                last_used: AtomicU64::new(last_used),
            }),
        );
        Ok(())
    }

    /// Retires `name`: the model disappears from routing and listing, but
    /// requests that already resolved it finish unharmed, its statistics
    /// keep counting toward [`total_stats`](Self::total_stats), and later
    /// lookups get the *retired* (not *unknown*) error.
    ///
    /// # Errors
    ///
    /// [`StoreError::DefaultInUse`] if the name is the current default —
    /// retiring it would break every legacy (unrouted) client, so the
    /// caller must move or [`clear_default`](Self::clear_default) first.
    /// [`StoreError::Retired`] if already retired, [`StoreError::Unknown`]
    /// if never registered.
    pub fn retire(&self, name: &str) -> Result<(), StoreError> {
        let mut state = self.state.write();
        if state.default_model.as_deref() == Some(name) {
            return Err(StoreError::DefaultInUse(name.to_owned()));
        }
        if !state.models.contains_key(name) {
            return Err(if state.retired.contains_key(name) {
                StoreError::Retired(name.to_owned())
            } else {
                StoreError::Unknown(name.to_owned())
            });
        }
        let handle = state.models.remove(name).expect("checked above");
        state
            .retired
            .insert(name.to_owned(), Arc::clone(&handle.stats));
        Ok(())
    }

    /// Makes `name` the model legacy (unrouted) frames fall back to.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unknown`] / [`StoreError::Retired`] if the name is
    /// not currently registered.
    pub fn set_default(&self, name: &str) -> Result<(), StoreError> {
        let mut state = self.state.write();
        if !state.models.contains_key(name) {
            return Err(if state.retired.contains_key(name) {
                StoreError::Retired(name.to_owned())
            } else {
                StoreError::Unknown(name.to_owned())
            });
        }
        state.default_model = Some(name.to_owned());
        Ok(())
    }

    /// Removes the default route; legacy frames are answered with a
    /// structured *no default model* error until a new default is set.
    /// This is the sanctioned prelude to retiring the default model.
    pub fn clear_default(&self) {
        self.state.write().default_model = None;
    }

    /// The current default model's name, if one is configured.
    #[must_use]
    pub fn default_model(&self) -> Option<String> {
        self.state.read().default_model.clone()
    }

    /// Resolves a model by name (`None` → the default model) to a handle
    /// that stays valid — engine alive, statistics attached — even if the
    /// model is swapped or retired while the request is in flight.
    ///
    /// # Errors
    ///
    /// Returns the [`RouteError`] matching the protocol's structured
    /// error codes.
    pub fn resolve(&self, name: Option<&str>) -> Result<Arc<ModelHandle>, RouteError> {
        // Fast path: a name the process has never heard of (not
        // registered, not retired, not in the model directory) fails the
        // bloom check and is rejected without touching the lock.
        if let Some(name) = name {
            if !self.bloom.may_contain(name) {
                return Err(RouteError::UnknownModel(name.to_owned()));
            }
        }
        let state = self.state.read();
        let name = match name {
            Some(name) => name,
            None => state
                .default_model
                .as_deref()
                .ok_or(RouteError::NoDefaultModel)?,
        };
        let handle = state.models.get(name).map(Arc::clone).ok_or_else(|| {
            if state.retired.contains_key(name) {
                RouteError::RetiredModel(name.to_owned())
            } else {
                RouteError::UnknownModel(name.to_owned())
            }
        })?;
        handle.last_used.store(
            self.clock.fetch_add(1, Ordering::Relaxed),
            Ordering::Relaxed,
        );
        Ok(handle)
    }

    /// Every registered model, sorted by name, with live request counts —
    /// the payload of the protocol's `ListModels` op. Plain registered
    /// engines carry no artifact metadata (`version` 0, `bytes` 0,
    /// `resident` true); the store's list overlays the real values for
    /// directory-managed models.
    #[must_use]
    pub fn list(&self) -> Vec<ModelInfo> {
        let state = self.state.read();
        state
            .models
            .iter()
            .map(|(name, handle)| ModelInfo {
                name: name.clone(),
                engine: handle.engine.name().to_owned(),
                requests: handle.stats.lock().requests,
                is_default: state.default_model.as_deref() == Some(name),
                version: 0,
                resident: true,
                bytes: 0,
            })
            .collect()
    }

    /// Snapshot of one model's statistics (active, retired, or evicted).
    #[must_use]
    pub fn stats(&self, name: &str) -> Option<ServerStats> {
        let state = self.state.read();
        state
            .models
            .get(name)
            .map(|handle| *handle.stats.lock())
            .or_else(|| state.retired.get(name).map(|stats| *stats.lock()))
            .or_else(|| state.parked.get(name).map(|stats| *stats.lock()))
    }

    /// Aggregate statistics across every model, including retired and
    /// evicted ones — total requests here always equals the sum of every
    /// request the server ever booked.
    #[must_use]
    pub fn total_stats(&self) -> ServerStats {
        let state = self.state.read();
        let mut total = ServerStats::default();
        for stats in state
            .models
            .values()
            .map(|handle| &handle.stats)
            .chain(state.retired.values())
            .chain(state.parked.values())
        {
            let stats = stats.lock();
            total.requests = total.requests.saturating_add(stats.requests);
            // Saturate like `ModelHandle::book`: summing many models'
            // accumulated latencies must never overflow the aggregate.
            total.total_latency_ns = total
                .total_latency_ns
                .saturating_add(stats.total_latency_ns);
        }
        total
    }

    /// The shared name filter; the store inserts directory-scan and
    /// WAL-replay names so cold catalog models pass the resolve fast
    /// path.
    pub(crate) fn bloom(&self) -> &Arc<NameBloom> {
        &self.bloom
    }

    /// Inserts a resident engine for `name` without lifecycle checks,
    /// reattaching parked (evicted) or retired statistics. The store's
    /// cold-load path: the catalog has already validated the lifecycle,
    /// so a plain duplicate check would race reload against eviction.
    pub(crate) fn insert_resident(&self, name: &str, engine: Arc<dyn InferenceEngine>) {
        let mut state = self.state.write();
        let stats = state
            .parked
            .remove(name)
            .or_else(|| state.retired.remove(name))
            .or_else(|| {
                state
                    .models
                    .get(name)
                    .map(|handle| Arc::clone(&handle.stats))
            })
            .unwrap_or_else(|| Arc::new(Mutex::new(ServerStats::default())));
        self.bloom.insert(name);
        state.models.insert(
            name.to_owned(),
            Arc::new(ModelHandle {
                engine,
                stats,
                last_used: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)),
            }),
        );
    }

    /// Unmaps `name` from routing, parking its statistics for reload.
    /// In-flight requests keep the engine alive through their `Arc`;
    /// the artifact's mapping drops when the last clone does. The
    /// default route is left pointing at the name — the store reloads
    /// it on the next legacy frame. Returns whether the name was
    /// resident.
    pub(crate) fn remove_resident(&self, name: &str) -> bool {
        let mut state = self.state.write();
        let Some(handle) = state.models.remove(name) else {
            return false;
        };
        state
            .parked
            .insert(name.to_owned(), Arc::clone(&handle.stats));
        true
    }

    /// Points the default route at `name` without requiring residency —
    /// WAL replay restores defaults whose artifact has not been mapped
    /// yet (the store cold-loads on first use).
    pub(crate) fn set_default_unchecked(&self, name: &str) {
        self.state.write().default_model = Some(name.to_owned());
    }

    /// Retires `name` even when it is not resident (evicted or never
    /// loaded) — WAL replay and store-level retire of cold catalog
    /// entries. Statistics (live or parked) move to the retired ledger.
    pub(crate) fn retire_unchecked(&self, name: &str) {
        let mut state = self.state.write();
        let stats = state
            .models
            .remove(name)
            .map(|handle| Arc::clone(&handle.stats))
            .or_else(|| state.parked.remove(name));
        if let Some(stats) = stats {
            state.retired.insert(name.to_owned(), stats);
        } else if !state.retired.contains_key(name) {
            state.retired.insert(
                name.to_owned(),
                Arc::new(Mutex::new(ServerStats::default())),
            );
        }
        // A never-routable name must still answer "retired", so make
        // sure the bloom filter passes it through to the real lookup.
        self.bloom.insert(name);
        if state.default_model.as_deref() == Some(name) {
            state.default_model = None;
        }
    }

    /// Un-retires a name's ledger entry so a later `Register` WAL record
    /// (or store revival) can reuse it; no-op if not retired.
    pub(crate) fn unretire(&self, name: &str) -> Option<Arc<Mutex<ServerStats>>> {
        self.state.write().retired.remove(name)
    }

    /// The LRU recency stamp of a resident model, if resident.
    pub(crate) fn last_used(&self, name: &str) -> Option<u64> {
        self.state
            .read()
            .models
            .get(name)
            .map(|handle| handle.last_used.load(Ordering::Relaxed))
    }
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.read();
        f.debug_struct("ModelRegistry")
            .field("models", &state.models.keys().collect::<Vec<_>>())
            .field("default_model", &state.default_model)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_baselines::{RangerLikeForest, ScikitLikeForest};
    use bolt_forest::{Dataset, ForestConfig, RandomForest};

    fn forest() -> RandomForest {
        let rows: Vec<Vec<f32>> = (0..40).map(|i| vec![(i % 4) as f32]).collect();
        let labels: Vec<u32> = (0..40).map(|i| u32::from(i % 4 > 1)).collect();
        let data = Dataset::from_rows(rows, labels, 2).expect("valid");
        RandomForest::train(&data, &ForestConfig::new(3).with_seed(5))
    }

    #[test]
    fn first_registration_becomes_default() {
        let registry = ModelRegistry::new();
        assert_eq!(
            registry.resolve(None).expect_err("empty"),
            RouteError::NoDefaultModel
        );
        let f = forest();
        registry
            .register("a", Arc::new(ScikitLikeForest::from_forest(&f)))
            .expect("fresh name");
        registry
            .register("b", Arc::new(RangerLikeForest::from_forest(&f)))
            .expect("fresh name");
        assert_eq!(registry.default_model().as_deref(), Some("a"));
        assert_eq!(
            registry.resolve(None).expect("default").engine().name(),
            "Scikit"
        );
        registry.set_default("b").expect("exists");
        assert_eq!(
            registry.resolve(None).expect("default").engine().name(),
            "Ranger"
        );
    }

    #[test]
    fn duplicate_register_is_refused_swap_is_not() {
        let registry = ModelRegistry::new();
        let f = forest();
        registry
            .register("m", Arc::new(ScikitLikeForest::from_forest(&f)))
            .expect("fresh name");
        assert_eq!(
            registry
                .register("m", Arc::new(RangerLikeForest::from_forest(&f)))
                .expect_err("duplicate"),
            StoreError::Duplicate("m".into())
        );
        // The refused registration changed nothing.
        assert_eq!(
            registry
                .resolve(Some("m"))
                .expect("still there")
                .engine()
                .name(),
            "Scikit"
        );
        registry
            .swap("m", Arc::new(RangerLikeForest::from_forest(&f)))
            .expect("swap replaces");
        assert_eq!(
            registry
                .resolve(Some("m"))
                .expect("swapped")
                .engine()
                .name(),
            "Ranger"
        );
        // Swap demands an existing name.
        assert_eq!(
            registry
                .swap("ghost", Arc::new(ScikitLikeForest::from_forest(&f)))
                .expect_err("unknown"),
            StoreError::Unknown("ghost".into())
        );
    }

    #[test]
    fn unknown_vs_retired_are_distinct_errors() {
        let registry = ModelRegistry::new();
        let f = forest();
        registry
            .register("m", Arc::new(ScikitLikeForest::from_forest(&f)))
            .expect("fresh name");
        assert_eq!(
            registry.resolve(Some("ghost")).expect_err("unknown"),
            RouteError::UnknownModel("ghost".into())
        );
        // "m" is the default; retiring it out from under legacy clients
        // is refused until the default is moved away.
        assert_eq!(
            registry.retire("m").expect_err("default in use"),
            StoreError::DefaultInUse("m".into())
        );
        registry.clear_default();
        registry.retire("m").expect("retires");
        assert_eq!(
            registry.retire("m").expect_err("double retire"),
            StoreError::Retired("m".into())
        );
        assert_eq!(
            registry.retire("ghost").expect_err("never existed"),
            StoreError::Unknown("ghost".into())
        );
        assert_eq!(
            registry.resolve(Some("m")).expect_err("retired"),
            RouteError::RetiredModel("m".into())
        );
        // The default was cleared before the retire.
        assert_eq!(
            registry.resolve(None).expect_err("no default"),
            RouteError::NoDefaultModel
        );
        // Swapping a retired name is refused too; revival is register's
        // job.
        assert_eq!(
            registry
                .swap("m", Arc::new(ScikitLikeForest::from_forest(&f)))
                .expect_err("retired"),
            StoreError::Retired("m".into())
        );
    }

    #[test]
    fn stats_survive_swap_and_retire() {
        let registry = ModelRegistry::new();
        let f = forest();
        registry
            .register("m", Arc::new(ScikitLikeForest::from_forest(&f)))
            .expect("fresh name");
        let before_swap = registry.resolve(Some("m")).expect("resolves");
        before_swap.book(3, 300);
        // Hot-swap the engine behind the name.
        registry
            .swap("m", Arc::new(RangerLikeForest::from_forest(&f)))
            .expect("swap");
        // A handle resolved before the swap still books into the name.
        before_swap.book(2, 200);
        assert_eq!(registry.stats("m").expect("stats").requests, 5);
        assert_eq!(
            registry
                .resolve(Some("m"))
                .expect("resolves")
                .engine()
                .name(),
            "Ranger"
        );
        // Retire: stats stay visible and conserved in the total.
        registry.clear_default();
        registry.retire("m").expect("retires");
        assert_eq!(registry.stats("m").expect("retired stats").requests, 5);
        assert_eq!(registry.total_stats().requests, 5);
        // Revival restores the historical counts.
        registry
            .register("m", Arc::new(ScikitLikeForest::from_forest(&f)))
            .expect("revival");
        assert_eq!(registry.stats("m").expect("revived stats").requests, 5);
        assert_eq!(registry.total_stats().requests, 5);
    }

    #[test]
    fn eviction_parks_stats_and_reload_reattaches() {
        let registry = ModelRegistry::new();
        let f = forest();
        registry
            .register("m", Arc::new(ScikitLikeForest::from_forest(&f)))
            .expect("fresh name");
        registry.resolve(Some("m")).expect("resolves").book(7, 70);
        assert!(registry.remove_resident("m"));
        assert!(!registry.remove_resident("m"), "already evicted");
        // Evicted ≠ retired: the lookup reports unknown (the store
        // intercepts and reloads), and the stats stay conserved.
        assert_eq!(
            registry.resolve(Some("m")).expect_err("not resident"),
            RouteError::UnknownModel("m".into())
        );
        assert_eq!(registry.stats("m").expect("parked stats").requests, 7);
        assert_eq!(registry.total_stats().requests, 7);
        registry.insert_resident("m", Arc::new(ScikitLikeForest::from_forest(&f)));
        assert_eq!(registry.stats("m").expect("reloaded").requests, 7);
        registry.resolve(Some("m")).expect("routable again");
    }

    #[test]
    fn unknown_names_fail_the_bloom_fast_path() {
        let registry = ModelRegistry::new();
        let f = forest();
        registry
            .register("real", Arc::new(ScikitLikeForest::from_forest(&f)))
            .expect("fresh name");
        // Registered names pass; a name never seen anywhere is rejected
        // by the filter alone (also exercised indirectly: the error is
        // identical either way).
        assert!(registry.bloom().may_contain("real"));
        assert!(!registry.bloom().may_contain("bolt-bench-missing"));
        assert_eq!(
            registry
                .resolve(Some("bolt-bench-missing"))
                .expect_err("unknown"),
            RouteError::UnknownModel("bolt-bench-missing".into())
        );
    }

    #[test]
    fn resolve_stamps_lru_recency() {
        let registry = ModelRegistry::new();
        let f = forest();
        registry
            .register("a", Arc::new(ScikitLikeForest::from_forest(&f)))
            .expect("fresh");
        registry
            .register("b", Arc::new(ScikitLikeForest::from_forest(&f)))
            .expect("fresh");
        registry.resolve(Some("a")).expect("a");
        registry.resolve(Some("b")).expect("b");
        let (a, b) = (
            registry.last_used("a").expect("resident"),
            registry.last_used("b").expect("resident"),
        );
        assert!(a < b, "b touched later: {a} vs {b}");
        registry.resolve(Some("a")).expect("a again");
        assert!(registry.last_used("a").expect("resident") > b);
        assert_eq!(registry.last_used("ghost"), None);
    }

    #[test]
    fn list_is_sorted_and_flags_default() {
        let registry = ModelRegistry::new();
        let f = forest();
        registry
            .register("zeta", Arc::new(ScikitLikeForest::from_forest(&f)))
            .expect("fresh name");
        registry
            .register("alpha", Arc::new(RangerLikeForest::from_forest(&f)))
            .expect("fresh name");
        let listed = registry.list();
        assert_eq!(
            listed.iter().map(|m| m.name.as_str()).collect::<Vec<_>>(),
            ["alpha", "zeta"]
        );
        assert!(listed[1].is_default, "first registration is default");
        assert!(!listed[0].is_default);
        assert_eq!(listed[0].engine, "Ranger");
        // Plain registered engines carry no artifact metadata.
        assert_eq!(listed[0].version, 0);
        assert!(listed[0].resident);
        assert_eq!(listed[0].bytes, 0);
    }

    #[test]
    fn one_engine_backs_many_names() {
        let registry = ModelRegistry::new();
        let f = forest();
        let engine: Arc<dyn InferenceEngine> = Arc::new(ScikitLikeForest::from_forest(&f));
        registry.register("a", Arc::clone(&engine)).expect("fresh");
        registry.register("b", engine).expect("fresh");
        let a = registry.resolve(Some("a")).expect("a");
        let b = registry.resolve(Some("b")).expect("b");
        assert!(Arc::ptr_eq(a.engine(), b.engine()), "no re-compilation");
        // ...but statistics are per *name*.
        a.book(1, 10);
        assert_eq!(registry.stats("a").expect("a").requests, 1);
        assert_eq!(registry.stats("b").expect("b").requests, 0);
    }

    #[test]
    fn booking_saturates_instead_of_overflowing() {
        let registry = ModelRegistry::new();
        let f = forest();
        registry
            .register("m", Arc::new(ScikitLikeForest::from_forest(&f)))
            .expect("fresh name");
        registry
            .register("n", Arc::new(ScikitLikeForest::from_forest(&f)))
            .expect("fresh name");
        let handle = registry.resolve(Some("m")).expect("resolves");
        // Drive the latency accumulator to the boundary, then past it:
        // pre-fix this panics in debug builds and wraps in release.
        handle.book(1, u64::MAX - 5);
        handle.book(1, 100);
        let stats = registry.stats("m").expect("stats");
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.total_latency_ns, u64::MAX);
        // The mean stays finite and sane rather than collapsing to ~0 as
        // a wrapped sum would.
        assert!(stats.mean_latency_ns() > 1e18);
        // The aggregate across models saturates too instead of wrapping
        // when two saturated counters are summed.
        registry
            .resolve(Some("n"))
            .expect("resolves")
            .book(3, u64::MAX);
        let total = registry.total_stats();
        assert_eq!(total.requests, 5);
        assert_eq!(total.total_latency_ns, u64::MAX);
    }

    #[test]
    fn unaddressable_name_is_rejected() {
        let registry = ModelRegistry::new();
        let f = forest();
        assert_eq!(
            registry
                .register("", Arc::new(ScikitLikeForest::from_forest(&f)))
                .expect_err("empty name"),
            StoreError::InvalidName(String::new())
        );
        let long = "x".repeat(MAX_MODEL_NAME_BYTES + 1);
        assert_eq!(
            registry
                .register(long.clone(), Arc::new(ScikitLikeForest::from_forest(&f)))
                .expect_err("oversized name"),
            StoreError::InvalidName(long)
        );
    }
}
