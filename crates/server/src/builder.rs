//! One builder for every transport: assemble a [`ModelRegistry`], pick a
//! default model, then bind a Unix-domain-socket or TCP front-end (or
//! both, sharing one registry).

use crate::event_loop::ServingMode;
use crate::registry::ModelRegistry;
use crate::server::ClassificationServer;
use crate::tcp::TcpClassificationServer;
use bolt_baselines::InferenceEngine;
use std::path::Path;
use std::sync::Arc;

/// Builds classification servers over a shared model registry.
///
/// Engines are registered as `Arc<dyn InferenceEngine>`, so one compiled
/// forest can back multiple registered names — and multiple servers —
/// without re-compilation. The first registered model becomes the default
/// unless [`default_model`](Self::default_model) picks another; the
/// default is what legacy (unrouted) `Classify`/`ClassifyBatch` frames
/// fall back to.
///
/// # Examples
///
/// ```no_run
/// use bolt_server::{BoltEngine, ServerBuilder};
/// use bolt_baselines::ScikitLikeForest;
/// # use bolt_core::{BoltConfig, BoltForest};
/// # use bolt_forest::{Dataset, ForestConfig, RandomForest};
/// # use std::sync::Arc;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let data = Dataset::from_rows(vec![vec![0.0]], vec![0], 1)?;
/// # let forest = RandomForest::train(&data, &ForestConfig::new(1));
/// # let bolt = Arc::new(BoltForest::compile(&forest, &BoltConfig::default())?);
/// let server = ServerBuilder::new()
///     .register("bolt", Arc::new(BoltEngine::new(bolt)))
///     .register("scikit", Arc::new(ScikitLikeForest::from_forest(&forest)))
///     .default_model("bolt")
///     .bind_tcp("127.0.0.1:0")?;
/// println!("serving {} models on {}", server.registry().list().len(), server.local_addr());
/// server.shutdown();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ServerBuilder {
    registry: ModelRegistry,
    default_model: Option<String>,
    serving: ServingMode,
}

impl ServerBuilder {
    /// A builder over a fresh, empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::with_registry(ModelRegistry::new())
    }

    /// A builder over an existing registry — use this to share one live
    /// registry between a UDS and a TCP front-end, or to pre-assemble the
    /// registry elsewhere.
    #[must_use]
    pub fn with_registry(registry: ModelRegistry) -> Self {
        Self {
            registry,
            default_model: None,
            serving: ServingMode::default(),
        }
    }

    /// Registers `engine` under `name` (see
    /// [`ModelRegistry::register`]; re-registering a name hot-swaps it).
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty or longer than
    /// [`MAX_MODEL_NAME_BYTES`](crate::proto::MAX_MODEL_NAME_BYTES).
    #[must_use]
    pub fn register(self, name: impl Into<String>, engine: Arc<dyn InferenceEngine>) -> Self {
        self.registry.register(name, engine);
        self
    }

    /// Picks the model legacy (unrouted) frames fall back to. Without
    /// this, the first registered model is the default.
    #[must_use]
    pub fn default_model(mut self, name: impl Into<String>) -> Self {
        self.default_model = Some(name.into());
        self
    }

    /// Picks how connections are scheduled: the event-loop front-end with
    /// adaptive micro-batching (the default), or one blocking thread per
    /// connection (the paper's §6 methodology).
    #[must_use]
    pub fn serving(mut self, mode: ServingMode) -> Self {
        self.serving = mode;
        self
    }

    /// Applies the chosen default and hands the registry out.
    fn finish(self) -> std::io::Result<(ModelRegistry, ServingMode)> {
        if let Some(name) = &self.default_model {
            self.registry.set_default(name).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
            })?;
        }
        Ok((self.registry, self.serving))
    }

    /// Binds a Unix-domain-socket server (removing any stale socket file)
    /// serving the assembled registry.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` if the chosen default model is not
    /// registered, or the I/O error if the socket cannot be bound.
    pub fn bind_uds(self, path: impl AsRef<Path>) -> std::io::Result<ClassificationServer> {
        let (registry, serving) = self.finish()?;
        ClassificationServer::bind_registry(path, registry, serving)
    }

    /// Binds a TCP server (use port 0 for an ephemeral port) serving the
    /// assembled registry.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` if the chosen default model is not
    /// registered, or the I/O error if the address cannot be bound.
    pub fn bind_tcp(
        self,
        addr: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<TcpClassificationServer> {
        let (registry, serving) = self.finish()?;
        TcpClassificationServer::bind_registry(addr, registry, serving)
    }
}

impl Default for ServerBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClassificationClient;
    use bolt_baselines::{RangerLikeForest, ScikitLikeForest};
    use bolt_forest::{Dataset, ForestConfig, RandomForest};

    fn forest() -> RandomForest {
        let rows: Vec<Vec<f32>> = (0..40).map(|i| vec![(i % 4) as f32]).collect();
        let labels: Vec<u32> = (0..40).map(|i| u32::from(i % 4 > 1)).collect();
        let data = Dataset::from_rows(rows, labels, 2).expect("valid");
        RandomForest::train(&data, &ForestConfig::new(3).with_seed(5))
    }

    #[test]
    fn unknown_default_is_rejected_at_bind() {
        let f = forest();
        let err = ServerBuilder::new()
            .register("a", Arc::new(ScikitLikeForest::from_forest(&f)))
            .default_model("nope")
            .bind_tcp("127.0.0.1:0")
            .expect_err("unknown default");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn one_registry_backs_both_transports() {
        let f = forest();
        let registry = ModelRegistry::new();
        registry.register("m", Arc::new(ScikitLikeForest::from_forest(&f)));
        let uds_path = std::env::temp_dir().join(format!(
            "bolt-test-builder-shared-{}.sock",
            std::process::id()
        ));
        let uds = ServerBuilder::with_registry(registry.clone())
            .bind_uds(&uds_path)
            .expect("binds uds");
        let tcp = ServerBuilder::with_registry(registry.clone())
            .bind_tcp("127.0.0.1:0")
            .expect("binds tcp");
        let mut uds_client = ClassificationClient::connect(&uds_path).expect("connects");
        let mut tcp_client = ClassificationClient::connect_tcp(tcp.local_addr()).expect("connects");
        let want = f.predict(&[3.0]);
        assert_eq!(uds_client.classify(&[3.0]).expect("uds").class, want);
        assert_eq!(tcp_client.classify(&[3.0]).expect("tcp").class, want);
        // Both transports booked into the same per-model stats.
        assert_eq!(registry.stats("m").expect("stats").requests, 2);
        // Hot-swapping through either server's handle affects both.
        tcp.registry()
            .register("m", Arc::new(RangerLikeForest::from_forest(&f)));
        assert_eq!(uds_client.classify(&[3.0]).expect("uds").class, want);
        assert_eq!(
            uds.registry()
                .resolve(Some("m"))
                .expect("m")
                .engine()
                .name(),
            "Ranger"
        );
        uds.shutdown();
        tcp.shutdown();
    }
}
