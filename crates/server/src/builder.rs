//! One builder for every transport: assemble a [`ModelStore`], pick a
//! default model, then bind a Unix-domain-socket or TCP front-end (or
//! both, sharing one store).

use crate::event_loop::ServingMode;
use crate::registry::ModelRegistry;
use crate::server::ClassificationServer;
use crate::store::ModelStore;
use crate::tcp::TcpClassificationServer;
use bolt_baselines::InferenceEngine;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Builds classification servers over a shared model store.
///
/// Engines are registered as `Arc<dyn InferenceEngine>`, so one compiled
/// forest can back multiple registered names — and multiple servers —
/// without re-compilation. The first registered model becomes the default
/// unless [`default_model`](Self::default_model) picks another; the
/// default is what legacy (unrouted) `Classify`/`ClassifyBatch` frames
/// fall back to.
///
/// Beyond in-memory engines, [`model_dir`](Self::model_dir) attaches a
/// directory of compiled `NAME@VERSION.blt` artifacts: they are cataloged
/// at bind time, mapped lazily on first request, and evicted
/// least-recently-used when [`resident_bytes`](Self::resident_bytes) sets
/// a budget. Lifecycle operations on such a store are journaled to a
/// write-ahead log and survive a crash (see [`ModelStore`]).
///
/// # Examples
///
/// ```no_run
/// use bolt_server::{BoltEngine, ServerBuilder};
/// use bolt_baselines::ScikitLikeForest;
/// # use bolt_core::{BoltConfig, BoltForest};
/// # use bolt_forest::{Dataset, ForestConfig, RandomForest};
/// # use std::sync::Arc;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let data = Dataset::from_rows(vec![vec![0.0]], vec![0], 1)?;
/// # let forest = RandomForest::train(&data, &ForestConfig::new(1));
/// # let bolt = Arc::new(BoltForest::compile(&forest, &BoltConfig::default())?);
/// let server = ServerBuilder::new()
///     .register("bolt", Arc::new(BoltEngine::new(bolt)))
///     .register("scikit", Arc::new(ScikitLikeForest::from_forest(&forest)))
///     .default_model("bolt")
///     .bind_tcp("127.0.0.1:0")?;
/// println!("serving {} models on {}", server.registry().list().len(), server.local_addr());
/// server.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct ServerBuilder {
    store: Option<ModelStore>,
    registry: ModelRegistry,
    pending: Vec<(String, Arc<dyn InferenceEngine>)>,
    default_model: Option<String>,
    model_dir: Option<PathBuf>,
    resident_bytes: Option<u64>,
    keep_versions: usize,
    serving: ServingMode,
    admin_socket: Option<PathBuf>,
    warm_top: usize,
}

impl ServerBuilder {
    /// A builder over a fresh, empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::with_registry(ModelRegistry::new())
    }

    /// A builder over an existing registry — use this to share one live
    /// registry between a UDS and a TCP front-end, or to pre-assemble the
    /// registry elsewhere.
    #[must_use]
    pub fn with_registry(registry: ModelRegistry) -> Self {
        Self {
            store: None,
            registry,
            pending: Vec::new(),
            default_model: None,
            model_dir: None,
            resident_bytes: None,
            keep_versions: 0,
            serving: ServingMode::default(),
            admin_socket: None,
            warm_top: 0,
        }
    }

    /// A builder over an existing store — use this to share one live
    /// store (one model directory, one write-ahead log) between a UDS
    /// and a TCP front-end. Mutually exclusive with
    /// [`model_dir`](Self::model_dir): the store already has (or lacks)
    /// a directory.
    #[must_use]
    pub fn with_store(store: ModelStore) -> Self {
        let registry = store.registry().clone();
        Self {
            store: Some(store),
            registry,
            pending: Vec::new(),
            default_model: None,
            model_dir: None,
            resident_bytes: None,
            keep_versions: 0,
            serving: ServingMode::default(),
            admin_socket: None,
            warm_top: 0,
        }
    }

    /// Queues `engine` for registration under `name` at bind time (see
    /// [`ModelStore::register`]). Registration is deferred so errors
    /// (duplicate or unaddressable names) surface as `InvalidInput` from
    /// the bind call instead of panicking mid-chain.
    #[must_use]
    pub fn register(mut self, name: impl Into<String>, engine: Arc<dyn InferenceEngine>) -> Self {
        self.pending.push((name.into(), engine));
        self
    }

    /// Attaches a directory of compiled `NAME@VERSION.blt` artifacts: the
    /// directory is scanned at bind time and each model is mapped lazily
    /// on its first request. Lifecycle operations are journaled to
    /// `registry.wal` inside the directory and replayed on restart.
    #[must_use]
    pub fn model_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.model_dir = Some(dir.into());
        self
    }

    /// Caps the bytes of artifact data kept mapped at once; the
    /// least-recently-used model is evicted when the budget overflows.
    /// In-flight requests pin their engine alive regardless. No budget
    /// (the default) means nothing is ever evicted.
    #[must_use]
    pub fn resident_bytes(mut self, budget: u64) -> Self {
        self.resident_bytes = Some(budget);
        self
    }

    /// How many superseded versions of each model
    /// [`ModelStore::compact`] keeps on disk (beyond the serving
    /// version). Default 0: compaction rewrites the log but deletes no
    /// artifact files.
    #[must_use]
    pub fn keep_versions(mut self, n: usize) -> Self {
        self.keep_versions = n;
        self
    }

    /// Picks the model legacy (unrouted) frames fall back to. Without
    /// this, the first registered model is the default.
    #[must_use]
    pub fn default_model(mut self, name: impl Into<String>) -> Self {
        self.default_model = Some(name.into());
        self
    }

    /// Picks how connections are scheduled: the event-loop front-end with
    /// adaptive micro-batching (the default), or one blocking thread per
    /// connection (the paper's §6 methodology).
    #[must_use]
    pub fn serving(mut self, mode: ServingMode) -> Self {
        self.serving = mode;
        self
    }

    /// Binds a local-only, mode-0600 admin socket alongside the data
    /// socket and serves the control plane on it ([`crate::admin`]):
    /// `boltctl` drives activate/retire/set-default/compact/rescan/status
    /// against a live server without a restart.
    #[must_use]
    pub fn admin_socket(mut self, path: impl Into<PathBuf>) -> Self {
        self.admin_socket = Some(path.into());
        self
    }

    /// Pre-maps up to `k` directory artifacts — most recently activated
    /// first, per the WAL-recovered activation order — before the
    /// listener starts accepting, so a restarted daemon's first requests
    /// do not pay the page-in cost ([`ModelStore::warm`]).
    #[must_use]
    pub fn warm_top(mut self, k: usize) -> Self {
        self.warm_top = k;
        self
    }

    /// Assembles the store, applies queued registrations and the chosen
    /// default, and hands the store out.
    fn finish(self) -> std::io::Result<(ModelStore, ServingMode)> {
        let invalid = |e: crate::store::StoreError| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
        };
        let store = match self.store {
            Some(store) => {
                if self.model_dir.is_some() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        "with_store and model_dir are mutually exclusive: \
                         the store already owns its directory",
                    ));
                }
                store
            }
            None => match self.model_dir {
                Some(dir) => {
                    ModelStore::open(self.registry, &dir, self.resident_bytes, self.keep_versions)?
                }
                None => ModelStore::detached(self.registry),
            },
        };
        for (name, engine) in self.pending {
            store.register(name, engine).map_err(invalid)?;
        }
        if let Some(name) = &self.default_model {
            store.set_default(name).map_err(invalid)?;
        }
        Ok((store, self.serving))
    }

    /// Binds a Unix-domain-socket server (removing any stale socket file)
    /// serving the assembled store.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` if a queued registration or the chosen
    /// default model is rejected, or the I/O error if the model directory
    /// cannot be opened or the socket cannot be bound.
    pub fn bind_uds(self, path: impl AsRef<Path>) -> std::io::Result<ClassificationServer> {
        let admin = self.admin_socket.clone();
        let warm = self.warm_top;
        let (store, serving) = self.finish()?;
        if warm > 0 {
            // Warm before the listener exists: the first accepted request
            // finds its pages mapped.
            let _ = store.warm(warm);
        }
        ClassificationServer::bind_store(path, store, serving, admin)
    }

    /// Binds a TCP server (use port 0 for an ephemeral port) serving the
    /// assembled store.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` if a queued registration or the chosen
    /// default model is rejected, or the I/O error if the model directory
    /// cannot be opened or the address cannot be bound.
    pub fn bind_tcp(
        self,
        addr: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<TcpClassificationServer> {
        let admin = self.admin_socket.clone();
        let warm = self.warm_top;
        let (store, serving) = self.finish()?;
        if warm > 0 {
            let _ = store.warm(warm);
        }
        TcpClassificationServer::bind_store(addr, store, serving, admin)
    }
}

impl Default for ServerBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ServerBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerBuilder")
            .field("registry", &self.registry)
            .field(
                "pending",
                &self.pending.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            )
            .field("default_model", &self.default_model)
            .field("model_dir", &self.model_dir)
            .field("resident_bytes", &self.resident_bytes)
            .field("keep_versions", &self.keep_versions)
            .field("serving", &self.serving)
            .field("admin_socket", &self.admin_socket)
            .field("warm_top", &self.warm_top)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClassificationClient;
    use bolt_baselines::{RangerLikeForest, ScikitLikeForest};
    use bolt_forest::{Dataset, ForestConfig, RandomForest};

    fn forest() -> RandomForest {
        let rows: Vec<Vec<f32>> = (0..40).map(|i| vec![(i % 4) as f32]).collect();
        let labels: Vec<u32> = (0..40).map(|i| u32::from(i % 4 > 1)).collect();
        let data = Dataset::from_rows(rows, labels, 2).expect("valid");
        RandomForest::train(&data, &ForestConfig::new(3).with_seed(5))
    }

    #[test]
    fn unknown_default_is_rejected_at_bind() {
        let f = forest();
        let err = ServerBuilder::new()
            .register("a", Arc::new(ScikitLikeForest::from_forest(&f)))
            .default_model("nope")
            .bind_tcp("127.0.0.1:0")
            .expect_err("unknown default");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn duplicate_registration_is_rejected_at_bind() {
        let f = forest();
        let err = ServerBuilder::new()
            .register("m", Arc::new(ScikitLikeForest::from_forest(&f)))
            .register("m", Arc::new(RangerLikeForest::from_forest(&f)))
            .bind_tcp("127.0.0.1:0")
            .expect_err("duplicate name");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains('m'), "names the duplicate: {err}");
    }

    #[test]
    fn one_registry_backs_both_transports() {
        let f = forest();
        let registry = ModelRegistry::new();
        registry
            .register("m", Arc::new(ScikitLikeForest::from_forest(&f)))
            .expect("registers");
        let uds_path = std::env::temp_dir().join(format!(
            "bolt-test-builder-shared-{}.sock",
            std::process::id()
        ));
        let uds = ServerBuilder::with_registry(registry.clone())
            .bind_uds(&uds_path)
            .expect("binds uds");
        let tcp = ServerBuilder::with_registry(registry.clone())
            .bind_tcp("127.0.0.1:0")
            .expect("binds tcp");
        let mut uds_client = ClassificationClient::connect(&uds_path).expect("connects");
        let mut tcp_client = ClassificationClient::connect_tcp(tcp.local_addr()).expect("connects");
        let want = f.predict(&[3.0]);
        assert_eq!(uds_client.classify(&[3.0]).expect("uds").class, want);
        assert_eq!(tcp_client.classify(&[3.0]).expect("tcp").class, want);
        // Both transports booked into the same per-model stats.
        assert_eq!(registry.stats("m").expect("stats").requests, 2);
        // Hot-swapping through either server's handle affects both.
        tcp.registry()
            .swap("m", Arc::new(RangerLikeForest::from_forest(&f)))
            .expect("swaps");
        assert_eq!(uds_client.classify(&[3.0]).expect("uds").class, want);
        assert_eq!(
            uds.registry()
                .resolve(Some("m"))
                .expect("m")
                .engine()
                .name(),
            "Ranger"
        );
        uds.shutdown();
        tcp.shutdown();
    }
}
