//! `boltctl` — fleet administration for a live `boltd`.
//!
//! One subcommand per admin opcode, driven over the daemon's local-only
//! admin socket ([`bolt_server::admin`]). Mutations are journaled by the
//! daemon before they apply, so anything `boltctl` reports as done
//! survives a crash. Refused operations print the daemon's typed refusal
//! and exit nonzero, so shell scripts can gate on success.

use bolt_server::{AdminClient, AdminReply, AdminRequest};
use std::process::ExitCode;

const USAGE: &str = "\
boltctl — administer a running boltd

USAGE:
    boltctl --socket PATH <COMMAND>

OPTIONS:
    --socket PATH        The daemon's admin socket (boltd --admin-socket;
                         defaults to <model-dir>/admin.sock on the daemon)

COMMANDS:
    activate NAME@VERSION   Activate an artifact version from the model
                            directory (also: activate NAME VERSION)
    retire NAME             Retire a model (refused while it is the default)
    set-default NAME        Route legacy (unnamed) requests to NAME
    compact                 Compact the registry log, prune superseded files
    rescan                  Pick up artifacts dropped into the model dir
    status                  Store metrics and one row per servable model
    drain-stats             Cumulative request/latency counters per model

EXIT STATUS:
    0 the operation succeeded; 1 the daemon refused it; 2 usage or
    transport error
";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("boltctl: {message}");
            eprintln!("run `boltctl --help` for usage");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    }
    let mut socket = None;
    let mut rest = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        if arg == "--socket" {
            socket = Some(iter.next().ok_or("--socket needs a path")?);
        } else {
            rest.push(arg);
        }
    }
    let socket = socket.ok_or("--socket PATH is required")?;
    let request = parse_command(&rest)?;

    let mut client = AdminClient::connect(&socket)
        .map_err(|e| format!("cannot connect to admin socket {socket}: {e}"))?;
    let reply = client
        .call(&request)
        .map_err(|e| format!("admin call failed: {e}"))?;
    Ok(render(&reply))
}

fn parse_command(rest: &[String]) -> Result<AdminRequest, String> {
    let command = rest.first().map(String::as_str).ok_or("no command given")?;
    let arity = |n: usize| -> Result<(), String> {
        if rest.len() != n + 1 {
            return Err(format!(
                "`{command}` takes {n} argument(s), got {}",
                rest.len() - 1
            ));
        }
        Ok(())
    };
    match command {
        "activate" => {
            // Both `activate NAME@VERSION` (matching the artifact file
            // name) and `activate NAME VERSION` are accepted.
            let (name, version) = match rest.len() {
                2 => rest[1]
                    .rsplit_once('@')
                    .ok_or("activate NAME@VERSION (or: activate NAME VERSION)")?,
                3 => (rest[1].as_str(), rest[2].as_str()),
                _ => return Err("activate NAME@VERSION (or: activate NAME VERSION)".into()),
            };
            let version: u32 = version
                .parse()
                .map_err(|_| format!("version `{version}` is not a u32"))?;
            Ok(AdminRequest::Activate {
                name: name.to_owned(),
                version,
            })
        }
        "retire" => {
            arity(1)?;
            Ok(AdminRequest::Retire(rest[1].clone()))
        }
        "set-default" => {
            arity(1)?;
            Ok(AdminRequest::SetDefault(rest[1].clone()))
        }
        "compact" => {
            arity(0)?;
            Ok(AdminRequest::Compact)
        }
        "rescan" => {
            arity(0)?;
            Ok(AdminRequest::Rescan)
        }
        "status" => {
            arity(0)?;
            Ok(AdminRequest::Status)
        }
        "drain-stats" => {
            arity(0)?;
            Ok(AdminRequest::DrainStats)
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn render(reply: &AdminReply) -> ExitCode {
    match reply {
        AdminReply::Ok => {
            println!("ok");
            ExitCode::SUCCESS
        }
        AdminReply::Compacted(stats) => {
            println!(
                "compacted: wal {} -> {} bytes, {} superseded artifact(s) deleted",
                stats.wal_bytes_before, stats.wal_bytes_after, stats.files_deleted
            );
            ExitCode::SUCCESS
        }
        AdminReply::Rescanned(stats) => {
            println!(
                "rescanned: {} new model(s), {} new artifact version(s)",
                stats.names_added, stats.versions_added
            );
            ExitCode::SUCCESS
        }
        AdminReply::Status(report) => {
            let m = &report.metrics;
            if report.kernel.is_empty() {
                println!("scan kernel: unknown (daemon predates kernel reporting)");
            } else {
                println!("scan kernel: {}", report.kernel);
            }
            println!(
                "resident: {} model(s), {} bytes (high-water {}); evictions: {} ({} thrash reloads)",
                m.resident_models, m.resident_bytes, m.resident_bytes_hwm, m.evictions,
                m.thrash_reloads
            );
            println!(
                "{:<24} {:>8} {:<10} {:>8} {:>12} {:>10}",
                "MODEL", "VERSION", "ENGINE", "RESIDENT", "BYTES", "REQUESTS"
            );
            for model in &report.models {
                println!(
                    "{:<24} {:>8} {:<10} {:>8} {:>12} {:>10}{}",
                    model.name,
                    if model.version == 0 {
                        "-".to_owned()
                    } else {
                        model.version.to_string()
                    },
                    model.engine,
                    if model.resident { "yes" } else { "no" },
                    model.bytes,
                    model.requests,
                    if model.is_default { "  (default)" } else { "" },
                );
            }
            ExitCode::SUCCESS
        }
        AdminReply::Stats(report) => {
            println!(
                "{:<24} {:>12} {:>16}",
                "MODEL", "REQUESTS", "MEAN-LATENCY-NS"
            );
            for (name, stats) in &report.models {
                println!(
                    "{:<24} {:>12} {:>16.0}",
                    name,
                    stats.requests,
                    stats.mean_latency_ns()
                );
            }
            println!(
                "{:<24} {:>12} {:>16.0}",
                "TOTAL",
                report.total.requests,
                report.total.mean_latency_ns()
            );
            ExitCode::SUCCESS
        }
        AdminReply::Refused(error) => {
            eprintln!("boltctl: {error}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activate_parses_both_spellings() {
        let at = parse_command(&["activate".into(), "fraud@7".into()]).expect("parses");
        let two = parse_command(&["activate".into(), "fraud".into(), "7".into()]).expect("parses");
        assert_eq!(
            at,
            AdminRequest::Activate {
                name: "fraud".into(),
                version: 7
            }
        );
        assert_eq!(at, two);
        // The *last* @ splits, so names containing @ keep working as long
        // as the trailing segment is the version.
        let nested = parse_command(&["activate".into(), "a@b@3".into()]).expect("parses");
        assert_eq!(
            nested,
            AdminRequest::Activate {
                name: "a@b".into(),
                version: 3
            }
        );
    }

    #[test]
    fn bad_commands_are_usage_errors() {
        assert!(parse_command(&[]).is_err());
        assert!(parse_command(&["explode".into()]).is_err());
        assert!(parse_command(&["activate".into(), "noversion".into()]).is_err());
        assert!(parse_command(&["activate".into(), "m@notanumber".into()]).is_err());
        assert!(parse_command(&["retire".into()]).is_err());
        assert!(parse_command(&["compact".into(), "extra".into()]).is_err());
    }

    #[test]
    fn zero_arg_commands_parse() {
        for (name, want) in [
            ("compact", AdminRequest::Compact),
            ("rescan", AdminRequest::Rescan),
            ("status", AdminRequest::Status),
            ("drain-stats", AdminRequest::DrainStats),
        ] {
            assert_eq!(parse_command(&[name.into()]).expect("parses"), want);
        }
    }
}
