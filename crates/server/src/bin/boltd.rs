//! `boltd` — serve a compiled Bolt artifact (or a baseline engine over a
//! forest artifact) on a Unix domain socket.
//!
//! ```text
//! boltd --artifact bolt.json --socket /tmp/bolt.sock
//! boltd --forest forest.json --engine ranger --socket /tmp/rf.sock
//! boltd --forest forest.json --engine fp --calibration-csv cal.csv --socket /tmp/fp.sock
//! ```
//!
//! Pair with `boltc` (the compiler CLI in the workspace root) to train and
//! compile artifacts. The front-end hosts any engine, mirroring §4.5:
//! "the front-end can connect to other forest implementations".

use bolt_baselines::{ForestPackingForest, InferenceEngine, RangerLikeForest, ScikitLikeForest};
use bolt_core::BoltForest;
use bolt_forest::{csv, RandomForest};
use bolt_server::{BoltEngine, ClassificationServer};
use std::io::BufReader;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: boltd (--artifact BOLT.json | --forest FOREST.json \
                 [--engine scikit|ranger|fp] [--calibration-csv FILE]) --socket PATH"
            );
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut artifact = None;
    let mut forest_path = None;
    let mut engine_name = "scikit".to_owned();
    let mut calibration = None;
    let mut socket = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = args.next().ok_or_else(|| format!("{arg} needs a value"))?;
        match arg.as_str() {
            "--artifact" => artifact = Some(value),
            "--forest" => forest_path = Some(value),
            "--engine" => engine_name = value,
            "--calibration-csv" => calibration = Some(value),
            "--socket" => socket = Some(value),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let socket = socket.ok_or("need --socket")?;

    let engine: Box<dyn InferenceEngine> = if let Some(path) = artifact {
        let json = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
        let mut bolt: BoltForest = serde_json::from_str(&json).map_err(|e| e.to_string())?;
        bolt.rebuild();
        println!(
            "loaded Bolt artifact: {} dictionary entries, {} table cells, {} classes",
            bolt.dictionary().len(),
            bolt.table().n_cells(),
            bolt.n_classes()
        );
        Box::new(BoltEngine::new(Arc::new(bolt)))
    } else {
        let path = forest_path.ok_or("need --artifact or --forest")?;
        let json = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
        let forest: RandomForest = serde_json::from_str(&json).map_err(|e| e.to_string())?;
        println!(
            "loaded forest: {} trees, {} features, {} classes",
            forest.n_trees(),
            forest.n_features(),
            forest.n_classes()
        );
        match engine_name.as_str() {
            "scikit" => Box::new(ScikitLikeForest::from_forest(&forest)),
            "ranger" => Box::new(RangerLikeForest::from_forest(&forest)),
            "fp" => {
                let cal_path = calibration
                    .ok_or("--engine fp needs --calibration-csv for hot-path estimation")?;
                let file =
                    std::fs::File::open(&cal_path).map_err(|e| format!("open {cal_path}: {e}"))?;
                let cal = csv::from_csv(BufReader::new(file)).map_err(|e| e.to_string())?;
                Box::new(ForestPackingForest::from_forest(&forest, &cal))
            }
            other => return Err(format!("unknown engine {other:?} (scikit|ranger|fp)")),
        }
    };
    println!("engine: {}", engine.name());

    let server =
        ClassificationServer::bind(&socket, engine).map_err(|e| format!("bind {socket}: {e}"))?;
    println!("boltd listening on {socket} (Ctrl-C to stop)");

    // Serve until interrupted; report stats whenever they change.
    let mut last = server.stats();
    loop {
        std::thread::sleep(std::time::Duration::from_secs(1));
        let stats = server.stats();
        if stats != last {
            println!(
                "served {} requests, mean latency {:.3} µs",
                stats.requests,
                stats.mean_latency_ns() / 1000.0
            );
            last = stats;
        }
    }
}
