//! `boltd` — serve compiled forests on a Unix domain socket (and
//! optionally TCP), one process hosting any mix of engines.
//!
//! ```text
//! # one engine, legacy style (registered under its platform name):
//! boltd --artifact bolt.json --socket /tmp/bolt.sock
//! boltd --forest forest.json --engine ranger --socket /tmp/rf.sock
//!
//! # many named models behind one socket, with a default for legacy
//! # (unrouted) clients and a TCP front-end sharing the same registry:
//! boltd --artifact bolt.json --forest forest.json \
//!       --model fast=bolt --model fast2=bolt --model ref=scikit \
//!       --default fast --socket /tmp/bolt.sock --tcp 127.0.0.1:9000
//! ```
//!
//! `--model NAME=KIND` may repeat but every NAME must be distinct; KIND
//! is `bolt` (needs `--artifact`), `artifact:PATH.blt` (a compiled `BLT1`
//! artifact, memory-mapped and served zero-copy), or
//! `scikit`/`ranger`/`fp` (need `--forest`; `fp` also needs
//! `--calibration-csv`). Each kind is built once and shared, so two
//! names of the same kind serve one compiled forest (and two names of
//! the same `artifact:` path share one mapping). Pair with `boltc`
//! (the compiler CLI in the workspace root) to train and compile
//! artifacts:
//!
//! ```text
//! boltc compile --forest forest.json --out model.blt
//! boltd --model prod=artifact:model.blt --default prod --socket /tmp/bolt.sock
//! ```
//!
//! For fleets of artifacts, point `--model-dir` at a directory of
//! `NAME@VERSION.blt` files: every model is cataloged at startup, mapped
//! lazily on first request, and (with `--resident-bytes`) evicted
//! least-recently-used under a memory budget. Lifecycle operations are
//! journaled to `registry.wal` in the directory and replayed after a
//! crash or restart:
//!
//! ```text
//! boltd --model-dir /var/lib/bolt/models --resident-bytes 64m \
//!       --socket /tmp/bolt.sock
//! ```
//!
//! The front-end hosts any engine, mirroring §4.5: "the
//! front-end can connect to other forest implementations".

use bolt_baselines::{ForestPackingForest, InferenceEngine, RangerLikeForest, ScikitLikeForest};
use bolt_core::BoltForest;
use bolt_forest::{csv, RandomForest};
use bolt_server::{
    ArtifactEngine, BoltEngine, EventLoopOptions, MicroBatchConfig, ServerBuilder, ServingMode,
};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: boltd [--artifact BOLT.json] [--forest FOREST.json] \
[--engine scikit|ranger|fp] [--calibration-csv FILE] \
[--model NAME=KIND]... [--default NAME] [store flags] \
--socket PATH [--tcp ADDR] [serving flags]
KIND: bolt | artifact:PATH.blt | scikit | ranger | fp

store flags (fleet-scale artifact serving):
  --model-dir DIR      catalog every NAME@VERSION.blt in DIR at startup;
                       each model is mapped lazily on its first request.
                       Lifecycle ops are journaled to DIR/registry.wal
                       and replayed on restart.
  --resident-bytes N   keep at most N bytes of artifact data mapped;
                       the least-recently-used model is evicted when the
                       budget overflows (suffixes k/m/g accepted).
                       [default: unlimited]
  --keep-versions N    compact the registry log at startup, deleting
                       superseded artifact versions beyond the newest N
                       per model. Without this flag nothing is deleted.

control-plane flags (fleet administration without a restart; see boltctl):
  --admin-socket PATH  serve the admin protocol on a local-only, mode-0600
                       Unix socket. [default: DIR/admin.sock when
                       --model-dir DIR is set, otherwise off]
  --no-admin-socket    do not bind an admin socket even with --model-dir.
  --rescan-interval S  poll the model directory's mtime every S seconds
                       and catalog newly dropped NAME@VERSION.blt files
                       (boltctl rescan forces an immediate pickup).
                       [default: off]
  --compact-interval S compact the registry log (and prune superseded
                       versions per --keep-versions) every S seconds in
                       the background, replacing startup-only compaction.
                       [default: off]
  --warm-top K         pre-map the K most recently activated artifacts
                       before the first listener accepts, so a restart
                       does not serve its first requests cold.
                       [default: 0]

serving flags (event-loop front-end with adaptive micro-batching is the default):
  --serving threads|event-loop
                       threads: one blocking thread per connection, no
                       batching (the paper's §6 methodology).
                       event-loop: non-blocking front-end; concurrent
                       single-sample requests coalesce into batch-kernel
                       calls. [default: event-loop]
  --no-microbatch      keep the event loop but dispatch every request
                       individually (no coalescing).
  --mb-flush-samples N flush a micro-batch at N pending samples.
                       [default: 64]
  --mb-flush-micros T  flush a micro-batch T µs after its oldest sample
                       (upper bound; an idle input flushes immediately).
                       [default: 200]
  --mb-queue-depth N   admit at most N samples (queued + in flight);
                       beyond it requests are answered with a structured
                       overload error instead of queueing without bound.
                       [default: 8192]
  --workers N          inference worker threads (0 = auto from available
                       parallelism). [default: 0]";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Builds the serving mode from the parsed `--serving`/`--mb-*`/`--workers`
/// flags, rejecting combinations that would silently do nothing.
fn serving_mode(
    serving: Option<&str>,
    no_microbatch: bool,
    flush_samples: Option<&str>,
    flush_micros: Option<&str>,
    queue_depth: Option<&str>,
    workers: Option<&str>,
) -> Result<ServingMode, String> {
    let parse = |flag: &str, value: Option<&str>| -> Result<Option<u64>, String> {
        value
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|_| format!("{flag} wants a non-negative integer, got {v:?}"))
            })
            .transpose()
    };
    let flush_samples = parse("--mb-flush-samples", flush_samples)?;
    let flush_micros = parse("--mb-flush-micros", flush_micros)?;
    let queue_depth = parse("--mb-queue-depth", queue_depth)?;
    let workers = parse("--workers", workers)?;
    match serving.unwrap_or("event-loop") {
        "threads" => {
            if no_microbatch
                || flush_samples.is_some()
                || flush_micros.is_some()
                || queue_depth.is_some()
                || workers.is_some()
            {
                return Err(
                    "micro-batching/worker flags only apply to --serving event-loop".to_owned(),
                );
            }
            Ok(ServingMode::ThreadPerConnection)
        }
        "event-loop" => {
            let defaults = MicroBatchConfig::default();
            let opts = EventLoopOptions {
                microbatch: MicroBatchConfig {
                    enabled: !no_microbatch,
                    flush_samples: flush_samples
                        .map_or(defaults.flush_samples, |n| n.max(1) as usize),
                    flush_wait: flush_micros.map_or(defaults.flush_wait, Duration::from_micros),
                    queue_depth: queue_depth.map_or(defaults.queue_depth, |n| n.max(1) as usize),
                },
                workers: workers.unwrap_or(0) as usize,
                ..EventLoopOptions::default()
            };
            Ok(ServingMode::EventLoop(opts))
        }
        other => Err(format!(
            "unknown serving mode {other:?} (threads|event-loop)"
        )),
    }
}

/// Lazily builds engines from the artifact/forest files, constructing
/// each kind at most once so repeated `--model` kinds share one engine.
struct EngineLoader {
    artifact: Option<String>,
    forest_path: Option<String>,
    calibration: Option<String>,
    forest: Option<RandomForest>,
    built: BTreeMap<String, Arc<dyn InferenceEngine>>,
}

impl EngineLoader {
    fn forest(&mut self) -> Result<&RandomForest, String> {
        if self.forest.is_none() {
            let path = self
                .forest_path
                .as_ref()
                .ok_or("this engine kind needs --forest FOREST.json")?;
            let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            let forest: RandomForest = serde_json::from_str(&json).map_err(|e| e.to_string())?;
            println!(
                "loaded forest: {} trees, {} features, {} classes",
                forest.n_trees(),
                forest.n_features(),
                forest.n_classes()
            );
            self.forest = Some(forest);
        }
        Ok(self.forest.as_ref().expect("just loaded"))
    }

    fn engine(&mut self, kind: &str) -> Result<Arc<dyn InferenceEngine>, String> {
        if let Some(engine) = self.built.get(kind) {
            return Ok(Arc::clone(engine));
        }
        if let Some(path) = kind.strip_prefix("artifact:") {
            if path.is_empty() {
                return Err("artifact: kind needs a path, e.g. artifact:model.blt".to_owned());
            }
            let engine = ArtifactEngine::open(path).map_err(|e| format!("map {path}: {e}"))?;
            let meta = engine.model().meta();
            println!(
                "mapped BLT1 artifact {path}: {} dictionary entries, {} table slots, {} classes \
                 ({})",
                meta.n_entries,
                meta.table_capacity,
                meta.n_classes,
                if engine.model().artifact().is_mapped() {
                    "zero-copy mmap"
                } else {
                    "aligned heap fallback"
                }
            );
            let engine: Arc<dyn InferenceEngine> = Arc::new(engine);
            self.built.insert(kind.to_owned(), Arc::clone(&engine));
            return Ok(engine);
        }
        let engine: Arc<dyn InferenceEngine> = match kind {
            "bolt" => {
                let path = self
                    .artifact
                    .as_ref()
                    .ok_or("--model NAME=bolt needs --artifact BOLT.json")?;
                let json =
                    std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
                let mut bolt: BoltForest =
                    serde_json::from_str(&json).map_err(|e| e.to_string())?;
                bolt.rebuild();
                println!(
                    "loaded Bolt artifact: {} dictionary entries, {} table cells, {} classes",
                    bolt.dictionary().len(),
                    bolt.table().n_cells(),
                    bolt.n_classes()
                );
                Arc::new(BoltEngine::new(Arc::new(bolt)))
            }
            "scikit" => Arc::new(ScikitLikeForest::from_forest(self.forest()?)),
            "ranger" => Arc::new(RangerLikeForest::from_forest(self.forest()?)),
            "fp" => {
                let cal_path = self
                    .calibration
                    .clone()
                    .ok_or("engine kind fp needs --calibration-csv for hot-path estimation")?;
                let file =
                    std::fs::File::open(&cal_path).map_err(|e| format!("open {cal_path}: {e}"))?;
                let cal = csv::from_csv(BufReader::new(file)).map_err(|e| e.to_string())?;
                Arc::new(ForestPackingForest::from_forest(self.forest()?, &cal))
            }
            other => {
                return Err(format!(
                    "unknown engine kind {other:?} (bolt|artifact:PATH.blt|scikit|ranger|fp)"
                ))
            }
        };
        self.built.insert(kind.to_owned(), Arc::clone(&engine));
        Ok(engine)
    }
}

/// Parses one `--model NAME=KIND` value and appends it. Duplicate names
/// are *not* checked here: the store's [`register`](bolt_server::ModelStore::register)
/// refuses them with a typed error, so the rejection happens in one place
/// for every caller (flags, library users, live reconfiguration) and
/// surfaces from the bind call.
fn push_model(models: &mut Vec<(String, String)>, value: &str) -> Result<(), String> {
    let (name, kind) = value
        .split_once('=')
        .ok_or_else(|| format!("--model wants NAME=KIND, got {value:?}"))?;
    if name.is_empty() {
        return Err("--model needs a non-empty NAME".to_owned());
    }
    models.push((name.to_owned(), kind.to_owned()));
    Ok(())
}

/// Parses a byte budget with an optional `k`/`m`/`g` suffix (powers of
/// 1024), e.g. `64m`.
fn parse_bytes(flag: &str, value: &str) -> Result<u64, String> {
    let (digits, shift) = match value.as_bytes().last().map(u8::to_ascii_lowercase) {
        Some(b'k') => (&value[..value.len() - 1], 10),
        Some(b'm') => (&value[..value.len() - 1], 20),
        Some(b'g') => (&value[..value.len() - 1], 30),
        _ => (value, 0),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("{flag} wants BYTES[k|m|g], got {value:?}"))?;
    n.checked_mul(1 << shift)
        .ok_or_else(|| format!("{flag} overflows u64: {value:?}"))
}

fn run() -> Result<(), String> {
    let mut artifact = None;
    let mut forest_path = None;
    let mut engine_name = None;
    let mut calibration = None;
    let mut socket = None;
    let mut tcp = None;
    let mut models: Vec<(String, String)> = Vec::new();
    let mut default_model = None;
    let mut model_dir: Option<String> = None;
    let mut resident_bytes = None;
    let mut keep_versions: Option<String> = None;
    let mut admin_socket: Option<String> = None;
    let mut no_admin_socket = false;
    let mut rescan_interval: Option<String> = None;
    let mut compact_interval: Option<String> = None;
    let mut warm_top: Option<String> = None;
    let mut serving = None;
    let mut no_microbatch = false;
    let mut flush_samples = None;
    let mut flush_micros = None;
    let mut queue_depth = None;
    let mut workers = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        // Boolean flags first; everything else takes one value.
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            "--no-microbatch" => {
                no_microbatch = true;
                continue;
            }
            "--no-admin-socket" => {
                no_admin_socket = true;
                continue;
            }
            _ => {}
        }
        let value = args.next().ok_or_else(|| format!("{arg} needs a value"))?;
        match arg.as_str() {
            "--artifact" => artifact = Some(value),
            "--forest" => forest_path = Some(value),
            "--engine" => engine_name = Some(value),
            "--calibration-csv" => calibration = Some(value),
            "--socket" => socket = Some(value),
            "--tcp" => tcp = Some(value),
            "--model" => push_model(&mut models, &value)?,
            "--default" => default_model = Some(value),
            "--model-dir" => model_dir = Some(value),
            "--resident-bytes" => resident_bytes = Some(parse_bytes("--resident-bytes", &value)?),
            "--keep-versions" => keep_versions = Some(value),
            "--admin-socket" => admin_socket = Some(value),
            "--rescan-interval" => rescan_interval = Some(value),
            "--compact-interval" => compact_interval = Some(value),
            "--warm-top" => warm_top = Some(value),
            "--serving" => serving = Some(value),
            "--mb-flush-samples" => flush_samples = Some(value),
            "--mb-flush-micros" => flush_micros = Some(value),
            "--mb-queue-depth" => queue_depth = Some(value),
            "--workers" => workers = Some(value),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let mode = serving_mode(
        serving.as_deref(),
        no_microbatch,
        flush_samples.as_deref(),
        flush_micros.as_deref(),
        queue_depth.as_deref(),
        workers.as_deref(),
    )?;
    let socket = socket.ok_or("need --socket")?;
    let keep_versions = keep_versions
        .as_deref()
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| format!("--keep-versions wants a non-negative integer, got {v:?}"))
        })
        .transpose()?;
    if model_dir.is_none() && (resident_bytes.is_some() || keep_versions.is_some()) {
        return Err("--resident-bytes/--keep-versions only apply with --model-dir".to_owned());
    }
    let parse_secs = |flag: &str, v: Option<&str>| -> Result<Option<u64>, String> {
        v.map(|v| {
            v.parse::<u64>().ok().filter(|&n| n > 0).ok_or_else(|| {
                format!("{flag} wants a positive whole number of seconds, got {v:?}")
            })
        })
        .transpose()
    };
    let rescan_interval = parse_secs("--rescan-interval", rescan_interval.as_deref())?;
    let compact_interval = parse_secs("--compact-interval", compact_interval.as_deref())?;
    let warm_top = warm_top
        .as_deref()
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| format!("--warm-top wants a non-negative integer, got {v:?}"))
        })
        .transpose()?
        .unwrap_or(0);
    if model_dir.is_none()
        && (rescan_interval.is_some() || compact_interval.is_some() || warm_top > 0)
    {
        return Err(
            "--rescan-interval/--compact-interval/--warm-top only apply with --model-dir"
                .to_owned(),
        );
    }
    if no_admin_socket && admin_socket.is_some() {
        return Err("--admin-socket and --no-admin-socket are mutually exclusive".to_owned());
    }
    // The admin socket defaults on for fleet (--model-dir) daemons: it
    // lives inside the model directory, so its 0600 mode plus the
    // directory's own permissions gate who can administer the fleet.
    let admin_socket: Option<std::path::PathBuf> = if no_admin_socket {
        None
    } else {
        admin_socket.map(std::path::PathBuf::from).or_else(|| {
            model_dir
                .as_ref()
                .map(|dir| std::path::Path::new(dir).join("admin.sock"))
        })
    };
    if models.is_empty() && model_dir.is_none() {
        // Legacy single-engine invocation: --artifact serves Bolt,
        // --forest [--engine KIND] serves a baseline; the model name is
        // the engine's platform name and it becomes the default.
        let kind = if artifact.is_some() && forest_path.is_none() {
            "bolt".to_owned()
        } else if forest_path.is_some() {
            engine_name.clone().unwrap_or_else(|| "scikit".to_owned())
        } else {
            return Err(
                "need --model NAME=KIND flags, --model-dir, --artifact, or --forest".to_owned(),
            );
        };
        models.push((String::new(), kind)); // name filled from the engine below
    } else if !models.is_empty() && engine_name.is_some() {
        return Err("--engine mixes with the legacy single-model flags only; \
                    with --model, spell the kind as NAME=KIND"
            .to_owned());
    }

    let mut loader = EngineLoader {
        artifact,
        forest_path,
        calibration,
        forest: None,
        built: BTreeMap::new(),
    };
    let mut builder = ServerBuilder::new();
    if let Some(dir) = &model_dir {
        builder = builder.model_dir(dir);
        if let Some(budget) = resident_bytes {
            builder = builder.resident_bytes(budget);
        }
        if let Some(n) = keep_versions {
            builder = builder.keep_versions(n);
        }
    }
    for (name, kind) in &models {
        let engine = loader.engine(kind)?;
        let name = if name.is_empty() {
            engine.name().to_owned()
        } else {
            name.clone()
        };
        println!("model {name}: {} ({kind})", engine.name());
        builder = builder.register(name, engine);
    }
    if let Some(name) = default_model {
        builder = builder.default_model(name);
    }
    if let Some(path) = &admin_socket {
        builder = builder.admin_socket(path);
    }
    if warm_top > 0 {
        builder = builder.warm_top(warm_top);
    }

    let registry_builder = builder.serving(mode.clone());
    let server = registry_builder
        .bind_uds(&socket)
        .map_err(|e| format!("bind {socket}: {e}"))?;
    let store = server.store();
    if let Some(dir) = &model_dir {
        let listed = store.list();
        println!(
            "model directory {dir}: {} models cataloged{}",
            listed.len(),
            resident_bytes.map_or_else(String::new, |b| format!(", resident budget {b} bytes"))
        );
        if keep_versions.is_some() {
            let stats = store.compact().map_err(|e| format!("compact {dir}: {e}"))?;
            println!(
                "compacted registry log: {} -> {} bytes, {} superseded artifact(s) deleted",
                stats.wal_bytes_before, stats.wal_bytes_after, stats.files_deleted
            );
        }
        if warm_top > 0 {
            let metrics = store.metrics();
            println!(
                "warmed up: {} artifact(s) resident ({} bytes) before first accept",
                metrics.resident_models, metrics.resident_bytes
            );
        }
    }
    if let Some(path) = server.admin_path() {
        println!(
            "boltd admin socket on {} (mode 0600; drive with boltctl)",
            path.display()
        );
    }
    // Background maintenance: leaked for the daemon's lifetime (the serve
    // loop below never returns).
    let mut maintenance = Vec::new();
    if let Some(secs) = rescan_interval {
        println!("boltd rescan: polling the model directory every {secs}s");
        maintenance.push(bolt_server::admin::spawn_rescan(
            store.clone(),
            Duration::from_secs(secs),
        ));
    }
    if let Some(secs) = compact_interval {
        println!("boltd compaction: every {secs}s in the background");
        maintenance.push(bolt_server::admin::spawn_compactor(
            store.clone(),
            Duration::from_secs(secs),
        ));
    }
    std::mem::forget(maintenance);
    // Logged once at startup so operators can tell which scan backend the
    // process resolved (BOLT_KERNEL override or CPU feature detection),
    // and how connections are scheduled.
    println!("boltd scan kernel: {}", bolt_core::Kernel::selected());
    match &mode {
        ServingMode::ThreadPerConnection => {
            println!("boltd serving: one thread per connection (no batching)");
        }
        ServingMode::EventLoop(opts) if opts.microbatch.enabled => {
            println!(
                "boltd serving: event loop, micro-batch flush at {} samples / {} µs, \
                 queue depth {}, workers {}",
                opts.microbatch.flush_samples,
                opts.microbatch.flush_wait.as_micros(),
                opts.microbatch.queue_depth,
                if opts.workers == 0 {
                    "auto".to_owned()
                } else {
                    opts.workers.to_string()
                }
            );
        }
        ServingMode::EventLoop(opts) => {
            println!(
                "boltd serving: event loop, micro-batching off, queue depth {}",
                opts.microbatch.queue_depth
            );
        }
        _ => {}
    }
    println!("boltd listening on {socket} (Ctrl-C to stop)");
    let _tcp_server = match tcp {
        Some(addr) => {
            // Both transports share ONE store: one catalog, one
            // write-ahead log, one resident budget.
            let tcp_server = ServerBuilder::with_store(store.clone())
                .serving(mode)
                .bind_tcp(&addr)
                .map_err(|e| format!("bind tcp {addr}: {e}"))?;
            println!("boltd also listening on tcp {}", tcp_server.local_addr());
            Some(tcp_server)
        }
        None => None,
    };

    // Serve until interrupted; report stats whenever they change.
    let mut last = server.stats();
    loop {
        std::thread::sleep(std::time::Duration::from_secs(1));
        let stats = server.stats();
        if stats != last {
            println!(
                "served {} requests, mean latency {:.3} µs ({} artifact bytes resident)",
                stats.requests,
                stats.mean_latency_ns() / 1000.0,
                store.resident_bytes()
            );
            for model in store.list() {
                let default = if model.is_default { " (default)" } else { "" };
                let residency = if model.version == 0 {
                    String::new() // in-memory engine, no artifact behind it
                } else if model.resident {
                    format!(" [v{} resident, {} bytes]", model.version, model.bytes)
                } else {
                    format!(" [v{} cold, {} bytes]", model.version, model.bytes)
                };
                println!(
                    "  {}: {} requests via {}{residency}{default}",
                    model.name, model.requests, model.engine
                );
            }
            let metrics = store.metrics();
            if metrics.evictions > 0 {
                println!(
                    "  eviction pressure: {} eviction(s), {} thrash reload(s), \
                     resident high-water {} bytes",
                    metrics.evictions, metrics.thrash_reloads, metrics.resident_bytes_hwm
                );
            }
            last = stats;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{parse_bytes, push_model, serving_mode};
    use bolt_server::ServingMode;
    use std::time::Duration;

    #[test]
    fn serving_defaults_to_event_loop_microbatching() {
        let mode = serving_mode(None, false, None, None, None, None).unwrap();
        match mode {
            ServingMode::EventLoop(opts) => {
                assert!(opts.microbatch.enabled);
                assert_eq!(opts.microbatch.flush_samples, 64);
                assert_eq!(opts.workers, 0);
            }
            other => panic!("expected event loop default, got {other:?}"),
        }
    }

    #[test]
    fn serving_flags_parse_into_options() {
        let mode = serving_mode(
            Some("event-loop"),
            true,
            Some("128"),
            Some("500"),
            Some("1024"),
            Some("4"),
        )
        .unwrap();
        match mode {
            ServingMode::EventLoop(opts) => {
                assert!(!opts.microbatch.enabled);
                assert_eq!(opts.microbatch.flush_samples, 128);
                assert_eq!(opts.microbatch.flush_wait, Duration::from_micros(500));
                assert_eq!(opts.microbatch.queue_depth, 1024);
                assert_eq!(opts.workers, 4);
            }
            other => panic!("expected event loop, got {other:?}"),
        }
    }

    #[test]
    fn thread_mode_rejects_microbatch_flags() {
        assert!(matches!(
            serving_mode(Some("threads"), false, None, None, None, None),
            Ok(ServingMode::ThreadPerConnection)
        ));
        assert!(serving_mode(Some("threads"), true, None, None, None, None).is_err());
        assert!(serving_mode(Some("threads"), false, Some("8"), None, None, None).is_err());
        assert!(serving_mode(Some("warp"), false, None, None, None, None).is_err());
        assert!(serving_mode(None, false, Some("not-a-number"), None, None, None).is_err());
    }

    #[test]
    fn model_flags_parse_and_accumulate() {
        let mut models = Vec::new();
        push_model(&mut models, "fast=bolt").unwrap();
        push_model(&mut models, "prod=artifact:model.blt").unwrap();
        push_model(&mut models, "ref=scikit").unwrap();
        assert_eq!(
            models,
            vec![
                ("fast".to_owned(), "bolt".to_owned()),
                ("prod".to_owned(), "artifact:model.blt".to_owned()),
                ("ref".to_owned(), "scikit".to_owned()),
            ]
        );
    }

    #[test]
    fn duplicate_model_names_defer_to_the_store() {
        // Flag parsing no longer second-guesses uniqueness: the store's
        // register() is the one place duplicates are refused, so the
        // parser just accumulates (the bind then fails with the typed
        // error — covered by the builder's own tests).
        let mut models = Vec::new();
        push_model(&mut models, "prod=bolt").unwrap();
        push_model(&mut models, "prod=scikit").unwrap();
        assert_eq!(
            models,
            vec![
                ("prod".to_owned(), "bolt".to_owned()),
                ("prod".to_owned(), "scikit".to_owned()),
            ]
        );
    }

    #[test]
    fn malformed_model_flags_are_rejected() {
        let mut models = Vec::new();
        assert!(push_model(&mut models, "no-equals-sign").is_err());
        assert!(push_model(&mut models, "=bolt").is_err());
        assert!(models.is_empty());
    }

    #[test]
    fn byte_budgets_parse_with_binary_suffixes() {
        assert_eq!(parse_bytes("--resident-bytes", "4096").unwrap(), 4096);
        assert_eq!(parse_bytes("--resident-bytes", "8k").unwrap(), 8 << 10);
        assert_eq!(parse_bytes("--resident-bytes", "64M").unwrap(), 64 << 20);
        assert_eq!(parse_bytes("--resident-bytes", "2g").unwrap(), 2 << 30);
        assert!(parse_bytes("--resident-bytes", "lots").is_err());
        assert!(parse_bytes("--resident-bytes", "64q").is_err());
        assert!(parse_bytes("--resident-bytes", "99999999999999999999g").is_err());
    }
}
