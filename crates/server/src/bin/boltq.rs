//! `boltq` — a one-shot query client for `boltd`, for smoke tests and
//! scripting.
//!
//! ```text
//! boltq --socket /tmp/bolt.sock --sample 1.5,0.0,3.2          # default model
//! boltq --socket /tmp/bolt.sock --model prod --sample 1.5,0,3 # routed
//! boltq --socket /tmp/bolt.sock --zeros 11                    # all-zero sample
//! boltq --socket /tmp/bolt.sock --list                        # registry listing
//! ```
//!
//! Prints `class <N> (<latency> us via <model>)` for a classification, or
//! one `NAME ENGINE REQUESTS [vV resident|cold BYTES] [default]` line per
//! model for `--list` (the bracketed artifact columns appear for
//! store-managed models on v3 servers), and exits nonzero on any error —
//! so shell scripts can assert on both the exit code and the output.

use bolt_server::ClassificationClient;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: boltq --socket PATH [--model NAME] \
                 (--sample F1,F2,... | --zeros N | --list)"
            );
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut socket = None;
    let mut model = None;
    let mut sample: Option<Vec<f32>> = None;
    let mut list = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => list = true,
            flag => {
                let value = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
                match flag {
                    "--socket" => socket = Some(value),
                    "--model" => model = Some(value),
                    "--sample" => sample = Some(parse_sample(&value)?),
                    "--zeros" => {
                        let n: usize = value
                            .parse()
                            .map_err(|e| format!("--zeros wants a count: {e}"))?;
                        sample = Some(vec![0.0; n]);
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
        }
    }
    let socket = socket.ok_or("need --socket PATH")?;
    let mut client =
        ClassificationClient::connect(&socket).map_err(|e| format!("connect {socket}: {e}"))?;

    if list {
        let listing = client.list_models().map_err(|e| e.to_string())?;
        for m in listing.models {
            let default = if m.is_default { " default" } else { "" };
            // version 0 marks a plain in-memory engine: no artifact, no
            // residency story, so the columns would only mislead.
            let artifact = if m.version == 0 {
                String::new()
            } else {
                format!(
                    " v{} {} {}",
                    m.version,
                    if m.resident { "resident" } else { "cold" },
                    m.bytes
                )
            };
            println!("{} {} {}{artifact}{default}", m.name, m.engine, m.requests);
        }
        return Ok(());
    }

    let sample = sample.ok_or("need --sample F1,F2,... or --zeros N (or --list)")?;
    let response = match &model {
        Some(name) => client.classify_with(name, &sample),
        None => client.classify(&sample),
    }
    .map_err(|e| e.to_string())?;
    println!(
        "class {} ({:.1} us via {})",
        response.class,
        response.latency_ns as f64 / 1000.0,
        model.as_deref().unwrap_or("default")
    );
    Ok(())
}

fn parse_sample(text: &str) -> Result<Vec<f32>, String> {
    text.split(',')
        .map(|f| {
            f.trim()
                .parse::<f32>()
                .map_err(|e| format!("bad feature {f:?}: {e}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::parse_sample;

    #[test]
    fn samples_parse_with_whitespace_and_signs() {
        assert_eq!(parse_sample("1.5, -2,0").unwrap(), vec![1.5, -2.0, 0.0]);
        assert!(parse_sample("1.5,x").is_err());
    }
}
