//! TCP transport for the classification front-end.
//!
//! The paper's evaluation uses a Unix domain socket on one host; a real
//! deployment fronts remote clients over TCP ("input data is sent via
//! network to a front-end", Fig. 7). Same framing, same registry routing,
//! same statistics — only the listener differs.

use crate::event_loop::{self, Listener, ServingMode};
use crate::registry::ModelRegistry;
use crate::server::{handle_stream, run_accept_loop, FrontEnd, Shared};
use crate::store::ModelStore;
use crate::ServerStats;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// A classification server on a TCP socket. Hosts every model in its
/// [`ModelRegistry`]; construct it with
/// [`ServerBuilder`](crate::ServerBuilder). Defaults to the event-loop
/// front-end with adaptive micro-batching (see [`ServingMode`]).
///
/// # Examples
///
/// ```no_run
/// use bolt_server::{BoltEngine, ServerBuilder};
/// # use bolt_core::{BoltConfig, BoltForest};
/// # use bolt_forest::{Dataset, ForestConfig, RandomForest};
/// # use std::sync::Arc;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let data = Dataset::from_rows(vec![vec![0.0]], vec![0], 1)?;
/// # let forest = RandomForest::train(&data, &ForestConfig::new(1));
/// # let bolt = Arc::new(BoltForest::compile(&forest, &BoltConfig::default())?);
/// let server = ServerBuilder::new()
///     .register("bolt", Arc::new(BoltEngine::new(bolt)))
///     .bind_tcp("127.0.0.1:0")?;
/// println!("serving on {}", server.local_addr());
/// server.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct TcpClassificationServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    /// The control-plane socket path, when one was bound; removed on stop.
    admin_path: Option<std::path::PathBuf>,
    front: FrontEnd,
}

impl TcpClassificationServer {
    /// Binds the address and starts accepting, serving the store's models
    /// — registry-resident and lazily mapped directory artifacts alike —
    /// under the given serving mode. The control plane, when configured,
    /// stays a local Unix socket even for a TCP data plane: remote
    /// operators go through the host, never the network.
    pub(crate) fn bind_store(
        addr: impl std::net::ToSocketAddrs,
        store: ModelStore,
        mode: ServingMode,
        admin: Option<std::path::PathBuf>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let admin_listener = match &admin {
            Some(admin_path) => Some(crate::admin::bind(admin_path)?),
            None => None,
        };
        let shared = Arc::new(Shared::new(store));
        let front = match mode {
            ServingMode::ThreadPerConnection => {
                let accept_shared = Arc::clone(&shared);
                // Transient accept errors (EMFILE under connection load,
                // aborted handshakes) are retried with backoff rather than
                // killing the accept thread; see run_accept_loop.
                let mut handles = vec![std::thread::spawn(move || {
                    run_accept_loop(
                        &accept_shared,
                        || listener.accept().map(|(stream, _)| stream),
                        |stream, shared| {
                            let _ = serve_tcp_connection(stream, shared);
                        },
                    );
                })];
                if let Some(admin_listener) = admin_listener {
                    admin_listener.set_nonblocking(true)?;
                    let accept_shared = Arc::clone(&shared);
                    handles.push(std::thread::spawn(move || {
                        run_accept_loop(
                            &accept_shared,
                            || admin_listener.accept().map(|(stream, _)| stream),
                            |stream, shared| {
                                if stream
                                    .set_read_timeout(Some(Duration::from_millis(200)))
                                    .is_ok()
                                {
                                    let _ = crate::admin::handle_admin_stream(
                                        stream,
                                        &shared.store,
                                        &shared.shutdown,
                                    );
                                }
                            },
                        );
                    }));
                }
                FrontEnd::Threads(handles)
            }
            ServingMode::EventLoop(opts) => FrontEnd::Event(event_loop::spawn(
                Listener::Tcp(listener),
                admin_listener,
                Arc::clone(&shared),
                opts,
            )?),
        };
        Ok(Self {
            shared,
            local_addr,
            admin_path: admin,
            front,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle to the live model registry, for hot-swapping, retiring,
    /// and re-defaulting models while the server runs.
    #[must_use]
    pub fn registry(&self) -> ModelRegistry {
        self.shared.registry().clone()
    }

    /// A handle to the live model store, for lifecycle operations
    /// (activate, retire, set-default) that must survive a restart.
    #[must_use]
    pub fn store(&self) -> ModelStore {
        self.shared.store.clone()
    }

    /// Snapshot of the aggregate statistics across every model (including
    /// retired ones).
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        self.shared.registry().total_stats()
    }

    /// Snapshot of one model's statistics.
    #[must_use]
    pub fn stats_for(&self, model: &str) -> Option<ServerStats> {
        self.shared.registry().stats(model)
    }

    /// Stops accepting and waits for in-flight connections.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.front.stop();
        if let Some(admin_path) = &self.admin_path {
            let _ = std::fs::remove_file(admin_path);
        }
    }
}

impl Drop for TcpClassificationServer {
    fn drop(&mut self) {
        // Infallible teardown; `shutdown` is the checked variant.
        self.stop();
    }
}

impl std::fmt::Debug for TcpClassificationServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpClassificationServer")
            .field("local_addr", &self.local_addr)
            .field("store", &self.shared.store)
            .finish()
    }
}

fn serve_tcp_connection(
    stream: TcpStream,
    shared: &Shared,
) -> Result<(), crate::proto::ProtoError> {
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    stream.set_nodelay(true)?; // latency-sensitive single-sample requests
    handle_stream(stream, shared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ServerBuilder;
    use crate::client::ClassificationClient;
    use crate::engine::BoltEngine;
    use bolt_baselines::RangerLikeForest;
    use bolt_core::{BoltConfig, BoltForest};
    use bolt_forest::{Dataset, ForestConfig, RandomForest};

    fn fixture() -> (Dataset, RandomForest, Arc<BoltForest>) {
        let rows: Vec<Vec<f32>> = (0..60)
            .map(|i| vec![(i % 6) as f32, (i % 4) as f32])
            .collect();
        let labels: Vec<u32> = rows.iter().map(|r| u32::from(r[0] > 2.0)).collect();
        let data = Dataset::from_rows(rows, labels, 2).expect("valid");
        let forest =
            RandomForest::train(&data, &ForestConfig::new(4).with_max_height(3).with_seed(9));
        let bolt =
            Arc::new(BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles"));
        (data, forest, bolt)
    }

    fn bolt_server(bolt: Arc<BoltForest>) -> TcpClassificationServer {
        ServerBuilder::new()
            .register("bolt", Arc::new(BoltEngine::new(bolt)))
            .bind_tcp("127.0.0.1:0")
            .expect("binds")
    }

    #[test]
    fn tcp_round_trip() {
        let (data, forest, bolt) = fixture();
        let server = bolt_server(bolt);
        let mut client = ClassificationClient::connect_tcp(server.local_addr()).expect("connects");
        for (sample, _) in data.iter().take(25) {
            let response = client.classify(sample).expect("classifies");
            assert_eq!(response.class, forest.predict(sample));
        }
        assert_eq!(server.stats().requests, 25);
        server.shutdown();
    }

    #[test]
    fn tcp_batched_round_trip() {
        let (data, forest, bolt) = fixture();
        let server = bolt_server(bolt);
        let mut client = ClassificationClient::connect_tcp(server.local_addr()).expect("connects");
        let samples: Vec<&[f32]> = (0..30).map(|i| data.sample(i)).collect();
        let response = client.classify_batch(&samples).expect("classifies");
        for (i, &class) in response.classes.iter().enumerate() {
            assert_eq!(class, forest.predict(samples[i]));
        }
        assert_eq!(server.stats().requests, 30);
        server.shutdown();
    }

    #[test]
    fn concurrent_tcp_clients() {
        let (data, forest, bolt) = fixture();
        let server = bolt_server(bolt);
        let addr = server.local_addr();
        let expected: Vec<u32> = (0..15).map(|i| forest.predict(data.sample(i))).collect();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let data = data.clone();
                let expected = expected.clone();
                std::thread::spawn(move || {
                    let mut client = ClassificationClient::connect_tcp(addr).expect("connects");
                    for (i, &want) in expected.iter().enumerate() {
                        let response = client.classify(data.sample(i)).expect("classifies");
                        assert_eq!(response.class, want);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
        assert_eq!(server.stats().requests, 45);
        server.shutdown();
    }

    #[test]
    fn tcp_named_routing() {
        let (data, forest, bolt) = fixture();
        let server = ServerBuilder::new()
            .register("bolt", Arc::new(BoltEngine::new(bolt)))
            .register("ranger", Arc::new(RangerLikeForest::from_forest(&forest)))
            .default_model("ranger")
            .bind_tcp("127.0.0.1:0")
            .expect("binds");
        let mut client = ClassificationClient::connect_tcp(server.local_addr()).expect("connects");
        let sample = data.sample(0);
        let want = forest.predict(sample);
        assert_eq!(
            client.classify_with("bolt", sample).expect("bolt").class,
            want
        );
        assert_eq!(client.classify(sample).expect("default").class, want);
        assert_eq!(
            server.stats_for("ranger").expect("default model").requests,
            1
        );
        let models = client.list_models().expect("lists").models;
        assert_eq!(models.len(), 2);
        assert!(models.iter().any(|m| m.name == "ranger" && m.is_default));
        server.shutdown();
    }

    #[test]
    fn finished_workers_are_reaped_while_accepting() {
        let (data, _, bolt) = fixture();
        let server = bolt_server(bolt);
        let addr = server.local_addr();
        // Open and close many short-lived connections, then poke the
        // accept loop with one more so it runs a reap pass.
        for _ in 0..8 {
            let mut client = ClassificationClient::connect_tcp(addr).expect("connects");
            let _ = client.classify(data.sample(0)).expect("classifies");
            drop(client);
        }
        // reap_finished is exercised deterministically at the unit level;
        // here we just prove the server stays healthy through connection
        // churn and still serves.
        let mut client = ClassificationClient::connect_tcp(addr).expect("connects");
        assert!(client.classify(data.sample(1)).is_ok());
        assert_eq!(server.stats().requests, 9);
        server.shutdown();
    }

    #[test]
    fn reap_finished_joins_only_completed_workers() {
        use crate::server::reap_finished;
        use std::sync::atomic::{AtomicBool, Ordering};
        let release = Arc::new(AtomicBool::new(false));
        let slow_release = Arc::clone(&release);
        let mut workers = vec![
            std::thread::spawn(|| {}),
            std::thread::spawn(move || {
                while !slow_release.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }),
            std::thread::spawn(|| {}),
        ];
        // Give the two quick workers time to finish.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while workers.len() > 1 && std::time::Instant::now() < deadline {
            reap_finished(&mut workers);
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(workers.len(), 1, "only the still-running worker remains");
        release.store(true, Ordering::Release);
        reap_finished(&mut workers); // may or may not catch it yet; no panic
        for worker in workers {
            worker.join().expect("worker");
        }
    }
}
