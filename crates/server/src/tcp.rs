//! TCP transport for the classification front-end.
//!
//! The paper's evaluation uses a Unix domain socket on one host; a real
//! deployment fronts remote clients over TCP ("input data is sent via
//! network to a front-end", Fig. 7). Same framing, same engine interface,
//! same statistics — only the listener differs.

use crate::server::{handle_stream, Shared};
use crate::ServerStats;
use bolt_baselines::InferenceEngine;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A classification server on a TCP socket, one thread per connection.
///
/// # Examples
///
/// ```no_run
/// use bolt_server::{BoltEngine, TcpClassificationServer};
/// # use bolt_core::{BoltConfig, BoltForest};
/// # use bolt_forest::{Dataset, ForestConfig, RandomForest};
/// # use std::sync::Arc;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let data = Dataset::from_rows(vec![vec![0.0]], vec![0], 1)?;
/// # let forest = RandomForest::train(&data, &ForestConfig::new(1));
/// # let bolt = Arc::new(BoltForest::compile(&forest, &BoltConfig::default())?);
/// let server = TcpClassificationServer::bind("127.0.0.1:0", Box::new(BoltEngine::new(bolt)))?;
/// println!("serving on {}", server.local_addr());
/// server.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct TcpClassificationServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpClassificationServer {
    /// Binds the address (use port 0 for an ephemeral port) and starts
    /// accepting.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the address cannot be bound.
    pub fn bind(
        addr: impl std::net::ToSocketAddrs,
        engine: Box<dyn InferenceEngine>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared::new(engine));
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            while !accept_shared.shutdown.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let conn_shared = Arc::clone(&accept_shared);
                        workers.push(std::thread::spawn(move || {
                            let _ = serve_tcp_connection(stream, &conn_shared);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
            for worker in workers {
                let _ = worker.join();
            }
        });
        Ok(Self {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        *self.shared.stats.lock()
    }

    /// Stops accepting and waits for in-flight connections.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpClassificationServer {
    fn drop(&mut self) {
        // Infallible teardown; `shutdown` is the checked variant.
        self.stop();
    }
}

impl std::fmt::Debug for TcpClassificationServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpClassificationServer")
            .field("local_addr", &self.local_addr)
            .field("engine", &self.shared.engine.name())
            .finish()
    }
}

fn serve_tcp_connection(
    stream: TcpStream,
    shared: &Shared,
) -> Result<(), crate::proto::ProtoError> {
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    stream.set_nodelay(true)?; // latency-sensitive single-sample requests
    handle_stream(stream, shared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClassificationClient;
    use crate::engine::BoltEngine;
    use bolt_core::{BoltConfig, BoltForest};
    use bolt_forest::{Dataset, ForestConfig, RandomForest};

    fn fixture() -> (Dataset, RandomForest, Arc<BoltForest>) {
        let rows: Vec<Vec<f32>> = (0..60)
            .map(|i| vec![(i % 6) as f32, (i % 4) as f32])
            .collect();
        let labels: Vec<u32> = rows.iter().map(|r| u32::from(r[0] > 2.0)).collect();
        let data = Dataset::from_rows(rows, labels, 2).expect("valid");
        let forest =
            RandomForest::train(&data, &ForestConfig::new(4).with_max_height(3).with_seed(9));
        let bolt =
            Arc::new(BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles"));
        (data, forest, bolt)
    }

    #[test]
    fn tcp_round_trip() {
        let (data, forest, bolt) = fixture();
        let server = TcpClassificationServer::bind("127.0.0.1:0", Box::new(BoltEngine::new(bolt)))
            .expect("binds");
        let mut client = ClassificationClient::connect_tcp(server.local_addr()).expect("connects");
        for (sample, _) in data.iter().take(25) {
            let response = client.classify(sample).expect("classifies");
            assert_eq!(response.class, forest.predict(sample));
        }
        assert_eq!(server.stats().requests, 25);
        server.shutdown();
    }

    #[test]
    fn tcp_batched_round_trip() {
        let (data, forest, bolt) = fixture();
        let server = TcpClassificationServer::bind("127.0.0.1:0", Box::new(BoltEngine::new(bolt)))
            .expect("binds");
        let mut client = ClassificationClient::connect_tcp(server.local_addr()).expect("connects");
        let samples: Vec<&[f32]> = (0..30).map(|i| data.sample(i)).collect();
        let response = client.classify_batch(&samples).expect("classifies");
        for (i, &class) in response.classes.iter().enumerate() {
            assert_eq!(class, forest.predict(samples[i]));
        }
        assert_eq!(server.stats().requests, 30);
        server.shutdown();
    }

    #[test]
    fn concurrent_tcp_clients() {
        let (data, forest, bolt) = fixture();
        let server = TcpClassificationServer::bind("127.0.0.1:0", Box::new(BoltEngine::new(bolt)))
            .expect("binds");
        let addr = server.local_addr();
        let expected: Vec<u32> = (0..15).map(|i| forest.predict(data.sample(i))).collect();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let data = data.clone();
                let expected = expected.clone();
                std::thread::spawn(move || {
                    let mut client = ClassificationClient::connect_tcp(addr).expect("connects");
                    for (i, &want) in expected.iter().enumerate() {
                        let response = client.classify(data.sample(i)).expect("classifies");
                        assert_eq!(response.class, want);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
        assert_eq!(server.stats().requests, 45);
        server.shutdown();
    }
}
