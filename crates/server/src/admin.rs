//! The control plane: local-only fleet administration over an admin
//! socket.
//!
//! The data plane ([`crate::event_loop`], [`crate::server`]) answers
//! classification traffic; this module is everything an *operator* does
//! to a live daemon — activate a freshly dropped artifact, retire a name,
//! move the default route, compact the registry log, rescan the model
//! directory — without a restart and without touching the data sockets.
//!
//! # Admin frame format
//!
//! Admin frames reuse the wire discipline of the data protocol (`u32`
//! little-endian length prefix, [`FrameReader`]-compatible) with their own
//! magic so a data frame written to the admin socket (or vice versa) is
//! rejected as malformed instead of misparsed:
//!
//! ```text
//! request:  ┌─────────┬─────────────────┬────────────┬───────────┬────────┐
//!           │ u32 len │ u32 ADMIN_MAGIC │ u8 version │ u8 opcode │ body … │
//!           └─────────┴─────────────────┴────────────┴───────────┴────────┘
//! reply:    ┌─────────┬─────────────────┬────────────┬─────────┬──────────┐
//!           │ u32 len │ u32 ADMIN_MAGIC │ u8 version │ u8 kind │ body …   │
//!           └─────────┴─────────────────┴────────────┴─────────┴──────────┘
//! ```
//!
//! Opcodes: `Activate` (name + version), `Retire`, `SetDefault`,
//! `Compact`, `Rescan`, `Status`, `DrainStats`. Every refusal is a typed
//! [`AdminError`] whose code mirrors the [`StoreError`] taxonomy — a
//! `boltctl` invocation can distinguish *missing artifact* from *retired*
//! from *default in use* without parsing prose.
//!
//! # Socket permissions model
//!
//! The admin socket is a Unix domain socket created mode **0600**
//! ([`bind`]): only the daemon's own user (and root) can connect. There
//! is no in-protocol authentication — possession of the socket *is* the
//! credential, exactly like a database's local control socket. Never
//! place it on a world-writable path.
//!
//! # Scheduling
//!
//! In the event-loop serving mode the admin listener is registered with
//! the same poller as the data listener but under its **own reserved
//! token**, and decoded admin ops are executed on a **dedicated control
//! thread** — never on the loop thread (a WAL fsync or compaction would
//! stall every connection) and never behind the inference worker queue
//! (a saturated data plane must not delay an emergency `retire`).
//! Replies flow back through the ordinary completion path. In
//! thread-per-connection mode a separate accept loop serves admin
//! connections with the same handler.
//!
//! Background maintenance rides the same store API: [`spawn_rescan`]
//! polls the directory mtime and rescans on change, [`spawn_compactor`]
//! compacts the WAL on a fixed period. Both are plain threads with a stop
//! flag ([`BackgroundTask`]), cheap enough to leave running for the life
//! of the daemon.

use crate::proto::{write_frame, ModelInfo};
use crate::proto::{FrameReader, ProtoError, MAX_MODEL_NAME_BYTES};
use crate::server::ServerStats;
use crate::store::{CompactStats, ModelStore, RescanStats, StoreError, StoreMetrics};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime};

/// First payload word of every admin frame. Far outside the feature
/// counts, batch magic, and v2 magic of the data protocol, so frames that
/// land on the wrong socket are rejected, not misparsed.
pub const ADMIN_MAGIC: u32 = 0xB017_AD01;

/// The admin protocol version this build speaks.
pub const ADMIN_VERSION: u8 = 1;

/// Opcode: activate `name@version` from the model directory.
pub const ADMIN_OP_ACTIVATE: u8 = 0x01;
/// Opcode: retire a model.
pub const ADMIN_OP_RETIRE: u8 = 0x02;
/// Opcode: make a model the default route.
pub const ADMIN_OP_SET_DEFAULT: u8 = 0x03;
/// Opcode: compact the registry WAL (and prune superseded versions).
pub const ADMIN_OP_COMPACT: u8 = 0x04;
/// Opcode: rescan the model directory for dropped artifacts.
pub const ADMIN_OP_RESCAN: u8 = 0x05;
/// Opcode: report store metrics and the model fleet.
pub const ADMIN_OP_STATUS: u8 = 0x06;
/// Opcode: report per-model request/latency counters.
pub const ADMIN_OP_DRAIN_STATS: u8 = 0x07;

/// Reply kind: the operation succeeded, no payload.
pub const ADMIN_RESP_OK: u8 = 0x80;
/// Reply kind: compaction result ([`CompactStats`]).
pub const ADMIN_RESP_COMPACTED: u8 = 0x81;
/// Reply kind: rescan result ([`RescanStats`]).
pub const ADMIN_RESP_RESCANNED: u8 = 0x82;
/// Reply kind: status report ([`StatusReport`]).
pub const ADMIN_RESP_STATUS: u8 = 0x83;
/// Reply kind: stats report ([`StatsReport`]).
pub const ADMIN_RESP_STATS: u8 = 0x84;
/// Reply kind: the operation was refused ([`AdminError`]).
pub const ADMIN_RESP_REFUSED: u8 = 0xEE;

/// Refusal code: empty or over-long model name ([`StoreError::InvalidName`]).
pub const ADMIN_ERR_INVALID_NAME: u8 = 1;
/// Refusal code: already active at that version ([`StoreError::Duplicate`]).
pub const ADMIN_ERR_DUPLICATE: u8 = 2;
/// Refusal code: the name was never seen ([`StoreError::Unknown`]).
pub const ADMIN_ERR_UNKNOWN: u8 = 3;
/// Refusal code: the name is retired ([`StoreError::Retired`]).
pub const ADMIN_ERR_RETIRED: u8 = 4;
/// Refusal code: retiring the default route ([`StoreError::DefaultInUse`]).
pub const ADMIN_ERR_DEFAULT_IN_USE: u8 = 5;
/// Refusal code: no `NAME@VERSION.blt` on disk ([`StoreError::MissingArtifact`]).
pub const ADMIN_ERR_MISSING_ARTIFACT: u8 = 6;
/// Refusal code: the store has no model directory ([`StoreError::NoDirectory`]).
pub const ADMIN_ERR_NO_DIRECTORY: u8 = 7;
/// Refusal code: a durability or file operation failed ([`StoreError::Io`]).
pub const ADMIN_ERR_IO: u8 = 8;
/// Refusal code: the admin frame decoded as no known request.
pub const ADMIN_ERR_MALFORMED: u8 = 9;
/// Refusal code: the server could not build the reply.
pub const ADMIN_ERR_INTERNAL: u8 = 255;

/// Longest refusal detail carried on the wire; longer messages truncate.
const MAX_DETAIL_BYTES: usize = 1024;

/// One admin operation, as decoded from (or encoded into) an admin frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdminRequest {
    /// Activate `name@version` from the model directory, durably.
    Activate {
        /// Model name.
        name: String,
        /// Artifact version to serve.
        version: u32,
    },
    /// Retire a model, durably when directory-backed.
    Retire(String),
    /// Make a model the default route, durably when directory-backed.
    SetDefault(String),
    /// Compact the registry WAL and prune superseded artifact versions.
    Compact,
    /// Rescan the model directory for dropped artifacts.
    Rescan,
    /// Report store metrics and the model fleet.
    Status,
    /// Report per-model request/latency counters.
    DrainStats,
}

impl AdminRequest {
    /// Serializes into a framed admin request (length prefix included).
    ///
    /// # Errors
    ///
    /// [`ProtoError::Malformed`] for a wire-invalid model name.
    pub fn encode(&self) -> Result<Bytes, ProtoError> {
        let (opcode, name, version) = match self {
            Self::Activate { name, version } => (ADMIN_OP_ACTIVATE, Some(name), Some(*version)),
            Self::Retire(name) => (ADMIN_OP_RETIRE, Some(name), None),
            Self::SetDefault(name) => (ADMIN_OP_SET_DEFAULT, Some(name), None),
            Self::Compact => (ADMIN_OP_COMPACT, None, None),
            Self::Rescan => (ADMIN_OP_RESCAN, None, None),
            Self::Status => (ADMIN_OP_STATUS, None, None),
            Self::DrainStats => (ADMIN_OP_DRAIN_STATS, None, None),
        };
        if let Some(name) = name {
            if name.is_empty() || name.len() > MAX_MODEL_NAME_BYTES {
                return Err(ProtoError::Malformed {
                    detail: format!(
                        "model name must be 1..={MAX_MODEL_NAME_BYTES} bytes, got {}",
                        name.len()
                    ),
                });
            }
        }
        let payload_len =
            6 + name.map_or(0, |n| 1 + n.len()) + if version.is_some() { 4 } else { 0 };
        let mut buf = BytesMut::with_capacity(4 + payload_len);
        buf.put_u32_le(payload_len as u32);
        buf.put_u32_le(ADMIN_MAGIC);
        buf.put_u8(ADMIN_VERSION);
        buf.put_u8(opcode);
        if let Some(name) = name {
            buf.put_u8(name.len() as u8);
            buf.put_slice(name.as_bytes());
        }
        if let Some(version) = version {
            buf.put_u32_le(version);
        }
        Ok(buf.freeze())
    }

    /// Decodes an admin request payload (everything after the length
    /// prefix).
    ///
    /// # Errors
    ///
    /// [`ProtoError::Malformed`] if the payload is not a well-formed
    /// admin frame of a known opcode.
    pub fn decode(mut payload: &[u8]) -> Result<Self, ProtoError> {
        let (version, opcode) = admin_header(&mut payload)?;
        if version != ADMIN_VERSION {
            return Err(ProtoError::Malformed {
                detail: format!(
                    "admin protocol version {version} not supported; this build speaks {ADMIN_VERSION}"
                ),
            });
        }
        let request = match opcode {
            ADMIN_OP_ACTIVATE => {
                let name = get_admin_name(&mut payload)?;
                if payload.remaining() < 4 {
                    return Err(ProtoError::Malformed {
                        detail: "activate request ends before its version".into(),
                    });
                }
                Self::Activate {
                    name,
                    version: payload.get_u32_le(),
                }
            }
            ADMIN_OP_RETIRE => Self::Retire(get_admin_name(&mut payload)?),
            ADMIN_OP_SET_DEFAULT => Self::SetDefault(get_admin_name(&mut payload)?),
            ADMIN_OP_COMPACT => Self::Compact,
            ADMIN_OP_RESCAN => Self::Rescan,
            ADMIN_OP_STATUS => Self::Status,
            ADMIN_OP_DRAIN_STATS => Self::DrainStats,
            other => {
                return Err(ProtoError::Malformed {
                    detail: format!("unknown admin opcode {other:#04x}"),
                })
            }
        };
        if !payload.is_empty() {
            return Err(ProtoError::Malformed {
                detail: "trailing bytes after admin request".into(),
            });
        }
        Ok(request)
    }
}

/// A typed refusal: the admin-protocol projection of [`StoreError`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdminError {
    /// One of the `ADMIN_ERR_*` codes.
    pub code: u8,
    /// Human-readable detail naming the model/version involved.
    pub detail: String,
}

impl std::fmt::Display for AdminError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "refused (code {}): {}", self.code, self.detail)
    }
}

impl From<&StoreError> for AdminError {
    fn from(e: &StoreError) -> Self {
        // StoreError is non_exhaustive; the wildcard covers variants a
        // future store adds before this mapping learns their codes.
        #[allow(unreachable_patterns)]
        let code = match e {
            StoreError::InvalidName(_) => ADMIN_ERR_INVALID_NAME,
            StoreError::Duplicate(_) => ADMIN_ERR_DUPLICATE,
            StoreError::Unknown(_) => ADMIN_ERR_UNKNOWN,
            StoreError::Retired(_) => ADMIN_ERR_RETIRED,
            StoreError::DefaultInUse(_) => ADMIN_ERR_DEFAULT_IN_USE,
            StoreError::MissingArtifact { .. } => ADMIN_ERR_MISSING_ARTIFACT,
            StoreError::NoDirectory => ADMIN_ERR_NO_DIRECTORY,
            StoreError::Io(_) => ADMIN_ERR_IO,
            _ => ADMIN_ERR_INTERNAL,
        };
        Self {
            code,
            detail: e.to_string(),
        }
    }
}

/// The `Status` reply: store metrics plus one row per servable model (the
/// same coherent snapshot [`ModelStore::list`] produces).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatusReport {
    /// Eviction-pressure counters and the residency footprint.
    pub metrics: StoreMetrics,
    /// One row per model, sorted by name.
    pub models: Vec<ModelInfo>,
    /// The daemon's selected SIMD scan kernel (`scalar`/`sse2`/`avx2`/
    /// `avx512`/`neon`). Empty when the serving daemon predates this
    /// field — it rides at the end of the reply so old and new peers
    /// interoperate.
    pub kernel: String,
}

/// The `DrainStats` reply: cumulative request/latency counters, totaled
/// and per model.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsReport {
    /// Aggregate across every model, including retired and evicted ones.
    pub total: ServerStats,
    /// Per-model counters, sorted by name.
    pub models: Vec<(String, ServerStats)>,
}

/// Every admin reply shape.
#[derive(Clone, Debug, PartialEq)]
pub enum AdminReply {
    /// The operation succeeded (activate / retire / set-default).
    Ok,
    /// Compaction result.
    Compacted(CompactStats),
    /// Rescan result.
    Rescanned(RescanStats),
    /// Status report.
    Status(StatusReport),
    /// Stats report.
    Stats(StatsReport),
    /// The operation was refused.
    Refused(AdminError),
}

impl AdminReply {
    /// Serializes into a framed admin reply. Infallible: detail strings
    /// truncate to [`MAX_DETAIL_BYTES`] and oversized fleet listings
    /// degrade to a refusal naming the overflow instead of a torn frame.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        match self.try_encode() {
            Ok(frame) => frame,
            Err(e) => Self::Refused(AdminError {
                code: ADMIN_ERR_INTERNAL,
                detail: format!("reply does not fit in a frame: {e}"),
            })
            .try_encode()
            .expect("refusal replies always fit"),
        }
    }

    fn try_encode(&self) -> Result<Bytes, ProtoError> {
        let mut body = BytesMut::new();
        let kind = match self {
            Self::Ok => ADMIN_RESP_OK,
            Self::Compacted(stats) => {
                body.put_u64_le(stats.wal_bytes_before);
                body.put_u64_le(stats.wal_bytes_after);
                body.put_u64_le(stats.files_deleted as u64);
                ADMIN_RESP_COMPACTED
            }
            Self::Rescanned(stats) => {
                body.put_u32_le(stats.names_added);
                body.put_u32_le(stats.versions_added);
                ADMIN_RESP_RESCANNED
            }
            Self::Status(report) => {
                body.put_u64_le(report.metrics.evictions);
                body.put_u64_le(report.metrics.thrash_reloads);
                body.put_u64_le(report.metrics.resident_bytes);
                body.put_u64_le(report.metrics.resident_bytes_hwm);
                body.put_u64_le(report.metrics.resident_models);
                put_count(&mut body, report.models.len())?;
                for m in &report.models {
                    put_short_str(&mut body, &m.name)?;
                    put_short_str(&mut body, &m.engine)?;
                    body.put_u64_le(m.requests);
                    body.put_u8(u8::from(m.is_default) | (u8::from(m.resident) << 1));
                    body.put_u32_le(m.version);
                    body.put_u64_le(m.bytes);
                }
                put_short_str(&mut body, &report.kernel)?;
                ADMIN_RESP_STATUS
            }
            Self::Stats(report) => {
                body.put_u64_le(report.total.requests);
                body.put_u64_le(report.total.total_latency_ns);
                put_count(&mut body, report.models.len())?;
                for (name, stats) in &report.models {
                    put_short_str(&mut body, name)?;
                    body.put_u64_le(stats.requests);
                    body.put_u64_le(stats.total_latency_ns);
                }
                ADMIN_RESP_STATS
            }
            Self::Refused(error) => {
                let detail: String = error.detail.chars().take(MAX_DETAIL_BYTES / 4).collect();
                body.put_u8(error.code);
                body.put_u16_le(detail.len() as u16);
                body.put_slice(detail.as_bytes());
                ADMIN_RESP_REFUSED
            }
        };
        let payload_len = 6 + body.len();
        if payload_len > crate::proto::MAX_FRAME_BYTES {
            return Err(ProtoError::FrameTooLarge {
                declared: payload_len,
            });
        }
        let mut buf = BytesMut::with_capacity(4 + payload_len);
        buf.put_u32_le(payload_len as u32);
        buf.put_u32_le(ADMIN_MAGIC);
        buf.put_u8(ADMIN_VERSION);
        buf.put_u8(kind);
        buf.put_slice(&body);
        Ok(buf.freeze())
    }

    /// Decodes an admin reply payload (everything after the length
    /// prefix).
    ///
    /// # Errors
    ///
    /// [`ProtoError::Malformed`] if the payload is not a well-formed
    /// admin reply of a known kind.
    pub fn decode(mut payload: &[u8]) -> Result<Self, ProtoError> {
        let (_, kind) = admin_header(&mut payload)?;
        match kind {
            ADMIN_RESP_OK => Ok(Self::Ok),
            ADMIN_RESP_COMPACTED => {
                need(payload, 24, "compaction reply")?;
                Ok(Self::Compacted(CompactStats {
                    wal_bytes_before: payload.get_u64_le(),
                    wal_bytes_after: payload.get_u64_le(),
                    files_deleted: payload.get_u64_le() as usize,
                }))
            }
            ADMIN_RESP_RESCANNED => {
                need(payload, 8, "rescan reply")?;
                Ok(Self::Rescanned(RescanStats {
                    names_added: payload.get_u32_le(),
                    versions_added: payload.get_u32_le(),
                }))
            }
            ADMIN_RESP_STATUS => {
                need(payload, 42, "status reply")?;
                let metrics = StoreMetrics {
                    evictions: payload.get_u64_le(),
                    thrash_reloads: payload.get_u64_le(),
                    resident_bytes: payload.get_u64_le(),
                    resident_bytes_hwm: payload.get_u64_le(),
                    resident_models: payload.get_u64_le(),
                };
                let n = payload.get_u16_le() as usize;
                let mut models = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let name = get_short_str(&mut payload, "model name")?;
                    let engine = get_short_str(&mut payload, "engine name")?;
                    need(payload, 21, "status row")?;
                    let requests = payload.get_u64_le();
                    let flags = payload.get_u8();
                    models.push(ModelInfo {
                        name,
                        engine,
                        requests,
                        is_default: flags & 1 != 0,
                        resident: flags & 2 != 0,
                        version: payload.get_u32_le(),
                        bytes: payload.get_u64_le(),
                    });
                }
                // Trailing kernel string: absent from daemons predating
                // the field, so an exhausted payload decodes as empty
                // rather than malformed.
                let kernel = if payload.is_empty() {
                    String::new()
                } else {
                    get_short_str(&mut payload, "kernel name")?
                };
                Ok(Self::Status(StatusReport {
                    metrics,
                    models,
                    kernel,
                }))
            }
            ADMIN_RESP_STATS => {
                need(payload, 18, "stats reply")?;
                let total = ServerStats {
                    requests: payload.get_u64_le(),
                    total_latency_ns: payload.get_u64_le(),
                };
                let n = payload.get_u16_le() as usize;
                let mut models = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let name = get_short_str(&mut payload, "model name")?;
                    need(payload, 16, "stats row")?;
                    models.push((
                        name,
                        ServerStats {
                            requests: payload.get_u64_le(),
                            total_latency_ns: payload.get_u64_le(),
                        },
                    ));
                }
                Ok(Self::Stats(StatsReport { total, models }))
            }
            ADMIN_RESP_REFUSED => {
                need(payload, 3, "refusal reply")?;
                let code = payload.get_u8();
                let len = payload.get_u16_le() as usize;
                need(payload, len, "refusal detail")?;
                let mut bytes = vec![0u8; len];
                payload.copy_to_slice(&mut bytes);
                let detail = String::from_utf8(bytes).map_err(|_| ProtoError::Malformed {
                    detail: "refusal detail is not UTF-8".into(),
                })?;
                Ok(Self::Refused(AdminError { code, detail }))
            }
            other => Err(ProtoError::Malformed {
                detail: format!("unknown admin reply kind {other:#04x}"),
            }),
        }
    }
}

/// Consumes and validates the shared admin header (magic, version byte),
/// returning `(version, opcode-or-kind)`.
fn admin_header(payload: &mut &[u8]) -> Result<(u8, u8), ProtoError> {
    if payload.remaining() < 6 {
        return Err(ProtoError::Malformed {
            detail: "admin frame shorter than its header".into(),
        });
    }
    let magic = payload.get_u32_le();
    if magic != ADMIN_MAGIC {
        return Err(ProtoError::Malformed {
            detail: format!("not an admin frame (magic {magic:#010x})"),
        });
    }
    Ok((payload.get_u8(), payload.get_u8()))
}

fn need(payload: &[u8], n: usize, what: &str) -> Result<(), ProtoError> {
    if payload.remaining() < n {
        return Err(ProtoError::Malformed {
            detail: format!("{what} ends early"),
        });
    }
    Ok(())
}

fn put_count(body: &mut BytesMut, n: usize) -> Result<(), ProtoError> {
    let n = u16::try_from(n).map_err(|_| ProtoError::FrameTooLarge { declared: n })?;
    body.put_u16_le(n);
    Ok(())
}

fn put_short_str(body: &mut BytesMut, s: &str) -> Result<(), ProtoError> {
    if s.len() > u8::MAX as usize {
        return Err(ProtoError::Malformed {
            detail: format!("string {s:?} too long for the admin wire"),
        });
    }
    body.put_u8(s.len() as u8);
    body.put_slice(s.as_bytes());
    Ok(())
}

fn get_short_str(payload: &mut &[u8], what: &str) -> Result<String, ProtoError> {
    need(payload, 1, what)?;
    let len = payload.get_u8() as usize;
    need(payload, len, what)?;
    let mut bytes = vec![0u8; len];
    payload.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| ProtoError::Malformed {
        detail: format!("{what} is not UTF-8"),
    })
}

/// Reads a length-prefixed admin name (same shape as the data protocol's
/// model names).
fn get_admin_name(payload: &mut &[u8]) -> Result<String, ProtoError> {
    need(payload, 1, "admin model name")?;
    let len = payload.get_u8() as usize;
    if len == 0 || len > MAX_MODEL_NAME_BYTES {
        return Err(ProtoError::Malformed {
            detail: format!("model name of {len} bytes outside 1..={MAX_MODEL_NAME_BYTES}"),
        });
    }
    need(payload, len, "admin model name")?;
    let mut bytes = vec![0u8; len];
    payload.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| ProtoError::Malformed {
        detail: "model name is not UTF-8".into(),
    })
}

/// Executes one admin request against the store. Every mutation flows
/// through the store's WAL-first commit discipline, so a `kill -9` at any
/// point recovers to either *before* or *after* the op — never between.
pub fn handle(store: &ModelStore, request: &AdminRequest) -> AdminReply {
    let refused = |e: StoreError| AdminReply::Refused(AdminError::from(&e));
    match request {
        AdminRequest::Activate { name, version } => store
            .activate(name, *version)
            .map_or_else(refused, |()| AdminReply::Ok),
        AdminRequest::Retire(name) => store.retire(name).map_or_else(refused, |()| AdminReply::Ok),
        AdminRequest::SetDefault(name) => store
            .set_default(name)
            .map_or_else(refused, |()| AdminReply::Ok),
        AdminRequest::Compact => store.compact().map_or_else(refused, AdminReply::Compacted),
        AdminRequest::Rescan => store.rescan().map_or_else(refused, AdminReply::Rescanned),
        AdminRequest::Status => AdminReply::Status(StatusReport {
            metrics: store.metrics(),
            models: store.list(),
            kernel: bolt_core::simd::Kernel::selected().name().to_string(),
        }),
        AdminRequest::DrainStats => {
            let registry = store.registry();
            let models = store
                .list()
                .into_iter()
                .map(|m| {
                    let stats = registry.stats(&m.name).unwrap_or_default();
                    (m.name, stats)
                })
                .collect();
            AdminReply::Stats(StatsReport {
                total: registry.total_stats(),
                models,
            })
        }
    }
}

/// The reply to an admin frame that failed to decode: a typed refusal,
/// and the connection survives (the frame was well-delimited).
pub(crate) fn malformed_reply(e: &ProtoError) -> AdminReply {
    AdminReply::Refused(AdminError {
        code: ADMIN_ERR_MALFORMED,
        detail: e.to_string(),
    })
}

/// Binds the admin socket: removes a stale file, binds, and restricts the
/// socket to mode 0600 — the owner (and root) is the only principal that
/// can drive the control plane.
///
/// # Errors
///
/// The bind or `set_permissions` error.
pub fn bind(path: impl AsRef<Path>) -> std::io::Result<UnixListener> {
    use std::os::unix::fs::PermissionsExt;
    let path = path.as_ref();
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    std::fs::set_permissions(path, std::fs::Permissions::from_mode(0o600))?;
    Ok(listener)
}

/// Serves admin frames on one blocking connection until EOF (the
/// thread-per-connection admin path; the event loop has its own
/// non-blocking integration). The caller configures the read timeout.
pub(crate) fn handle_admin_stream<S: Read + Write>(
    mut stream: S,
    store: &ModelStore,
    shutdown: &AtomicBool,
) -> Result<(), ProtoError> {
    let mut frames = FrameReader::new();
    loop {
        if shutdown.load(Ordering::Acquire) {
            return Ok(());
        }
        let payload = match frames.read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => return Ok(()),
            Err(ProtoError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(e) => return Err(e),
        };
        let reply = match AdminRequest::decode(&payload) {
            Ok(request) => handle(store, &request),
            Err(e) => malformed_reply(&e),
        };
        write_frame(&mut stream, &reply.encode())?;
    }
}

/// A synchronous admin-socket client: one connection, one in-flight
/// request. This is what `boltctl` and the integration tests drive.
#[derive(Debug)]
pub struct AdminClient {
    stream: UnixStream,
    frames: FrameReader,
}

impl AdminClient {
    /// Connects to the daemon's admin socket.
    ///
    /// # Errors
    ///
    /// The connect error (daemon down, wrong path, or — by design — a
    /// permissions refusal for any user but the daemon's own).
    pub fn connect(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self {
            stream: UnixStream::connect(path)?,
            frames: FrameReader::new(),
        })
    }

    /// Sends one request and waits for its reply. A [`AdminReply::Refused`]
    /// is a *successful* call — the refusal is the answer.
    ///
    /// # Errors
    ///
    /// Transport failures and undecodable replies.
    pub fn call(&mut self, request: &AdminRequest) -> Result<AdminReply, ProtoError> {
        write_frame(&mut self.stream, &request.encode()?)?;
        match self.frames.read_frame(&mut self.stream)? {
            Some(payload) => AdminReply::decode(&payload),
            None => Err(ProtoError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "admin socket closed before the reply",
            ))),
        }
    }
}

/// A background maintenance thread with a stop flag. Dropping the handle
/// stops and joins the thread; a daemon can also leak it for the process
/// lifetime.
#[derive(Debug)]
pub struct BackgroundTask {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl BackgroundTask {
    fn spawn(body: impl FnMut() + Send + 'static, period: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let mut body = body;
        let handle = std::thread::spawn(move || {
            let tick = Duration::from_millis(100).min(period);
            let mut elapsed = Duration::ZERO;
            loop {
                // Sleep in small ticks so stop() returns promptly even
                // under a long maintenance period.
                while elapsed < period {
                    if thread_stop.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::sleep(tick);
                    elapsed += tick;
                }
                elapsed = Duration::ZERO;
                if thread_stop.load(Ordering::Acquire) {
                    return;
                }
                body();
            }
        });
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the thread and joins it.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for BackgroundTask {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Spawns the directory watcher: every `period` it polls the model
/// directory's mtime and, when it moved, rescans ([`ModelStore::rescan`])
/// so freshly dropped `NAME@VERSION.blt` files become servable without a
/// restart. An explicit admin `Rescan` op remains available for operators
/// who want the pickup *now*.
#[must_use]
pub fn spawn_rescan(store: ModelStore, period: Duration) -> BackgroundTask {
    let mut last_seen: Option<SystemTime> = None;
    BackgroundTask::spawn(
        move || {
            let Some(dir) = store.model_dir() else {
                return;
            };
            let modified = std::fs::metadata(&dir).and_then(|m| m.modified()).ok();
            if modified == last_seen {
                return;
            }
            match store.rescan() {
                Ok(stats) => {
                    last_seen = modified;
                    if stats.names_added > 0 || stats.versions_added > 0 {
                        println!(
                            "boltd rescan: {} new model(s), {} new artifact version(s) cataloged",
                            stats.names_added, stats.versions_added
                        );
                    }
                }
                Err(e) => eprintln!("boltd rescan failed: {e}"),
            }
        },
        period,
    )
}

/// Spawns the background compactor: every `period` the registry WAL is
/// rewritten to its minimal record set and superseded artifact versions
/// beyond the retention are pruned ([`ModelStore::compact`]) — the
/// scheduled replacement for PR 8's startup-only compaction.
#[must_use]
pub fn spawn_compactor(store: ModelStore, period: Duration) -> BackgroundTask {
    BackgroundTask::spawn(
        move || match store.compact() {
            Ok(stats) if stats.files_deleted > 0 => println!(
                "boltd compaction: wal {} -> {} bytes, {} superseded artifact(s) deleted",
                stats.wal_bytes_before, stats.wal_bytes_after, stats.files_deleted
            ),
            Ok(_) => {}
            Err(e) => eprintln!("boltd compaction failed: {e}"),
        },
        period,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for request in [
            AdminRequest::Activate {
                name: "fraud".into(),
                version: 7,
            },
            AdminRequest::Retire("spam".into()),
            AdminRequest::SetDefault("tricky@name".into()),
            AdminRequest::Compact,
            AdminRequest::Rescan,
            AdminRequest::Status,
            AdminRequest::DrainStats,
        ] {
            let framed = request.encode().expect("encodes");
            let (len, payload) = framed.split_at(4);
            assert_eq!(
                u32::from_le_bytes(len.try_into().expect("4 bytes")) as usize,
                payload.len()
            );
            assert_eq!(AdminRequest::decode(payload).expect("decodes"), request);
        }
    }

    #[test]
    fn replies_round_trip() {
        let replies = [
            AdminReply::Ok,
            AdminReply::Compacted(CompactStats {
                wal_bytes_before: 4096,
                wal_bytes_after: 128,
                files_deleted: 3,
            }),
            AdminReply::Rescanned(RescanStats {
                names_added: 2,
                versions_added: 5,
            }),
            AdminReply::Status(StatusReport {
                metrics: StoreMetrics {
                    evictions: 10,
                    thrash_reloads: 4,
                    resident_bytes: 1 << 20,
                    resident_bytes_hwm: 2 << 20,
                    resident_models: 3,
                },
                models: vec![ModelInfo {
                    name: "fraud".into(),
                    engine: "BOLT-BLT".into(),
                    requests: 42,
                    is_default: true,
                    version: 7,
                    resident: true,
                    bytes: 9000,
                }],
                kernel: "avx512".into(),
            }),
            AdminReply::Stats(StatsReport {
                total: ServerStats {
                    requests: 99,
                    total_latency_ns: 12345,
                },
                models: vec![(
                    "fraud".into(),
                    ServerStats {
                        requests: 99,
                        total_latency_ns: 12345,
                    },
                )],
            }),
            AdminReply::Refused(AdminError {
                code: ADMIN_ERR_MISSING_ARTIFACT,
                detail: "no artifact file for fraud@9".into(),
            }),
        ];
        for reply in replies {
            let framed = reply.encode();
            assert_eq!(AdminReply::decode(&framed[4..]).expect("decodes"), reply);
        }
    }

    #[test]
    fn hostile_admin_payloads_are_rejected_not_panics() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0xFF; 3],
            ADMIN_MAGIC.to_le_bytes().to_vec(), // header cut short
            {
                // Wrong magic entirely (a data frame on the admin socket).
                let mut v = crate::proto::V2_MAGIC.to_le_bytes().to_vec();
                v.extend_from_slice(&[2, 0x03]);
                v
            },
            {
                // Unknown opcode.
                let mut v = ADMIN_MAGIC.to_le_bytes().to_vec();
                v.extend_from_slice(&[ADMIN_VERSION, 0x77]);
                v
            },
            {
                // Activate with a truncated name.
                let mut v = ADMIN_MAGIC.to_le_bytes().to_vec();
                v.extend_from_slice(&[ADMIN_VERSION, ADMIN_OP_ACTIVATE, 12, b'x']);
                v
            },
            {
                // Trailing garbage after a well-formed compact.
                let mut v = ADMIN_MAGIC.to_le_bytes().to_vec();
                v.extend_from_slice(&[ADMIN_VERSION, ADMIN_OP_COMPACT, 0xAA]);
                v
            },
            {
                // A version from the future.
                let mut v = ADMIN_MAGIC.to_le_bytes().to_vec();
                v.extend_from_slice(&[9, ADMIN_OP_STATUS]);
                v
            },
        ];
        for payload in cases {
            assert!(
                AdminRequest::decode(&payload).is_err(),
                "payload {payload:?} must be rejected"
            );
            assert!(AdminReply::decode(&payload).is_err());
        }
    }

    #[test]
    fn oversized_detail_truncates_instead_of_tearing() {
        let reply = AdminReply::Refused(AdminError {
            code: ADMIN_ERR_IO,
            detail: "x".repeat(1 << 16),
        });
        let framed = reply.encode();
        match AdminReply::decode(&framed[4..]).expect("decodes") {
            AdminReply::Refused(e) => {
                assert_eq!(e.code, ADMIN_ERR_IO);
                assert!(e.detail.len() <= MAX_DETAIL_BYTES);
            }
            other => panic!("expected refusal, got {other:?}"),
        }
    }
}
