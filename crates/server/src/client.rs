//! Blocking client for the classification service.

use crate::proto::{
    read_frame, write_frame, ClassifyBatchRequest, ClassifyBatchResponse, ClassifyRequest,
    ClassifyResponse, ProtoError,
};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Object-safe byte stream the client can ride (Unix or TCP transport).
trait Transport: Read + Write + Send + std::fmt::Debug {}
impl<T: Read + Write + Send + std::fmt::Debug> Transport for T {}

/// A blocking client holding one connection to a classification server
/// ([`ClassificationServer`] over Unix sockets or
/// [`TcpClassificationServer`] over TCP).
///
/// [`ClassificationServer`]: crate::ClassificationServer
/// [`TcpClassificationServer`]: crate::TcpClassificationServer
#[derive(Debug)]
pub struct ClassificationClient {
    stream: Box<dyn Transport>,
}

impl ClassificationClient {
    /// Connects to a server's Unix domain socket.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the socket is absent or refuses.
    pub fn connect(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self {
            stream: Box::new(UnixStream::connect(path)?),
        })
    }

    /// Connects to a server's TCP address (Nagle disabled for
    /// latency-sensitive single-sample requests).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the address refuses.
    pub fn connect_tcp(addr: impl std::net::ToSocketAddrs) -> std::io::Result<Self> {
        let stream = std::net::TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream: Box::new(stream),
        })
    }

    /// Sends one sample and waits for its classification.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtoError`] on socket failure, a malformed response, or
    /// the server closing mid-request.
    pub fn classify(&mut self, features: &[f32]) -> Result<ClassifyResponse, ProtoError> {
        let request = ClassifyRequest {
            features: features.to_vec(),
        };
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream)?.ok_or(ProtoError::UnexpectedEof)?;
        ClassifyResponse::decode(&payload)
    }

    /// Sends a whole batch in one frame and waits for its classifications
    /// (one class per sample, in order).
    ///
    /// The server runs the batch through the engine's batched kernel, so
    /// this amortizes both the round trip and the per-sample scan cost.
    ///
    /// One frame carries at most [`MAX_BATCH_SAMPLES`] samples and
    /// [`MAX_FRAME_BYTES`] bytes (~262k floats); split larger batches
    /// across multiple calls.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtoError`] on socket failure, a malformed response,
    /// the server closing mid-request, or
    /// [`ProtoError::FrameTooLarge`] when the batch exceeds the per-frame
    /// limits (nothing is sent in that case).
    ///
    /// # Panics
    ///
    /// Panics if the samples do not all share one feature count.
    ///
    /// [`MAX_BATCH_SAMPLES`]: crate::proto::MAX_BATCH_SAMPLES
    /// [`MAX_FRAME_BYTES`]: crate::proto::MAX_FRAME_BYTES
    pub fn classify_batch(
        &mut self,
        samples: &[&[f32]],
    ) -> Result<ClassifyBatchResponse, ProtoError> {
        let request = ClassifyBatchRequest {
            samples: samples.iter().map(|s| s.to_vec()).collect(),
        };
        write_frame(&mut self.stream, &request.encode()?)?;
        let payload = read_frame(&mut self.stream)?.ok_or(ProtoError::UnexpectedEof)?;
        ClassifyBatchResponse::decode(&payload)
    }
}
