//! Blocking client for the classification service.

use crate::proto::{
    is_v2, read_frame, write_frame, ClassifyBatchRequest, ClassifyBatchResponse,
    ClassifyBatchWithRequest, ClassifyRequest, ClassifyResponse, ClassifyWithRequest,
    ListModelsResponse, ProtoError, V2Response,
};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Object-safe byte stream the client can ride (Unix or TCP transport).
trait Transport: Read + Write + Send + std::fmt::Debug {}
impl<T: Read + Write + Send + std::fmt::Debug> Transport for T {}

/// A blocking client holding one connection to a classification server
/// ([`ClassificationServer`] over Unix sockets or
/// [`TcpClassificationServer`] over TCP).
///
/// Legacy methods ([`classify`](Self::classify),
/// [`classify_batch`](Self::classify_batch)) route to the server's
/// *default* model; the `_with` variants route to a named model in the
/// server's [`ModelRegistry`](crate::ModelRegistry), and
/// [`list_models`](Self::list_models) enumerates what is currently
/// served. Structured server rejections (unknown model, retired model,
/// unsupported protocol version) surface as [`ProtoError::Rejected`].
///
/// [`ClassificationServer`]: crate::ClassificationServer
/// [`TcpClassificationServer`]: crate::TcpClassificationServer
#[derive(Debug)]
pub struct ClassificationClient {
    stream: Box<dyn Transport>,
}

impl ClassificationClient {
    /// Connects to a server's Unix domain socket.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the socket is absent or refuses.
    pub fn connect(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self {
            stream: Box::new(UnixStream::connect(path)?),
        })
    }

    /// Connects to a server's TCP address (Nagle disabled for
    /// latency-sensitive single-sample requests).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the address refuses.
    pub fn connect_tcp(addr: impl std::net::ToSocketAddrs) -> std::io::Result<Self> {
        let stream = std::net::TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream: Box::new(stream),
        })
    }

    /// Reads one response frame and fails it if it is a structured error.
    fn read_response(&mut self) -> Result<Vec<u8>, ProtoError> {
        let payload = read_frame(&mut self.stream)?.ok_or(ProtoError::UnexpectedEof)?;
        if is_v2(&payload) {
            if let V2Response::Error(frame) = V2Response::decode(&payload)? {
                return Err(frame.into_error());
            }
        }
        Ok(payload)
    }

    /// Sends one sample to the server's default model and waits for its
    /// classification.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtoError`] on socket failure, a malformed response,
    /// the server closing mid-request, or [`ProtoError::Rejected`] when
    /// the server has no default model.
    pub fn classify(&mut self, features: &[f32]) -> Result<ClassifyResponse, ProtoError> {
        let request = ClassifyRequest {
            features: features.to_vec(),
        };
        write_frame(&mut self.stream, &request.encode())?;
        let payload = self.read_response()?;
        ClassifyResponse::decode(&payload)
    }

    /// Sends one sample to a *named* model and waits for its
    /// classification.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Rejected`] when the model is unknown or
    /// retired, plus every failure mode of [`classify`](Self::classify).
    pub fn classify_with(
        &mut self,
        model: &str,
        features: &[f32],
    ) -> Result<ClassifyResponse, ProtoError> {
        let request = ClassifyWithRequest {
            model: model.to_owned(),
            features: features.to_vec(),
        };
        write_frame(&mut self.stream, &request.encode()?)?;
        let payload = self.read_response()?;
        match V2Response::decode(&payload)? {
            V2Response::Classify(response) => Ok(response),
            other => Err(ProtoError::Malformed {
                detail: format!("expected a classify response, got {other:?}"),
            }),
        }
    }

    /// Sends a whole batch in one frame to the server's default model and
    /// waits for its classifications (one class per sample, in order).
    ///
    /// The server runs the batch through the engine's batched kernel, so
    /// this amortizes both the round trip and the per-sample scan cost.
    ///
    /// One frame carries at most [`MAX_BATCH_SAMPLES`] samples and
    /// [`MAX_FRAME_BYTES`] bytes (~262k floats); split larger batches
    /// across multiple calls.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtoError`] on socket failure, a malformed response,
    /// the server closing mid-request, [`ProtoError::Rejected`] when the
    /// server has no default model, or [`ProtoError::FrameTooLarge`] when
    /// the batch exceeds the per-frame limits (nothing is sent in that
    /// case).
    ///
    /// # Panics
    ///
    /// Panics if the samples do not all share one feature count.
    ///
    /// [`MAX_BATCH_SAMPLES`]: crate::proto::MAX_BATCH_SAMPLES
    /// [`MAX_FRAME_BYTES`]: crate::proto::MAX_FRAME_BYTES
    pub fn classify_batch(
        &mut self,
        samples: &[&[f32]],
    ) -> Result<ClassifyBatchResponse, ProtoError> {
        let request = ClassifyBatchRequest {
            samples: samples.iter().map(|s| s.to_vec()).collect(),
        };
        write_frame(&mut self.stream, &request.encode()?)?;
        let payload = self.read_response()?;
        ClassifyBatchResponse::decode(&payload)
    }

    /// Sends a whole batch to a *named* model and waits for its
    /// classifications.
    ///
    /// One v2 frame carries at most [`MAX_BATCH_SAMPLES_V2`] samples and
    /// [`MAX_FRAME_BYTES`] bytes; split larger batches across multiple
    /// calls.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Rejected`] when the model is unknown or
    /// retired, plus every failure mode of
    /// [`classify_batch`](Self::classify_batch).
    ///
    /// # Panics
    ///
    /// Panics if the samples do not all share one feature count.
    ///
    /// [`MAX_BATCH_SAMPLES_V2`]: crate::proto::MAX_BATCH_SAMPLES_V2
    /// [`MAX_FRAME_BYTES`]: crate::proto::MAX_FRAME_BYTES
    pub fn classify_batch_with(
        &mut self,
        model: &str,
        samples: &[&[f32]],
    ) -> Result<ClassifyBatchResponse, ProtoError> {
        let request = ClassifyBatchWithRequest {
            model: model.to_owned(),
            samples: samples.iter().map(|s| s.to_vec()).collect(),
        };
        write_frame(&mut self.stream, &request.encode()?)?;
        let payload = self.read_response()?;
        match V2Response::decode(&payload)? {
            V2Response::Batch(response) => Ok(response),
            other => Err(ProtoError::Malformed {
                detail: format!("expected a batch response, got {other:?}"),
            }),
        }
    }

    /// Asks the server which models it currently serves (sorted by name,
    /// with engine platform, live request count, and the default flag).
    ///
    /// Asks in protocol v3 first, which additionally carries each model's
    /// artifact version, residency, and on-disk size; a server that only
    /// speaks v2 answers *unsupported version* and the client silently
    /// retries in v2 — the extended fields then hold their defaults
    /// (`version` 0, `resident` true, `bytes` 0).
    ///
    /// # Errors
    ///
    /// Returns a [`ProtoError`] on socket failure or a malformed
    /// response.
    pub fn list_models(&mut self) -> Result<ListModelsResponse, ProtoError> {
        write_frame(
            &mut self.stream,
            &crate::proto::encode_list_models_extended(),
        )?;
        let payload = match self.read_response() {
            Ok(payload) => payload,
            Err(ProtoError::Rejected { code, .. })
                if code == crate::proto::ERR_UNSUPPORTED_VERSION =>
            {
                // Pre-v3 server: fall back to the legacy listing shape.
                write_frame(&mut self.stream, &crate::proto::encode_list_models())?;
                self.read_response()?
            }
            Err(e) => return Err(e),
        };
        match V2Response::decode(&payload)? {
            V2Response::Models(response) => Ok(response),
            other => Err(ProtoError::Malformed {
                detail: format!("expected a model list, got {other:?}"),
            }),
        }
    }
}
