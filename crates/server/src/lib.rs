//! Networked classification service over Unix domain sockets and TCP.
//!
//! Reproduces the paper's evaluation harness (§5–6, Fig. 7): "Input data is
//! sent via network to a front-end. The front-end calls the inference
//! processing engine ... input samples are executed sequentially without
//! batching." Requests and responses travel as length-prefixed binary
//! frames; the response carries the engine's classification and the
//! service-side latency measured "from the time input samples are received
//! to the moment inference finishes, not including network delays".
//!
//! Beyond the paper's sequential methodology, the protocol also accepts
//! batch frames ([`ClassifyBatchRequest`]): many samples in one round trip,
//! served by the engine's batched kernel
//! ([`InferenceEngine::classify_batch`](bolt_baselines::InferenceEngine::classify_batch),
//! Bolt's entry-major sharded scan for [`BoltEngine`]).
//!
//! # Model registry
//!
//! One server process hosts *many* engines behind one socket: a
//! [`ModelRegistry`] maps model names to shared
//! `Arc<dyn InferenceEngine>`s with per-model statistics, supports atomic
//! hot-swap and retirement under live traffic, and designates a *default*
//! model that legacy (unrouted) frames fall back to — §4.5's "the
//! front-end can connect to other forest implementations", made
//! first-class. Model-routed requests travel in versioned protocol-v2
//! frames (see [`proto`]); [`ServerBuilder`] assembles a registry and
//! binds either transport over it.
//!
//! # Examples
//!
//! ```no_run
//! use bolt_server::{BoltEngine, ClassificationClient, ServerBuilder};
//! use bolt_baselines::ScikitLikeForest;
//! use bolt_core::{BoltConfig, BoltForest};
//! use bolt_forest::{Dataset, ForestConfig, RandomForest};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let rows: Vec<Vec<f32>> = (0..40).map(|i| vec![(i % 4) as f32]).collect();
//! let labels: Vec<u32> = (0..40).map(|i| u32::from(i % 4 > 1)).collect();
//! let data = Dataset::from_rows(rows, labels, 2)?;
//! let forest = RandomForest::train(&data, &ForestConfig::new(3).with_seed(1));
//! let bolt = Arc::new(BoltForest::compile(&forest, &BoltConfig::default())?);
//!
//! let server = ServerBuilder::new()
//!     .register("bolt", Arc::new(BoltEngine::new(bolt)))
//!     .register("scikit", Arc::new(ScikitLikeForest::from_forest(&forest)))
//!     .default_model("bolt")
//!     .bind_uds("/tmp/bolt.sock")?;
//! let mut client = ClassificationClient::connect("/tmp/bolt.sock")?;
//! let fast = client.classify_with("bolt", &[3.0])?;       // routed
//! let slow = client.classify_with("scikit", &[3.0])?;     // same socket
//! assert_eq!(fast.class, slow.class);
//! let default = client.classify(&[3.0])?;                 // legacy frame
//! assert_eq!(default.class, fast.class);
//! for model in client.list_models()?.models {
//!     println!("{} ({}) served {}", model.name, model.engine, model.requests);
//! }
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admin;
mod builder;
mod client;
mod engine;
mod event_loop;
mod microbatch;
pub mod proto;
mod registry;
mod server;
pub mod store;
mod tcp;

pub use admin::{AdminClient, AdminError, AdminReply, AdminRequest, StatsReport, StatusReport};
pub use builder::ServerBuilder;
pub use client::ClassificationClient;
pub use engine::{ArtifactEngine, BoltEngine};
pub use event_loop::{EventLoopOptions, ServingMode};
pub use microbatch::MicroBatchConfig;
pub use proto::{
    ClassifyBatchRequest, ClassifyBatchResponse, ClassifyBatchWithRequest, ClassifyRequest,
    ClassifyResponse, ClassifyWithRequest, ErrorFrame, ListModelsResponse, ModelInfo, ProtoError,
    MAX_BATCH_SAMPLES, MAX_BATCH_SAMPLES_V2, MAX_FRAME_BYTES, MAX_MODEL_NAME_BYTES,
    PROTOCOL_VERSION,
};
pub use registry::{ModelHandle, ModelRegistry, RouteError};
pub use server::{ClassificationServer, ServerStats};
pub use store::{ModelStore, RescanStats, StoreError, StoreMetrics};
pub use tcp::TcpClassificationServer;
