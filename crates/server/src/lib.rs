//! Networked classification service over Unix domain sockets.
//!
//! Reproduces the paper's evaluation harness (§5–6, Fig. 7): "Input data is
//! sent via network to a front-end. The front-end calls the inference
//! processing engine ... input samples are executed sequentially without
//! batching." Requests and responses travel as length-prefixed binary
//! frames over a Unix domain socket; the response carries the engine's
//! classification and the service-side latency measured "from the time
//! input samples are received to the moment inference finishes, not
//! including network delays".
//!
//! Beyond the paper's sequential methodology, the protocol also accepts
//! batch frames ([`ClassifyBatchRequest`]): many samples in one round trip,
//! served by the engine's batched kernel
//! ([`InferenceEngine::classify_batch`](bolt_baselines::InferenceEngine::classify_batch),
//! Bolt's entry-major sharded scan for [`BoltEngine`]).
//!
//! # Examples
//!
//! ```no_run
//! use bolt_server::{BoltEngine, ClassificationClient, ClassificationServer};
//! use bolt_core::{BoltConfig, BoltForest};
//! use bolt_forest::{Dataset, ForestConfig, RandomForest};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let rows: Vec<Vec<f32>> = (0..40).map(|i| vec![(i % 4) as f32]).collect();
//! let labels: Vec<u32> = (0..40).map(|i| u32::from(i % 4 > 1)).collect();
//! let data = Dataset::from_rows(rows, labels, 2)?;
//! let forest = RandomForest::train(&data, &ForestConfig::new(3).with_seed(1));
//! let bolt = Arc::new(BoltForest::compile(&forest, &BoltConfig::default())?);
//!
//! let server = ClassificationServer::bind("/tmp/bolt.sock", Box::new(BoltEngine::new(bolt)))?;
//! let mut client = ClassificationClient::connect("/tmp/bolt.sock")?;
//! let response = client.classify(&[3.0])?;
//! assert!(response.class < 2);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod engine;
pub mod proto;
mod server;
mod tcp;

pub use client::ClassificationClient;
pub use engine::BoltEngine;
pub use proto::{
    ClassifyBatchRequest, ClassifyBatchResponse, ClassifyRequest, ClassifyResponse, ProtoError,
    MAX_BATCH_SAMPLES, MAX_FRAME_BYTES,
};
pub use server::{ClassificationServer, ServerStats};
pub use tcp::TcpClassificationServer;
