//! MNIST-shaped digit workload: 28×28 grey-scale images, 10 classes.

use bolt_forest::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Image side length (MNIST is 28×28).
pub const SIDE: usize = 28;
/// Feature count (one per pixel).
pub const N_FEATURES: usize = SIDE * SIDE;
/// Number of digit classes.
pub const N_CLASSES: usize = 10;

/// Generates an MNIST-shaped dataset: `n_samples` 784-pixel images with
/// intensities 0–255 and digit labels 0–9.
///
/// Each class is a fixed "stroke template" (a class-specific set of bright
/// pixels derived from a fixed template seed) perturbed with pixel noise, so
/// shallow trees pick up a handful of highly informative pixels — mirroring
/// how real MNIST forests split on a few discriminative pixels and producing
/// the cross-tree path redundancy Bolt's clustering exploits.
///
/// # Panics
///
/// Panics if `n_samples == 0`.
///
/// # Examples
///
/// ```
/// let data = bolt_data::mnist_like(100, 42);
/// assert_eq!(data.len(), 100);
/// assert!(data.iter().all(|(s, _)| s.iter().all(|&p| (0.0..=255.0).contains(&p))));
/// ```
#[must_use]
pub fn mnist_like(n_samples: usize, seed: u64) -> Dataset {
    assert!(n_samples > 0, "n_samples must be positive");
    // Templates are independent of `seed` so different draws (train/test)
    // come from the same underlying concept.
    let mut template_rng = StdRng::seed_from_u64(0xD161_7000);
    let templates: Vec<Vec<u8>> = (0..N_CLASSES)
        .map(|_| {
            let mut img = vec![0u8; N_FEATURES];
            // A digit-like scrawl: a random walk of bright strokes.
            let (mut r, mut c) = (
                template_rng.gen_range(4..SIDE - 4),
                template_rng.gen_range(4..SIDE - 4),
            );
            for _ in 0..90 {
                img[r * SIDE + c] = 255;
                // Thicken the stroke.
                if c + 1 < SIDE {
                    img[r * SIDE + c + 1] = img[r * SIDE + c + 1].max(180);
                }
                match template_rng.gen_range(0..4) {
                    0 if r > 1 => r -= 1,
                    1 if r + 2 < SIDE => r += 1,
                    2 if c > 1 => c -= 1,
                    _ if c + 2 < SIDE => c += 1,
                    _ => {}
                }
            }
            img
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut values = Vec::with_capacity(n_samples * N_FEATURES);
    let mut labels = Vec::with_capacity(n_samples);
    for _ in 0..n_samples {
        let class = rng.gen_range(0..N_CLASSES);
        labels.push(class as u32);
        for &t in &templates[class] {
            let pixel = if t > 0 {
                // Bright stroke pixel with intensity jitter; occasionally
                // dropped out entirely (pen skips).
                if rng.gen_bool(0.08) {
                    rng.gen_range(0..40)
                } else {
                    let jitter: i16 = rng.gen_range(-40..=0);
                    (i16::from(t) + jitter).clamp(0, 255) as u8
                }
            } else {
                // Background: mostly dark with speckle noise.
                if rng.gen_bool(0.04) {
                    rng.gen_range(40..160)
                } else {
                    rng.gen_range(0..25)
                }
            };
            values.push(f32::from(pixel));
        }
    }
    Dataset::from_flat(values, labels, N_FEATURES, N_CLASSES)
        .expect("generator emits consistent rows")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_forest::{ForestConfig, RandomForest};

    #[test]
    fn shape_and_ranges() {
        let data = mnist_like(50, 3);
        assert_eq!(data.len(), 50);
        assert_eq!(data.n_features(), N_FEATURES);
        assert_eq!(data.n_classes(), N_CLASSES);
        for (sample, label) in data.iter() {
            assert!(label < 10);
            assert!(sample.iter().all(|&p| (0.0..=255.0).contains(&p)));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(mnist_like(20, 9), mnist_like(20, 9));
        assert_ne!(mnist_like(20, 9), mnist_like(20, 10));
    }

    #[test]
    fn covers_multiple_classes() {
        let data = mnist_like(300, 4);
        let distinct: std::collections::HashSet<u32> = data.labels().iter().copied().collect();
        assert!(distinct.len() >= 8, "got {} classes", distinct.len());
    }

    #[test]
    fn shallow_forest_learns_structure() {
        // The paper trains height-4 forests on MNIST; our generator must be
        // learnable at that height, i.e. clearly better than the 10% chance.
        let train = mnist_like(600, 1);
        let test = mnist_like(200, 2);
        let forest = RandomForest::train(
            &train,
            &ForestConfig::new(10).with_max_height(4).with_seed(5),
        );
        let acc = forest.accuracy(&test);
        assert!(acc > 0.3, "height-4 forest accuracy only {acc}");
    }
}
