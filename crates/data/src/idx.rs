//! IDX (LeCun MNIST format) ingestion.
//!
//! The synthetic generators stand in for MNIST when the real corpus is not
//! on disk; when it *is* (the classic `train-images-idx3-ubyte` /
//! `train-labels-idx1-ubyte` pair), this loader reads it so the figures can
//! be regenerated on the paper's actual dataset.
//!
//! Format: big-endian magic `0x0000_08NN` (0x08 = unsigned byte data, NN =
//! dimension count), one big-endian `u32` per dimension, then raw bytes.

use bolt_forest::{Dataset, ForestError};
use std::io::Read;

fn read_u32<R: Read>(reader: &mut R) -> Result<u32, ForestError> {
    let mut buf = [0u8; 4];
    reader
        .read_exact(&mut buf)
        .map_err(|e| ForestError::Serde {
            detail: format!("truncated IDX header: {e}"),
        })?;
    Ok(u32::from_be_bytes(buf))
}

fn read_header<R: Read>(reader: &mut R, expect_dims: u8) -> Result<Vec<usize>, ForestError> {
    let magic = read_u32(reader)?;
    let data_type = (magic >> 8) & 0xFF;
    let dims = (magic & 0xFF) as u8;
    if magic >> 16 != 0 || data_type != 0x08 {
        return Err(ForestError::Serde {
            detail: format!("bad IDX magic {magic:#010x} (want unsigned-byte data)"),
        });
    }
    if dims != expect_dims {
        return Err(ForestError::Serde {
            detail: format!("IDX has {dims} dimensions, expected {expect_dims}"),
        });
    }
    (0..dims)
        .map(|_| read_u32(reader).map(|v| v as usize))
        .collect()
}

/// Reads an MNIST-style pair of IDX streams: a 3-D unsigned-byte image file
/// (`count × rows × cols`) and a 1-D label file, producing a flattened
/// [`Dataset`] with one feature per pixel.
///
/// # Errors
///
/// Returns [`ForestError::Serde`] for malformed/truncated streams and
/// [`ForestError::LabelMismatch`] when counts disagree.
///
/// # Examples
///
/// ```
/// use bolt_data::idx::read_idx_images;
///
/// // A miniature 2-image, 2x2-pixel IDX pair, handwritten:
/// let images: Vec<u8> = [
///     &[0, 0, 8, 3][..],                  // magic: ubyte, 3 dims
///     &2u32.to_be_bytes(), &2u32.to_be_bytes(), &2u32.to_be_bytes(),
///     &[10, 20, 30, 40, 50, 60, 70, 80],  // 2 images x 4 pixels
/// ].concat();
/// let labels: Vec<u8> = [
///     &[0, 0, 8, 1][..],
///     &2u32.to_be_bytes(),
///     &[7, 3],
/// ].concat();
/// let data = read_idx_images(&images[..], &labels[..], 10)?;
/// assert_eq!(data.len(), 2);
/// assert_eq!(data.sample(0), &[10.0, 20.0, 30.0, 40.0]);
/// assert_eq!(data.label(1), 3);
/// # Ok::<(), bolt_forest::ForestError>(())
/// ```
pub fn read_idx_images<R1: Read, R2: Read>(
    mut images: R1,
    mut labels: R2,
    n_classes: usize,
) -> Result<Dataset, ForestError> {
    let image_dims = read_header(&mut images, 3)?;
    let (count, rows, cols) = (image_dims[0], image_dims[1], image_dims[2]);
    let label_dims = read_header(&mut labels, 1)?;
    if label_dims[0] != count {
        return Err(ForestError::LabelMismatch {
            detail: format!("{count} images but {} labels", label_dims[0]),
        });
    }
    let n_features = rows * cols;
    let mut pixel_buf = vec![0u8; count * n_features];
    images
        .read_exact(&mut pixel_buf)
        .map_err(|e| ForestError::Serde {
            detail: format!("truncated IDX pixel data: {e}"),
        })?;
    let mut label_buf = vec![0u8; count];
    labels
        .read_exact(&mut label_buf)
        .map_err(|e| ForestError::Serde {
            detail: format!("truncated IDX label data: {e}"),
        })?;
    let values: Vec<f32> = pixel_buf.into_iter().map(f32::from).collect();
    let label_values: Vec<u32> = label_buf.into_iter().map(u32::from).collect();
    Dataset::from_flat(values, label_values, n_features, n_classes)
}

/// Convenience wrapper opening the two files from disk.
///
/// # Errors
///
/// Propagates I/O failures as [`ForestError::Serde`] plus the
/// [`read_idx_images`] contract.
pub fn read_idx_files(
    images_path: &std::path::Path,
    labels_path: &std::path::Path,
    n_classes: usize,
) -> Result<Dataset, ForestError> {
    let open = |p: &std::path::Path| {
        std::fs::File::open(p).map_err(|e| ForestError::Serde {
            detail: format!("open {}: {e}", p.display()),
        })
    };
    read_idx_images(
        std::io::BufReader::new(open(images_path)?),
        std::io::BufReader::new(open(labels_path)?),
        n_classes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx3(count: u32, rows: u32, cols: u32, pixels: &[u8]) -> Vec<u8> {
        let mut out = vec![0, 0, 8, 3];
        out.extend_from_slice(&count.to_be_bytes());
        out.extend_from_slice(&rows.to_be_bytes());
        out.extend_from_slice(&cols.to_be_bytes());
        out.extend_from_slice(pixels);
        out
    }

    fn idx1(labels: &[u8]) -> Vec<u8> {
        let mut out = vec![0, 0, 8, 1];
        out.extend_from_slice(&(labels.len() as u32).to_be_bytes());
        out.extend_from_slice(labels);
        out
    }

    #[test]
    fn round_trip_small_pair() {
        let images = idx3(3, 2, 2, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]);
        let labels = idx1(&[0, 1, 2]);
        let data = read_idx_images(&images[..], &labels[..], 3).expect("parses");
        assert_eq!(data.len(), 3);
        assert_eq!(data.n_features(), 4);
        assert_eq!(data.sample(2), &[9.0, 10.0, 11.0, 12.0]);
        assert_eq!(data.labels(), &[0, 1, 2]);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut images = idx3(1, 1, 1, &[0]);
        images[2] = 0x09; // wrong data type
        let labels = idx1(&[0]);
        let err = read_idx_images(&images[..], &labels[..], 2).expect_err("bad magic");
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn wrong_dimension_count_rejected() {
        let labels_as_images = idx1(&[0]);
        let labels = idx1(&[0]);
        let err = read_idx_images(&labels_as_images[..], &labels[..], 2).expect_err("1-D images");
        assert!(err.to_string().contains("dimensions"));
    }

    #[test]
    fn count_mismatch_rejected() {
        let images = idx3(2, 1, 1, &[1, 2]);
        let labels = idx1(&[0]);
        let err = read_idx_images(&images[..], &labels[..], 2).expect_err("mismatch");
        assert!(matches!(err, ForestError::LabelMismatch { .. }));
    }

    #[test]
    fn truncated_pixels_rejected() {
        let images = idx3(2, 2, 2, &[1, 2, 3]); // needs 8 bytes
        let labels = idx1(&[0, 1]);
        let err = read_idx_images(&images[..], &labels[..], 2).expect_err("truncated");
        assert!(err.to_string().contains("pixel"));
    }

    #[test]
    fn loaded_idx_trains_and_compiles() {
        use bolt_forest::{ForestConfig, RandomForest};
        // A learnable 1-pixel "dataset": label = pixel > 100.
        let pixels: Vec<u8> = (0..200)
            .map(|i| if i % 2 == 0 { 30 } else { 200 })
            .collect();
        let labels_vec: Vec<u8> = (0..200).map(|i| u8::from(i % 2 != 0)).collect();
        let images = idx3(200, 1, 1, &pixels);
        let labels = idx1(&labels_vec);
        let data = read_idx_images(&images[..], &labels[..], 2).expect("parses");
        let forest = RandomForest::train(&data, &ForestConfig::new(3).with_seed(1));
        assert!(forest.accuracy(&data) > 0.99);
    }
}
