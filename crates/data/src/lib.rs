//! Synthetic workload generators shaped like the Bolt paper's datasets.
//!
//! The paper evaluates on MNIST (vision), LSTW (categorical traffic events),
//! and the Yelp review dataset (natural language bag-of-words). Those corpora
//! are not redistributable here, so this crate provides *seeded synthetic
//! equivalents* that preserve what Bolt's machinery actually depends on:
//!
//! * feature count and value ranges (784 `u8` pixels; 11 mixed traffic
//!   features; 1500 sparse word counts),
//! * class counts (10 digits; 4 severities; 5 star ratings),
//! * a planted decision structure so that CART forests of the paper's
//!   heights learn non-trivial trees with redundant paths across trees —
//!   the redundancy Bolt's clustering exploits (§4.1).
//!
//! Absolute model accuracy is irrelevant to the latency experiments being
//! reproduced; tree *shape* and input encoding width are what matter.
//!
//! # Examples
//!
//! ```
//! use bolt_data::{Workload, generate};
//!
//! let data = generate(Workload::MnistLike, 200, 7);
//! assert_eq!(data.n_features(), 784);
//! assert_eq!(data.n_classes(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod idx;
pub mod lstw;
pub mod mnist;
pub mod trips;
pub mod yelp;

pub use lstw::lstw_like;
pub use mnist::mnist_like;
pub use trips::trip_duration_like;
pub use yelp::yelp_like;

use bolt_forest::Dataset;
use serde::{Deserialize, Serialize};

/// The three workload families evaluated in the paper (§6.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// 28×28 grey-scale digit recognition (MNIST-shaped), 10 classes.
    MnistLike,
    /// Heterogeneous traffic/weather events (LSTW-shaped), 11 features,
    /// 4 severity classes.
    LstwLike,
    /// Sparse 1500-word bag-of-words review ratings (Yelp-shaped), 5 classes.
    YelpLike,
}

impl Workload {
    /// Short human-readable name matching the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::MnistLike => "MNIST",
            Self::LstwLike => "LSTW",
            Self::YelpLike => "YELP",
        }
    }

    /// All workloads, in the order the paper introduces them.
    #[must_use]
    pub fn all() -> [Self; 3] {
        [Self::MnistLike, Self::LstwLike, Self::YelpLike]
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generates `n_samples` of the given workload with a deterministic seed.
#[must_use]
pub fn generate(workload: Workload, n_samples: usize, seed: u64) -> Dataset {
    match workload {
        Workload::MnistLike => mnist_like(n_samples, seed),
        Workload::LstwLike => lstw_like(n_samples, seed),
        Workload::YelpLike => yelp_like(n_samples, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_dispatches_by_workload() {
        assert_eq!(generate(Workload::MnistLike, 10, 1).n_features(), 784);
        assert_eq!(generate(Workload::LstwLike, 10, 1).n_features(), 11);
        assert_eq!(generate(Workload::YelpLike, 10, 1).n_features(), 1500);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Workload::MnistLike.name(), "MNIST");
        assert_eq!(Workload::LstwLike.to_string(), "LSTW");
        assert_eq!(Workload::all().len(), 3);
    }
}
