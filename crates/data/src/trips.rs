//! Trip-duration regression workload (LSTW-flavoured).
//!
//! A regression companion to the traffic workload: predict trip duration in
//! minutes from distance, time-of-day, and weather features. Exercises the
//! `mean(results)` aggregation path of the Fig. 7 service.

use bolt_forest::RegressionDataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of input features.
pub const N_FEATURES: usize = 6;

/// Feature indices, in row order.
pub mod feature {
    /// Trip distance in units of 0.1 mi, 1–300.
    pub const DISTANCE: usize = 0;
    /// Hour of day, 0–23.
    pub const HOUR: usize = 1;
    /// Day of week, 0–6.
    pub const DAY: usize = 2;
    /// Precipitation in units of 0.1 in, 0–60.
    pub const PRECIPITATION: usize = 3;
    /// Road type code, 0–4.
    pub const ROAD_TYPE: usize = 4;
    /// Posted speed limit, mph.
    pub const SPEED_LIMIT: usize = 5;
}

/// Generates `n_samples` trips with a planted duration model: duration
/// grows with distance, shrinks with speed limit, and is inflated by rush
/// hour and precipitation, plus noise.
///
/// # Panics
///
/// Panics if `n_samples == 0`.
///
/// # Examples
///
/// ```
/// let data = bolt_data::trip_duration_like(100, 3);
/// assert_eq!(data.n_features(), 6);
/// assert!(data.iter().all(|(_, t)| t > 0.0));
/// ```
#[must_use]
pub fn trip_duration_like(n_samples: usize, seed: u64) -> RegressionDataset {
    assert!(n_samples > 0, "n_samples must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n_samples);
    let mut targets = Vec::with_capacity(n_samples);
    for _ in 0..n_samples {
        let distance = rng.gen_range(1..=300) as f32;
        let hour = rng.gen_range(0..24) as f32;
        let day = rng.gen_range(0..7) as f32;
        let precipitation = if rng.gen_bool(0.6) {
            0.0
        } else {
            rng.gen_range(1..=60) as f32
        };
        let road_type = rng.gen_range(0..5) as f32;
        let speed_limit = *[25.0f32, 35.0, 45.0, 55.0, 65.0]
            .get(rng.gen_range(0..5usize))
            .expect("index in range");

        let rush = (7.0..=9.0).contains(&hour) || (16.0..=18.0).contains(&hour);
        let weekend = day >= 5.0;
        let mut minutes = (distance / 10.0) / speed_limit * 60.0; // base travel time
        if rush && !weekend {
            minutes *= 1.6;
        }
        minutes *= 1.0 + precipitation / 120.0;
        if road_type >= 3.0 {
            minutes *= 1.2; // surface streets
        }
        minutes += rng.gen_range(-1.0f32..1.0);
        targets.push(minutes.max(0.5));
        rows.push(vec![
            distance,
            hour,
            day,
            precipitation,
            road_type,
            speed_limit,
        ]);
    }
    RegressionDataset::from_rows(rows, targets).expect("generator emits consistent rows")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_forest::{RegressionConfig, RegressionForest};

    #[test]
    fn shape_and_determinism() {
        let a = trip_duration_like(50, 1);
        let b = trip_duration_like(50, 1);
        assert_eq!(a, b);
        assert_eq!(a.n_features(), N_FEATURES);
        assert_ne!(a, trip_duration_like(50, 2));
    }

    #[test]
    fn distance_drives_duration() {
        let data = trip_duration_like(2000, 4);
        // Correlation check: longer trips take longer on average.
        let (mut short, mut long) = (Vec::new(), Vec::new());
        for (sample, target) in data.iter() {
            if sample[feature::DISTANCE] < 100.0 {
                short.push(target);
            } else if sample[feature::DISTANCE] > 200.0 {
                long.push(target);
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(mean(&long) > 2.0 * mean(&short));
    }

    #[test]
    fn forest_beats_mean_baseline() {
        let data = trip_duration_like(1500, 1);
        let forest = RegressionForest::train(
            &data,
            &RegressionConfig::new(10).with_max_height(6).with_seed(5),
        );
        let mean: f64 = data.iter().map(|(_, t)| f64::from(t)).sum::<f64>() / data.len() as f64;
        let variance: f64 = data
            .iter()
            .map(|(_, t)| (f64::from(t) - mean).powi(2))
            .sum::<f64>()
            / data.len() as f64;
        assert!(forest.mse(&data) < variance / 2.0);
    }
}
