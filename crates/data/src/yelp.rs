//! Yelp-shaped review workload: sparse 1500-word bag-of-words, 5 stars.
//!
//! The paper (§6.1) tokenizes review text into "a vector of 1500 features
//! indicating number of appearances of each of the most common 1500 words"
//! and predicts the star rating. This generator emits the same shape: sparse
//! non-negative counts with a planted sentiment vocabulary.

use bolt_forest::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Vocabulary size (as in the paper's preprocessing).
pub const N_FEATURES: usize = 1500;
/// Star ratings 1–5 encoded as classes 0–4.
pub const N_CLASSES: usize = 5;

/// Number of planted positive-sentiment words (word IDs `0..N_POSITIVE`).
pub const N_POSITIVE: usize = 60;
/// Number of planted negative-sentiment words
/// (word IDs `N_POSITIVE..N_POSITIVE + N_NEGATIVE`).
pub const N_NEGATIVE: usize = 60;

/// Generates a Yelp-shaped dataset of `n_samples` sparse review vectors.
///
/// Each review draws a true star rating, then samples word counts: sentiment
/// words appear with probability proportional to how well they agree with
/// the rating, and filler words follow a Zipf-like background so the matrix
/// is realistically sparse (~2–4% non-zeros).
///
/// # Panics
///
/// Panics if `n_samples == 0`.
///
/// # Examples
///
/// ```
/// let data = bolt_data::yelp_like(50, 3);
/// assert_eq!(data.n_features(), 1500);
/// let nonzero: usize = data.iter().map(|(s, _)| s.iter().filter(|&&c| c > 0.0).count()).sum();
/// assert!(nonzero > 0);
/// ```
#[must_use]
pub fn yelp_like(n_samples: usize, seed: u64) -> Dataset {
    assert!(n_samples > 0, "n_samples must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values = Vec::with_capacity(n_samples * N_FEATURES);
    let mut labels = Vec::with_capacity(n_samples);
    for _ in 0..n_samples {
        let stars = rng.gen_range(0..N_CLASSES); // class = stars - 1
        labels.push(stars as u32);
        // Sentiment in [-1, 1] from the star rating.
        let sentiment = (stars as f32 - 2.0) / 2.0;
        let mut row = vec![0.0f32; N_FEATURES];
        // Positive words: more likely (and more frequent) in high ratings.
        let p_pos = (0.10 + 0.22 * sentiment).max(0.01) as f64;
        let p_neg = (0.10 - 0.22 * sentiment).max(0.01) as f64;
        for count in row.iter_mut().take(N_POSITIVE) {
            if rng.gen_bool(p_pos) {
                *count = rng.gen_range(1..=4) as f32;
            }
        }
        for count in row.iter_mut().skip(N_POSITIVE).take(N_NEGATIVE) {
            if rng.gen_bool(p_neg) {
                *count = rng.gen_range(1..=4) as f32;
            }
        }
        // Background filler words: Zipf-ish, rating-independent.
        let n_filler = rng.gen_range(15..45);
        for _ in 0..n_filler {
            // Low word IDs (common words) favoured quadratically.
            let u: f64 = rng.gen();
            let idx = N_POSITIVE
                + N_NEGATIVE
                + ((u * u) * (N_FEATURES - N_POSITIVE - N_NEGATIVE) as f64) as usize;
            let idx = idx.min(N_FEATURES - 1);
            row[idx] += rng.gen_range(1..=3) as f32;
        }
        values.extend_from_slice(&row);
    }
    Dataset::from_flat(values, labels, N_FEATURES, N_CLASSES)
        .expect("generator emits consistent rows")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_forest::{ForestConfig, RandomForest};

    #[test]
    fn shape_sparsity_and_ranges() {
        let data = yelp_like(100, 6);
        assert_eq!(data.n_features(), N_FEATURES);
        assert_eq!(data.n_classes(), N_CLASSES);
        let mut nonzero = 0usize;
        for (s, label) in data.iter() {
            assert!(label < 5);
            assert!(
                s.iter().all(|&c| c >= 0.0 && c == c.trunc()),
                "integer counts"
            );
            nonzero += s.iter().filter(|&&c| c > 0.0).count();
        }
        let density = nonzero as f64 / (100.0 * N_FEATURES as f64);
        assert!(density < 0.10, "matrix should be sparse, density {density}");
        assert!(
            density > 0.005,
            "matrix should not be empty, density {density}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(yelp_like(30, 1), yelp_like(30, 1));
        assert_ne!(yelp_like(30, 1), yelp_like(30, 2));
    }

    #[test]
    fn sentiment_words_predict_stars() {
        let train = yelp_like(1500, 1);
        let test = yelp_like(400, 2);
        let forest = RandomForest::train(
            &train,
            &ForestConfig::new(10)
                .with_max_height(6)
                .with_features_per_split(80)
                .with_seed(3),
        );
        let acc = forest.accuracy(&test);
        assert!(acc > 0.3, "accuracy only {acc} vs 0.2 chance");
    }
}
