//! LSTW-shaped traffic/weather event workload.
//!
//! The Large-Scale Traffic and Weather Events dataset (Moosavi et al., cited
//! by the paper) has 11 heterogeneous input features — numeric weather
//! readings, coordinates, and categorical codes — and a categorical traffic
//! assessment as the target. The paper notes (§5) that coordinates can be
//! shifted to non-negative ranges (latitude `[-90, 90]` → `[0, 180]`) so
//! every feature fits in a small number of bits; this generator emits the
//! shifted encoding directly.

use bolt_forest::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of input features (as in LSTW).
pub const N_FEATURES: usize = 11;
/// Number of traffic-severity classes.
pub const N_CLASSES: usize = 4;

/// Feature indices, in row order.
pub mod feature {
    /// Hour of day, 0–23.
    pub const HOUR: usize = 0;
    /// Day of week, 0–6.
    pub const DAY: usize = 1;
    /// Temperature in °C shifted to 0–70.
    pub const TEMPERATURE: usize = 2;
    /// Relative humidity, 0–100.
    pub const HUMIDITY: usize = 3;
    /// Visibility in units of 0.1 mi, 0–100.
    pub const VISIBILITY: usize = 4;
    /// Precipitation in units of 0.1 in, 0–60.
    pub const PRECIPITATION: usize = 5;
    /// Road type code, 0–4 (categorical).
    pub const ROAD_TYPE: usize = 6;
    /// Latitude shifted from [-90, 90] to [0, 180] (paper §5).
    pub const LATITUDE: usize = 7;
    /// Longitude shifted from [-180, 180] to [0, 360].
    pub const LONGITUDE: usize = 8;
    /// Posted speed limit, mph.
    pub const SPEED_LIMIT: usize = 9;
    /// Weather event code, 0–6 (categorical).
    pub const EVENT_TYPE: usize = 10;
}

/// Generates an LSTW-shaped dataset of `n_samples` traffic events with a
/// 4-class severity target.
///
/// Severity follows a planted rule set (rush hour, precipitation, poor
/// visibility, and high speed limits raise it) with label noise, so
/// moderate-height trees split on a mix of categorical and numeric features
/// exactly as real LSTW forests do.
///
/// # Panics
///
/// Panics if `n_samples == 0`.
///
/// # Examples
///
/// ```
/// let data = bolt_data::lstw_like(500, 11);
/// assert_eq!(data.n_features(), 11);
/// assert_eq!(data.n_classes(), 4);
/// ```
#[must_use]
pub fn lstw_like(n_samples: usize, seed: u64) -> Dataset {
    assert!(n_samples > 0, "n_samples must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values = Vec::with_capacity(n_samples * N_FEATURES);
    let mut labels = Vec::with_capacity(n_samples);
    for _ in 0..n_samples {
        let hour = rng.gen_range(0..24) as f32;
        let day = rng.gen_range(0..7) as f32;
        let temperature = rng.gen_range(0..=70) as f32;
        let humidity = rng.gen_range(0..=100) as f32;
        let visibility = rng.gen_range(0..=100) as f32;
        let precipitation = if rng.gen_bool(0.6) {
            0.0
        } else {
            rng.gen_range(1..=60) as f32
        };
        let road_type = rng.gen_range(0..5) as f32;
        let latitude = rng.gen_range(0.0..=180.0f32).round();
        let longitude = rng.gen_range(0.0..=360.0f32).round();
        let speed_limit = *[25.0f32, 35.0, 45.0, 55.0, 65.0, 75.0]
            .get(rng.gen_range(0..6usize))
            .expect("index in range");
        let event_type = rng.gen_range(0..7) as f32;

        // Planted severity score.
        let rush_hour = (7.0..=9.0).contains(&hour) || (16.0..=18.0).contains(&hour);
        let weekend = day >= 5.0;
        let mut score = 0.0f32;
        if rush_hour && !weekend {
            score += 1.4;
        }
        score += precipitation / 25.0;
        if visibility < 30.0 {
            score += 1.2;
        }
        if speed_limit >= 65.0 {
            score += 0.8;
        }
        if event_type >= 5.0 {
            score += 1.0; // snow/ice codes
        }
        if road_type == 0.0 {
            score += 0.4; // highway
        }
        // Label noise.
        score += rng.gen_range(-0.5f32..0.5);
        let label = (score / 1.2).floor().clamp(0.0, (N_CLASSES - 1) as f32) as u32;

        values.extend_from_slice(&[
            hour,
            day,
            temperature,
            humidity,
            visibility,
            precipitation,
            road_type,
            latitude,
            longitude,
            speed_limit,
            event_type,
        ]);
        labels.push(label);
    }
    Dataset::from_flat(values, labels, N_FEATURES, N_CLASSES)
        .expect("generator emits consistent rows")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_forest::{ForestConfig, RandomForest};

    #[test]
    fn shape_and_ranges() {
        let data = lstw_like(200, 5);
        assert_eq!(data.n_features(), N_FEATURES);
        assert_eq!(data.n_classes(), N_CLASSES);
        for (s, label) in data.iter() {
            assert!(label < 4);
            assert!((0.0..24.0).contains(&s[feature::HOUR]));
            assert!(
                (0.0..=180.0).contains(&s[feature::LATITUDE]),
                "shifted latitude"
            );
            assert!((0.0..=360.0).contains(&s[feature::LONGITUDE]));
            assert!(s[feature::PRECIPITATION] >= 0.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(lstw_like(50, 2), lstw_like(50, 2));
        assert_ne!(lstw_like(50, 2), lstw_like(50, 3));
    }

    #[test]
    fn all_severities_occur() {
        let data = lstw_like(3000, 8);
        let distinct: std::collections::HashSet<u32> = data.labels().iter().copied().collect();
        assert_eq!(distinct.len(), N_CLASSES, "severities seen: {distinct:?}");
    }

    #[test]
    fn forest_beats_chance() {
        let train = lstw_like(2000, 1);
        let test = lstw_like(500, 2);
        let forest = RandomForest::train(
            &train,
            &ForestConfig::new(10).with_max_height(5).with_seed(4),
        );
        let acc = forest.accuracy(&test);
        assert!(acc > 0.4, "accuracy only {acc} vs 0.25 chance");
    }
}
