#!/usr/bin/env bash
# Regenerates every figure of the paper plus the extra experiments,
# writing one text report per figure into results/.
#
# Usage: scripts/run_all_figures.sh [samples]
#   samples — service requests per timing run (default 2000; the paper's
#             MNIST test set is 10000).
set -euo pipefail
cd "$(dirname "$0")/.."

SAMPLES="${1:-2000}"
export BOLT_BENCH_SAMPLES="$SAMPLES"

cargo build --release --workspace
mkdir -p results

for fig in fig08_layout fig09_architectures fig10_platforms fig11_scaling \
           fig12_metrics fig13_hyperparams fig14_datasets fig15_deep_forest \
           extra_service_latency extra_batching; do
    echo "== $fig (samples=$SAMPLES) =="
    ./target/release/"$fig" | tee "results/$fig.txt"
done

echo "All figures regenerated under results/."
