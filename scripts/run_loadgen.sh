#!/usr/bin/env bash
# Open-loop load-generator smoke test: train and compile a model, serve it
# through a real boltd process on both transports, drive it with bolt-bench
# over UDS and TCP, and validate the emitted BENCH_*.json snapshots against
# the schema. The event-loop front-end is exercised with micro-batching on
# (boltd's default) AND off, and the two runs are diffed with
# `bolt-bench --compare`, as are the committed results/ snapshots (schema +
# plumbing check). Bounded request counts keep this inside CI budgets; the
# numbers it produces are smoke-level, not publishable — use `bolt-bench`
# (the self-hosted suite) on quiet hardware for trajectory entries.
#
# The model-store leg serves a directory fleet through a resident-bytes
# budget (evict + re-map under load), kills boltd with SIGKILL mid-churn,
# and proves the restarted process recovers the same catalog from the
# write-ahead log and serves the whole fleet clean.
#
# The control-plane leg drives the admin socket with boltctl while load
# (including fuzz-shaped hostile frames) sustains: a freshly dropped
# artifact is rescanned and activated live with zero restarts, refused
# ops exit nonzero, the background compactor prunes a superseded version
# without a restart, --warm-top pre-maps artifacts before the first
# accept, and a SIGKILL during admin churn replays the WAL cleanly.
#
# Usage: scripts/run_loadgen.sh [requests]
#   requests — frames per workload (default 1500).
set -euo pipefail
cd "$(dirname "$0")/.."

REQUESTS="${1:-1500}"
WORKDIR="$(mktemp -d "${TMPDIR:-/tmp}/bolt-loadgen.XXXXXX")"
FOREST="$WORKDIR/forest.json"
MODEL="$WORKDIR/model.blt"
SOCKET="$WORKDIR/bolt.sock"
TCP_ADDR="127.0.0.1:19407"
BOLTD_PID=""

cleanup() {
    [ -n "$BOLTD_PID" ] && kill "$BOLTD_PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

cargo build --release --bins --workspace
BOLTC=./target/release/boltc
BOLTD=./target/release/boltd
BENCH=./target/release/bolt-bench

echo "== train + compile (lstw) =="
"$BOLTC" train --workload lstw --samples 800 --trees 8 --height 4 \
    --seed 7 --out "$FOREST"
"$BOLTC" compile --forest "$FOREST" --threshold 2 --out "$MODEL"

# Starts boltd with the given extra serving flags and waits for the socket.
start_boltd() {
    "$BOLTD" --model prod=artifact:"$MODEL" --default prod \
        --socket "$SOCKET" --tcp "$TCP_ADDR" "$@" &
    BOLTD_PID=$!
    for _ in $(seq 1 50); do
        [ -S "$SOCKET" ] && break
        kill -0 "$BOLTD_PID" 2>/dev/null || { echo "boltd died" >&2; exit 1; }
        sleep 0.1
    done
    [ -S "$SOCKET" ] || { echo "boltd never bound $SOCKET" >&2; exit 1; }
}

stop_boltd() {
    kill "$BOLTD_PID" 2>/dev/null || true
    wait "$BOLTD_PID" 2>/dev/null || true
    BOLTD_PID=""
    rm -f "$SOCKET"
}

# Runs the workload mix against the live boltd into the given results dir:
# UDS single + batch, a fixed-duration UDS run, and TCP single with error
# traffic and reconnect churn.
drive() {
    out="$1"
    "$BENCH" --connect uds:"$SOCKET" --workload loadgen_uds_single --data lstw \
        --requests "$REQUESTS" --rate 4000 --threads 4 --out "$out"
    "$BENCH" --connect uds:"$SOCKET" --workload loadgen_uds_batch --data lstw \
        --requests "$REQUESTS" --rate 2000 --threads 4 --batch 16 \
        --out "$out"
    "$BENCH" --connect uds:"$SOCKET" --workload loadgen_uds_timed --data lstw \
        --duration-secs 2 --rate 4000 --threads 4 --out "$out"
    "$BENCH" --connect tcp:"$TCP_ADDR" --workload loadgen_tcp_single --data lstw \
        --requests "$REQUESTS" --rate 4000 --threads 4 --model prod \
        --error-every 16 --reconnect-every 8 --out "$out"
}

echo "== serve on UDS + TCP: event loop, micro-batching ON (default) =="
start_boltd
drive "$WORKDIR/results-mb-on"
stop_boltd

echo "== serve on UDS + TCP: event loop, micro-batching OFF =="
start_boltd --no-microbatch
drive "$WORKDIR/results-mb-off"
stop_boltd

echo "== validate snapshots against the schema =="
for dir in "$WORKDIR/results-mb-on" "$WORKDIR/results-mb-off"; do
    "$BENCH" --check "$dir"/BENCH_loadgen_uds_single.json \
        "$dir"/BENCH_loadgen_uds_batch.json \
        "$dir"/BENCH_loadgen_uds_timed.json \
        "$dir"/BENCH_loadgen_tcp_single.json
done

echo "== compare micro-batching off -> on =="
# Informational on smoke hardware: a huge threshold keeps CI deterministic
# while still proving the compare gate parses, matches, and verdicts.
"$BENCH" --compare "$WORKDIR/results-mb-off" "$WORKDIR/results-mb-on" \
    --threshold 10000

echo "== model-churn: directory fleet through a resident-bytes budget =="
MODELDIR="$WORKDIR/models"
mkdir -p "$MODELDIR"
FLEET=12
CHURN_MODELS=()
for i in $(seq 0 $((FLEET - 1))); do
    name=$(printf 'churn%02d' "$i")
    "$BOLTC" compile --forest "$FOREST" --threshold 2 --model-version 1 \
        --out "$MODELDIR/$name@1.blt"
    CHURN_MODELS+=(--model "$name")
done
# A newer version for the first few names: the store must catalog and
# serve these, and startup compaction (--keep-versions 1) must delete the
# superseded @1 files and journal the survivors to the WAL.
for i in 0 1 2 3; do
    name=$(printf 'churn%02d' "$i")
    "$BOLTC" compile --forest "$FOREST" --threshold 2 --model-version 2 \
        --out "$MODELDIR/$name@2.blt"
done
SIZE=$(stat -c %s "$MODELDIR/churn05@1.blt")
BUDGET=$((SIZE * 9 / 2)) # admits 4 of the 12 models concurrently

# Starts boltd in store mode (model directory, resident budget, version
# retention) and logs its stdout so catalog counts can be compared across
# a crash.
start_boltd_dir() {
    rm -f "$SOCKET"
    "$BOLTD" --model-dir "$MODELDIR" --resident-bytes "$BUDGET" \
        --keep-versions 1 --socket "$SOCKET" >"$1" &
    BOLTD_PID=$!
    for _ in $(seq 1 50); do
        [ -S "$SOCKET" ] && break
        kill -0 "$BOLTD_PID" 2>/dev/null || { echo "boltd died" >&2; exit 1; }
        sleep 0.1
    done
    [ -S "$SOCKET" ] || { echo "boltd never bound $SOCKET" >&2; exit 1; }
}

start_boltd_dir "$WORKDIR/boltd-churn-1.log"
"$BENCH" --connect uds:"$SOCKET" --workload loadgen_model_churn --data lstw \
    --requests "$REQUESTS" --rate 500 --threads 4 "${CHURN_MODELS[@]}" \
    --out "$WORKDIR/results-churn" &
BENCH_PID=$!
sleep 1
echo "-- SIGKILL mid-churn --"
kill -9 "$BOLTD_PID"
wait "$BOLTD_PID" 2>/dev/null || true
BOLTD_PID=""
wait "$BENCH_PID" 2>/dev/null || true

# The restarted process must replay the WAL to the same catalog and serve
# every model in the fleet to completion with zero protocol errors.
start_boltd_dir "$WORKDIR/boltd-churn-2.log"
"$BENCH" --connect uds:"$SOCKET" --workload loadgen_model_churn --data lstw \
    --requests "$REQUESTS" --rate 500 --threads 4 "${CHURN_MODELS[@]}" \
    --out "$WORKDIR/results-churn"
stop_boltd

before=$(grep -o '[0-9]* models cataloged' "$WORKDIR/boltd-churn-1.log")
after=$(grep -o '[0-9]* models cataloged' "$WORKDIR/boltd-churn-2.log")
[ -n "$before" ] || { echo "boltd never cataloged the model dir" >&2; exit 1; }
if [ "$before" != "$after" ]; then
    echo "catalog diverged across SIGKILL: '$before' -> '$after'" >&2
    exit 1
fi
for i in 0 1 2 3; do
    name=$(printf 'churn%02d' "$i")
    if [ -e "$MODELDIR/$name@1.blt" ]; then
        echo "compaction left superseded $name@1.blt behind" >&2
        exit 1
    fi
done
"$BENCH" --check "$WORKDIR/results-churn"/BENCH_loadgen_model_churn.json
echo "model-churn leg OK: $after survive SIGKILL, superseded versions pruned"

echo "== control plane: admin socket, warm-up, live activation, compaction =="
BOLTCTL=./target/release/boltctl
ADMIN_SOCK="$MODELDIR/admin.sock"

# Store mode with the control plane fully on: admin socket (default path
# under the model dir), warm-up of the 4 most recently activated
# artifacts before the first accept, background compaction every second.
start_boltd_admin() {
    rm -f "$SOCKET"
    "$BOLTD" --model-dir "$MODELDIR" --resident-bytes "$BUDGET" \
        --keep-versions 1 --compact-interval 1 --warm-top 4 \
        --socket "$SOCKET" >"$1" &
    BOLTD_PID=$!
    for _ in $(seq 1 50); do
        [ -S "$SOCKET" ] && [ -S "$ADMIN_SOCK" ] && break
        kill -0 "$BOLTD_PID" 2>/dev/null || { echo "boltd died" >&2; exit 1; }
        sleep 0.1
    done
    [ -S "$ADMIN_SOCK" ] || { echo "boltd never bound $ADMIN_SOCK" >&2; exit 1; }
}

start_boltd_admin "$WORKDIR/boltd-admin-1.log"

# --warm-top must have mapped artifacts before the listener accepted.
warmed=""
for _ in $(seq 1 20); do
    if grep -q 'warmed up: ' "$WORKDIR/boltd-admin-1.log"; then warmed=yes; break; fi
    sleep 0.1
done
[ -n "$warmed" ] || { echo "--warm-top produced no warm-up line" >&2; exit 1; }

# The admin socket is owner-only: possession is the credential.
perms=$(stat -c %a "$ADMIN_SOCK")
[ "$perms" = "600" ] || { echo "admin socket mode $perms != 600" >&2; exit 1; }

# Sustained load — with fuzz-shaped hostile frames interleaved on live
# data connections — while the control plane is driven underneath it.
"$BENCH" --connect uds:"$SOCKET" --workload loadgen_admin_churn --data lstw \
    --duration-secs 6 --rate 500 --threads 4 "${CHURN_MODELS[@]}" \
    --hostile-every 16 --out "$WORKDIR/results-admin" &
BENCH_PID=$!
sleep 1

# Drop a brand-new artifact on the RUNNING daemon: rescan catalogs it,
# activate serves it — zero restarts.
"$BOLTC" compile --forest "$FOREST" --threshold 2 --model-version 1 \
    --out "$MODELDIR/fresh@1.blt"
"$BOLTCTL" --socket "$ADMIN_SOCK" rescan
"$BOLTCTL" --socket "$ADMIN_SOCK" activate fresh@1
"$BENCH" --connect uds:"$SOCKET" --workload loadgen_admin_fresh --data lstw \
    --requests 200 --rate 500 --threads 2 --model fresh \
    --out "$WORKDIR/results-admin"

# Refused ops exit nonzero so scripts can gate on them: retiring the
# default model must be refused.
"$BOLTCTL" --socket "$ADMIN_SOCK" set-default fresh
if "$BOLTCTL" --socket "$ADMIN_SOCK" retire fresh 2>/dev/null; then
    echo "retiring the default model was not refused" >&2
    exit 1
fi
"$BOLTCTL" --socket "$ADMIN_SOCK" status

# Background compaction: activate a newer version, then watch the
# periodic compactor — not a restart — delete the superseded artifact.
"$BOLTC" compile --forest "$FOREST" --threshold 2 --model-version 2 \
    --out "$MODELDIR/fresh@2.blt"
"$BOLTCTL" --socket "$ADMIN_SOCK" rescan
"$BOLTCTL" --socket "$ADMIN_SOCK" activate fresh@2
for _ in $(seq 1 100); do
    [ -e "$MODELDIR/fresh@1.blt" ] || break
    sleep 0.1
done
if [ -e "$MODELDIR/fresh@1.blt" ]; then
    echo "background compaction never pruned fresh@1.blt" >&2
    exit 1
fi

wait "$BENCH_PID" || { echo "bolt-bench failed under admin churn" >&2; exit 1; }

echo "-- SIGKILL mid-admin-op --"
# Hammer WAL-journaled admin mutations and yank the daemon mid-stream:
# the restart must replay to exactly before-or-after some operation.
(
    while true; do
        "$BOLTCTL" --socket "$ADMIN_SOCK" set-default fresh >/dev/null 2>&1 || true
        "$BOLTCTL" --socket "$ADMIN_SOCK" set-default churn00 >/dev/null 2>&1 || true
        sleep 0.02
    done
) &
CHURN_PID=$!
sleep 1
kill -9 "$BOLTD_PID"
wait "$BOLTD_PID" 2>/dev/null || true
BOLTD_PID=""
kill "$CHURN_PID" 2>/dev/null || true
wait "$CHURN_PID" 2>/dev/null || true

start_boltd_admin "$WORKDIR/boltd-admin-2.log"
default_row=$("$BOLTCTL" --socket "$ADMIN_SOCK" status | grep '(default)')
case "$default_row" in
    fresh*|churn00*) ;;
    *)
        echo "default after SIGKILL replay is neither candidate: $default_row" >&2
        exit 1
        ;;
esac
"$BENCH" --connect uds:"$SOCKET" --workload loadgen_admin_replay --data lstw \
    --requests 200 --rate 500 --threads 2 --model fresh \
    --out "$WORKDIR/results-admin"
stop_boltd

"$BENCH" --check "$WORKDIR/results-admin"/BENCH_loadgen_admin_churn.json \
    "$WORKDIR/results-admin"/BENCH_loadgen_admin_fresh.json \
    "$WORKDIR/results-admin"/BENCH_loadgen_admin_replay.json
echo "control-plane leg OK: live activation with zero restarts, refused ops exit nonzero, background compaction pruned, warm-up ran, WAL replayed across SIGKILL mid-admin-op"

echo "== compare the committed trajectory snapshots through the same gate =="
# Self-comparison: zero deltas by construction, but every committed
# BENCH_*.json must parse, validate, and match by workload.
"$BENCH" --compare results results

echo "Load-generator round trip OK: boltd served UDS + TCP open-loop traffic with micro-batching on and off, and a model-store fleet survived SIGKILL through the WAL; snapshots validate and compare."
