#!/usr/bin/env bash
# Open-loop load-generator smoke test: train and compile a model, serve it
# through a real boltd process on both transports, drive it with bolt-bench
# over UDS and TCP, and validate the emitted BENCH_*.json snapshots against
# the schema. Bounded request counts keep this inside CI budgets; the
# numbers it produces are smoke-level, not publishable — use
# `bolt-bench` (the self-hosted suite) on quiet hardware for trajectory
# entries.
#
# Usage: scripts/run_loadgen.sh [requests]
#   requests — frames per workload (default 1500).
set -euo pipefail
cd "$(dirname "$0")/.."

REQUESTS="${1:-1500}"
WORKDIR="$(mktemp -d "${TMPDIR:-/tmp}/bolt-loadgen.XXXXXX")"
FOREST="$WORKDIR/forest.json"
MODEL="$WORKDIR/model.blt"
SOCKET="$WORKDIR/bolt.sock"
TCP_ADDR="127.0.0.1:19407"
BOLTD_PID=""

cleanup() {
    [ -n "$BOLTD_PID" ] && kill "$BOLTD_PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

cargo build --release --bins --workspace
BOLTC=./target/release/boltc
BOLTD=./target/release/boltd
BENCH=./target/release/bolt-bench

echo "== train + compile (lstw) =="
"$BOLTC" train --workload lstw --samples 800 --trees 8 --height 4 \
    --seed 7 --out "$FOREST"
"$BOLTC" compile --forest "$FOREST" --threshold 2 --out "$MODEL"

echo "== serve on UDS + TCP =="
"$BOLTD" --model prod=artifact:"$MODEL" --default prod \
    --socket "$SOCKET" --tcp "$TCP_ADDR" &
BOLTD_PID=$!
for _ in $(seq 1 50); do
    [ -S "$SOCKET" ] && break
    kill -0 "$BOLTD_PID" 2>/dev/null || { echo "boltd died" >&2; exit 1; }
    sleep 0.1
done
[ -S "$SOCKET" ] || { echo "boltd never bound $SOCKET" >&2; exit 1; }

echo "== open-loop load: UDS single + batch, TCP single =="
# lstw matches the trained model's 11 features; the error mix proves the
# unknown-model path stays structured under load.
"$BENCH" --connect uds:"$SOCKET" --workload loadgen_uds_single --data lstw \
    --requests "$REQUESTS" --rate 4000 --threads 4 --out "$WORKDIR/results"
"$BENCH" --connect uds:"$SOCKET" --workload loadgen_uds_batch --data lstw \
    --requests "$REQUESTS" --rate 2000 --threads 4 --batch 16 \
    --out "$WORKDIR/results"
"$BENCH" --connect tcp:"$TCP_ADDR" --workload loadgen_tcp_single --data lstw \
    --requests "$REQUESTS" --rate 4000 --threads 4 --model prod \
    --error-every 16 --out "$WORKDIR/results"

echo "== validate snapshots against the schema =="
"$BENCH" --check "$WORKDIR"/results/BENCH_loadgen_uds_single.json \
    "$WORKDIR"/results/BENCH_loadgen_uds_batch.json \
    "$WORKDIR"/results/BENCH_loadgen_tcp_single.json

echo "Load-generator round trip OK: boltd served UDS + TCP open-loop traffic, snapshots validate."
