#!/usr/bin/env bash
# End-to-end BLT1 artifact smoke test: train a forest, compile it to a
# memory-mappable .blt artifact, inspect and verify the file, serve it
# through boltd's model registry, and classify a sample over the socket.
#
# Usage: scripts/run_artifact.sh [samples]
#   samples — training samples for the forest (default 800).
set -euo pipefail
cd "$(dirname "$0")/.."

SAMPLES="${1:-800}"
WORKDIR="$(mktemp -d "${TMPDIR:-/tmp}/bolt-artifact.XXXXXX")"
FOREST="$WORKDIR/forest.json"
MODEL="$WORKDIR/model.blt"
SOCKET="$WORKDIR/bolt.sock"
BOLTD_PID=""

cleanup() {
    [ -n "$BOLTD_PID" ] && kill "$BOLTD_PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

cargo build --release --bins --workspace
BOLTC=./target/release/boltc
BOLTD=./target/release/boltd
BOLTQ=./target/release/boltq

echo "== train (lstw, $SAMPLES samples) =="
"$BOLTC" train --workload lstw --samples "$SAMPLES" --trees 8 --height 4 \
    --seed 7 --out "$FOREST"

echo "== compile to BLT1 =="
"$BOLTC" compile --forest "$FOREST" --threshold 2 --out "$MODEL"

echo "== inspect =="
"$BOLTC" inspect --blt "$MODEL"

echo "== verify (checksums + bit-identical vs forest) =="
"$BOLTC" verify --blt "$MODEL" --forest "$FOREST" --workload lstw \
    --samples 300 --seed 7

echo "== serve + classify =="
"$BOLTD" --model prod=artifact:"$MODEL" --default prod --socket "$SOCKET" &
BOLTD_PID=$!
for _ in $(seq 1 50); do
    [ -S "$SOCKET" ] && break
    kill -0 "$BOLTD_PID" 2>/dev/null || { echo "boltd died" >&2; exit 1; }
    sleep 0.1
done
[ -S "$SOCKET" ] || { echo "boltd never bound $SOCKET" >&2; exit 1; }

"$BOLTQ" --socket "$SOCKET" --list
# lstw samples carry 11 features.
"$BOLTQ" --socket "$SOCKET" --zeros 11
"$BOLTQ" --socket "$SOCKET" --model prod --zeros 11

echo "Artifact round trip OK: compile -> inspect -> verify -> serve -> classify."
