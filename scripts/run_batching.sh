#!/usr/bin/env bash
# One-shot batching-throughput run: builds release, runs the extra_batching
# sweep (per-sample vs entry-major vs sharded across batch sizes) and the
# criterion batching micro-bench, writing both reports into results/.
#
# Usage: scripts/run_batching.sh [samples]
#   samples — test samples for the sweep tables (default 2000).
set -euo pipefail
cd "$(dirname "$0")/.."

SAMPLES="${1:-2000}"
export BOLT_BENCH_SAMPLES="$SAMPLES"

mkdir -p results

echo "== extra_batching (samples=$SAMPLES) =="
cargo run -q --release -p bolt-bench --bin extra_batching | tee results/extra_batching.txt

echo "== criterion batching bench =="
cargo bench -q -p bolt-bench --bench batching | tee results/bench_batching.txt

echo "Batching reports written to results/extra_batching.txt and results/bench_batching.txt."
