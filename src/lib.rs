//! Umbrella crate for the Bolt reproduction (Middleware '22): re-exports
//! every workspace crate under one roof and hosts the runnable examples and
//! cross-crate integration tests.
//!
//! * [`core`] — Bolt itself: clustering, dictionaries, recombined lookup
//!   tables, bloom filters, parameter search, partitioned inference.
//! * [`forest`] — the decision-tree/random-forest training substrate.
//! * [`data`] — synthetic MNIST/LSTW/Yelp-shaped workload generators.
//! * [`baselines`] — Scikit-, Ranger-, and Forest-Packing-style engines.
//! * [`simcpu`] — cache/branch/instruction simulator and hardware profiles.
//! * [`server`] — the Unix-domain-socket classification service.
//! * [`bitpack`] — bit-level packed containers behind the compressed layouts.
//! * [`artifact`] — the zero-copy `BLT1` model store: compiled models
//!   serialized to `.blt` files and memory-mapped straight back into the
//!   scan kernels.
//!
//! # Quick start
//!
//! ```
//! use bolt_repro::core::{BoltConfig, BoltForest};
//! use bolt_repro::forest::{ForestConfig, RandomForest};
//!
//! let data = bolt_repro::data::mnist_like(300, 7);
//! let forest = RandomForest::train(&data, &ForestConfig::new(5).with_max_height(4));
//! let bolt = BoltForest::compile(&forest, &BoltConfig::default())?;
//! for (sample, _) in data.iter().take(10) {
//!     assert_eq!(bolt.classify(sample), forest.predict(sample));
//! }
//! # Ok::<(), bolt_repro::core::BoltError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bolt_artifact as artifact;
pub use bolt_baselines as baselines;
pub use bolt_bitpack as bitpack;
pub use bolt_core as core;
pub use bolt_data as data;
pub use bolt_forest as forest;
pub use bolt_server as server;
pub use bolt_simcpu as simcpu;
