//! `boltc` — the Bolt model compiler CLI.
//!
//! Train random forests (on a synthetic workload or a CSV file), compile
//! them into Bolt artifacts, and evaluate either representation:
//!
//! ```text
//! boltc train   --workload mnist --samples 2000 --trees 10 --height 4 --out forest.json
//! boltc train   --csv data.csv --trees 20 --height 6 --out forest.json
//! boltc compile --forest forest.json --threshold 2 --bloom 10 --out bolt.json
//! boltc compile --forest forest.json --threshold 2 --out model.blt   # BLT1 artifact
//! boltc inspect --blt model.blt
//! boltc verify  --blt model.blt --forest forest.json --workload mnist
//! boltc eval    --forest forest.json --workload mnist --samples 500
//! boltc eval    --bolt bolt.json     --workload mnist --samples 500
//! boltc eval    --bolt model.blt     --workload mnist --samples 500
//! ```
//!
//! A `--out` ending in `.blt` compiles to the binary `BLT1` zero-copy
//! artifact (serve it with `boltd --model NAME=artifact:model.blt`); any
//! other extension keeps the JSON format.

use bolt_repro::artifact::{
    section_name, Artifact, ArtifactWriter, MappedForest, MappedModel, MappedRegressor,
};
use bolt_repro::core::{BoltConfig, BoltForest, BoltRegressor};
use bolt_repro::data::Workload;
use bolt_repro::forest::{
    csv, Dataset, ForestConfig, RandomForest, RegressionConfig, RegressionDataset, RegressionForest,
};
use std::collections::HashMap;
use std::io::BufReader;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(rest) {
        Ok(flags) => flags,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "train" => train(&flags),
        "compile" => compile(&flags),
        "eval" => eval(&flags),
        "train-reg" => train_reg(&flags),
        "compile-reg" => compile_reg(&flags),
        "eval-reg" => eval_reg(&flags),
        "inspect" => inspect(&flags),
        "verify" => verify(&flags),
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  boltc train   (--workload mnist|lstw|yelp --samples N | --csv FILE)
                [--trees N] [--height N] [--seed N] --out FOREST.json
  boltc compile --forest FOREST.json [--threshold N] [--bloom BITS_PER_KEY]
                [--explanations] [--verify WORKLOAD] [--model-version V]
                --out BOLT.json|MODEL.blt
                (a .blt extension writes the binary BLT1 zero-copy artifact;
                 --model-version stamps the header for boltd --model-dir
                 fleets, which expect NAME@V.blt file naming)
  boltc inspect --blt MODEL.blt
  boltc verify  --blt MODEL.blt [--forest FOREST.json]
                [--workload NAME] [--samples N] [--seed N]
  boltc eval    (--forest FOREST.json | --bolt BOLT.json|MODEL.blt)
                (--workload NAME --samples N [--seed N] | --csv FILE)
  boltc train-reg   (--workload trips --samples N | --csv FILE)
                    [--trees N] [--height N] [--seed N] --out FOREST.json
                    (regression CSV: last column is the float target)
  boltc compile-reg --forest FOREST.json [--threshold N] [--bloom N]
                    [--model-version V] --out BOLT.json|MODEL.blt
  boltc eval-reg    (--forest FOREST.json | --bolt BOLT.json|MODEL.blt)
                    (--workload trips --samples N [--seed N] | --csv FILE)";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {arg:?}"))?;
        // Boolean flags take no value.
        let value = if key == "explanations" {
            "true".to_owned()
        } else {
            it.next()
                .ok_or_else(|| format!("--{key} needs a value"))?
                .clone()
        };
        flags.insert(key.to_owned(), value);
    }
    Ok(flags)
}

fn workload_by_name(name: &str) -> Result<Workload, String> {
    match name.to_ascii_lowercase().as_str() {
        "mnist" => Ok(Workload::MnistLike),
        "lstw" => Ok(Workload::LstwLike),
        "yelp" => Ok(Workload::YelpLike),
        other => Err(format!("unknown workload {other:?} (mnist|lstw|yelp)")),
    }
}

fn numeric<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("--{key} expects a number, got {raw:?}")),
    }
}

fn load_dataset(flags: &HashMap<String, String>) -> Result<Dataset, String> {
    if let Some(path) = flags.get("csv") {
        let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        return csv::from_csv(BufReader::new(file)).map_err(|e| e.to_string());
    }
    let workload = workload_by_name(flags.get("workload").ok_or("need --workload or --csv")?)?;
    let samples = numeric(flags, "samples", 1000usize)?;
    let seed = numeric(flags, "seed", 1u64)?;
    Ok(bolt_repro::data::generate(workload, samples, seed))
}

fn train(flags: &HashMap<String, String>) -> Result<(), String> {
    let data = load_dataset(flags)?;
    let out = flags.get("out").ok_or("need --out")?;
    let config = ForestConfig::new(numeric(flags, "trees", 10)?)
        .with_max_height(numeric(flags, "height", 4)?)
        .with_seed(numeric(flags, "seed", 42)?);
    let forest = RandomForest::train(&data, &config);
    let json = serde_json::to_string(&forest).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "trained {} trees (height {}) on {} samples x {} features -> {out} (train accuracy {:.1}%)",
        forest.n_trees(),
        forest.height(),
        data.len(),
        data.n_features(),
        100.0 * forest.accuracy(&data)
    );
    Ok(())
}

fn compile(flags: &HashMap<String, String>) -> Result<(), String> {
    let forest_path = flags.get("forest").ok_or("need --forest")?;
    let out = flags.get("out").ok_or("need --out")?;
    let json =
        std::fs::read_to_string(forest_path).map_err(|e| format!("read {forest_path}: {e}"))?;
    let forest: RandomForest = serde_json::from_str(&json).map_err(|e| e.to_string())?;
    let config = BoltConfig::default()
        .with_cluster_threshold(numeric(flags, "threshold", 4)?)
        .with_bloom_bits_per_key(numeric(flags, "bloom", 10)?)
        .with_explanations(flags.contains_key("explanations"));
    let bolt = BoltForest::compile(&forest, &config).map_err(|e| e.to_string())?;
    // Optional safety check against the source forest on fresh samples.
    if flags.contains_key("verify") {
        let workload = workload_by_name(flags.get("verify").ok_or("--verify needs a workload")?)?;
        let check = bolt_repro::data::generate(workload, 500, 0x5AFE);
        let samples: Vec<&[f32]> = (0..check.len()).map(|i| check.sample(i)).collect();
        let n = bolt
            .verify_against(&forest, samples.iter().copied())
            .map_err(|e| e.to_string())?;
        println!("verified safety property on {n} samples");
    }
    let model_version = numeric(flags, "model-version", 0u32)?;
    if out.ends_with(".blt") {
        ArtifactWriter::write_forest_versioned(&bolt, model_version, out)
            .map_err(|e| format!("write {out}: {e}"))?;
        // Round-trip sanity: the artifact must map and validate cleanly.
        MappedForest::open(out).map_err(|e| format!("re-map {out}: {e}"))?;
    } else {
        if model_version != 0 {
            return Err("--model-version only applies to .blt artifacts".into());
        }
        let json = serde_json::to_string(&bolt).map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| format!("write {out}: {e}"))?;
    }
    println!(
        "compiled: {} predicates, {} dictionary entries, {} table cells -> {out}",
        bolt.universe().len(),
        bolt.dictionary().len(),
        bolt.table().n_cells()
    );
    Ok(())
}

fn eval(flags: &HashMap<String, String>) -> Result<(), String> {
    let data = load_dataset(flags)?;
    if let Some(path) = flags.get("bolt") {
        if path.ends_with(".blt") {
            let mapped = MappedForest::open(path).map_err(|e| format!("map {path}: {e}"))?;
            let correct = data
                .iter()
                .filter(|(sample, label)| mapped.classify(sample) == *label)
                .count();
            println!(
                "mapped artifact accuracy on {} samples: {:.1}%",
                data.len(),
                100.0 * correct as f64 / data.len().max(1) as f64
            );
            return Ok(());
        }
        let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let mut bolt: BoltForest = serde_json::from_str(&json).map_err(|e| e.to_string())?;
        bolt.rebuild();
        println!(
            "bolt artifact accuracy on {} samples: {:.1}%",
            data.len(),
            100.0 * bolt.accuracy(&data)
        );
        return Ok(());
    }
    let path = flags.get("forest").ok_or("need --forest or --bolt")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let forest: RandomForest = serde_json::from_str(&json).map_err(|e| e.to_string())?;
    println!(
        "forest accuracy on {} samples: {:.1}%",
        data.len(),
        100.0 * forest.accuracy(&data)
    );
    Ok(())
}

/// Loads a regression dataset: the `trips` workload or a CSV whose last
/// column is the float target.
fn load_regression_dataset(flags: &HashMap<String, String>) -> Result<RegressionDataset, String> {
    if let Some(path) = flags.get("csv") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let parsed: Result<Vec<f32>, _> =
                line.split(',').map(|f| f.trim().parse::<f32>()).collect();
            match parsed {
                Ok(values) if values.len() >= 2 => {
                    targets.push(values[values.len() - 1]);
                    rows.push(values[..values.len() - 1].to_vec());
                }
                Ok(_) => {
                    return Err(format!(
                        "line {} needs at least one feature and a target",
                        lineno + 1
                    ))
                }
                Err(_) if rows.is_empty() => continue, // header
                Err(_) => return Err(format!("non-numeric field at line {}", lineno + 1)),
            }
        }
        return RegressionDataset::from_rows(rows, targets).map_err(|e| e.to_string());
    }
    match flags.get("workload").map(String::as_str) {
        Some("trips") => {
            let samples = numeric(flags, "samples", 1000usize)?;
            let seed = numeric(flags, "seed", 1u64)?;
            Ok(bolt_repro::data::trip_duration_like(samples, seed))
        }
        Some(other) => Err(format!("unknown regression workload {other:?} (trips)")),
        None => Err("need --workload trips or --csv".into()),
    }
}

fn train_reg(flags: &HashMap<String, String>) -> Result<(), String> {
    let data = load_regression_dataset(flags)?;
    let out = flags.get("out").ok_or("need --out")?;
    let mut config = RegressionConfig::new(numeric(flags, "trees", 10)?)
        .with_max_height(numeric(flags, "height", 6)?)
        .with_seed(numeric(flags, "seed", 42)?);
    config.n_trees = numeric(flags, "trees", 10)?;
    let forest = RegressionForest::train(&data, &config);
    let json = serde_json::to_string(&forest).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "trained {} regression trees on {} samples -> {out} (train RMSE {:.3})",
        forest.n_trees(),
        data.len(),
        forest.mse(&data).sqrt()
    );
    Ok(())
}

fn compile_reg(flags: &HashMap<String, String>) -> Result<(), String> {
    let forest_path = flags.get("forest").ok_or("need --forest")?;
    let out = flags.get("out").ok_or("need --out")?;
    let json =
        std::fs::read_to_string(forest_path).map_err(|e| format!("read {forest_path}: {e}"))?;
    let forest: RegressionForest = serde_json::from_str(&json).map_err(|e| e.to_string())?;
    let config = BoltConfig::default()
        .with_cluster_threshold(numeric(flags, "threshold", 4)?)
        .with_bloom_bits_per_key(numeric(flags, "bloom", 10)?);
    let bolt = BoltRegressor::compile(&forest, &config).map_err(|e| e.to_string())?;
    let model_version = numeric(flags, "model-version", 0u32)?;
    if out.ends_with(".blt") {
        ArtifactWriter::write_regressor_versioned(&bolt, model_version, out)
            .map_err(|e| format!("write {out}: {e}"))?;
        MappedRegressor::open(out).map_err(|e| format!("re-map {out}: {e}"))?;
    } else {
        if model_version != 0 {
            return Err("--model-version only applies to .blt artifacts".into());
        }
        let json = serde_json::to_string(&bolt).map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| format!("write {out}: {e}"))?;
    }
    println!(
        "compiled regressor: {} dictionary entries, {} table cells -> {out}",
        bolt.dictionary().len(),
        bolt.table().n_cells()
    );
    Ok(())
}

fn eval_reg(flags: &HashMap<String, String>) -> Result<(), String> {
    let data = load_regression_dataset(flags)?;
    if let Some(path) = flags.get("bolt") {
        if path.ends_with(".blt") {
            let mapped = MappedRegressor::open(path).map_err(|e| format!("map {path}: {e}"))?;
            let sse: f64 = data
                .iter()
                .map(|(sample, target)| {
                    let err = f64::from(mapped.predict(sample)) - f64::from(target);
                    err * err
                })
                .sum();
            println!(
                "mapped regressor RMSE on {} samples: {:.3}",
                data.len(),
                (sse / data.len().max(1) as f64).sqrt()
            );
            return Ok(());
        }
        let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let mut bolt: BoltRegressor = serde_json::from_str(&json).map_err(|e| e.to_string())?;
        bolt.rebuild();
        println!(
            "bolt regressor RMSE on {} samples: {:.3}",
            data.len(),
            bolt.mse(&data).sqrt()
        );
        return Ok(());
    }
    let path = flags.get("forest").ok_or("need --forest or --bolt")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let forest: RegressionForest = serde_json::from_str(&json).map_err(|e| e.to_string())?;
    println!(
        "regression forest RMSE on {} samples: {:.3}",
        data.len(),
        forest.mse(&data).sqrt()
    );
    Ok(())
}

/// `boltc inspect --blt MODEL.blt` — header, model shape, and section table
/// of a `BLT1` artifact (which is fully CRC-verified by the mapping itself).
fn inspect(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = flags.get("blt").ok_or("need --blt MODEL.blt")?;
    let artifact = Artifact::map(path).map_err(|e| format!("map {path}: {e}"))?;
    let header = artifact.header();
    let kind = match header.model_kind {
        1 => "classifier",
        2 => "regressor",
        _ => "unknown",
    };
    println!(
        "{path}: BLT1 v{} {kind}, model version {}, {} bytes, {} sections, {}",
        header.version,
        header.model_version,
        header.file_len,
        header.section_count,
        if artifact.is_mapped() {
            "memory-mapped"
        } else {
            "heap-backed"
        }
    );
    let model = MappedModel::from_artifact(artifact).map_err(|e| e.to_string())?;
    let meta = model.meta();
    println!(
        "  model: {} predicates ({} features), {} dictionary entries, \
         {} table slots, {} classes, {} trees, bloom hashes {}",
        meta.width,
        meta.n_features,
        meta.n_entries,
        meta.table_capacity,
        meta.n_classes,
        meta.n_trees,
        meta.bloom_n_hashes,
    );
    let blocked = model
        .artifact()
        .sections()
        .iter()
        .any(|s| s.id == bolt_repro::artifact::format::section::DICT_MASK_BLK);
    println!(
        "  scan: blocked SIMD layout {}, host kernel {}",
        if blocked {
            "present"
        } else {
            "absent (scalar scan)"
        },
        bolt_repro::core::Kernel::selected(),
    );
    println!(
        "  {:<16} {:>10} {:>10}  crc32",
        "section", "offset", "bytes"
    );
    for s in model.artifact().sections() {
        println!(
            "  {:<16} {:>10} {:>10}  {:08x}",
            section_name(s.id),
            s.offset,
            s.len,
            s.crc32
        );
    }
    Ok(())
}

/// `boltc verify --blt MODEL.blt [--forest FOREST.json]` — map the artifact,
/// re-running every checksum and structural check; with `--forest`, also
/// prove the mapped model classifies identically to the source forest on a
/// workload sweep.
fn verify(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = flags.get("blt").ok_or("need --blt MODEL.blt")?;
    let model = MappedModel::open(path).map_err(|e| format!("verify {path}: {e}"))?;
    let meta = model.meta();
    println!(
        "{path}: checksums and structure OK ({} sections, {} dictionary entries)",
        model.artifact().header().section_count,
        meta.n_entries
    );
    let Some(forest_path) = flags.get("forest") else {
        return Ok(());
    };
    let MappedModel::Forest(mapped) = &model else {
        return Err("--forest verification only supports classifier artifacts".into());
    };
    let json =
        std::fs::read_to_string(forest_path).map_err(|e| format!("read {forest_path}: {e}"))?;
    let forest: RandomForest = serde_json::from_str(&json).map_err(|e| e.to_string())?;
    let workload = workload_by_name(flags.get("workload").map_or("mnist", String::as_str))?;
    let samples = numeric(flags, "samples", 500usize)?;
    let seed = numeric(flags, "seed", 0x5AFEu64)?;
    let check = bolt_repro::data::generate(workload, samples, seed);
    for i in 0..check.len() {
        let sample = check.sample(i);
        let (got, want) = (mapped.classify(sample), forest.predict(sample));
        if got != want {
            return Err(format!(
                "mapped artifact diverges from forest on sample {i}: {got} != {want}"
            ));
        }
    }
    println!(
        "verified bit-identical classification on {} samples",
        check.len()
    );
    Ok(())
}
